"""Ablation (section 3): en-bloc update vs. naive per-term insertion.

The paper's analysis: inserting every occurrence into the index forces
a linear (term, filename) duplicate search per insertion, while
inserting a de-duplicated term block per file needs no check at all.
Measured here on a real corpus with the real index structures.
"""

import pytest

from repro.index import InvertedIndex
from repro.text import Tokenizer


@pytest.fixture(scope="module")
def occurrences(bench_corpus):
    """(path, [terms with duplicates]) per file of the bench corpus."""
    tokenizer = Tokenizer()
    fs = bench_corpus.fs
    return [
        (ref.path, tokenizer.tokenize(fs.read_file(ref.path)))
        for ref in fs.list_files()
    ]


def build_en_bloc(blocks):
    index = InvertedIndex()
    for block in blocks:
        index.add_block(block)
    return index


def build_naive(occurrences):
    index = InvertedIndex()
    for path, terms in occurrences:
        for term in terms:
            index.add_term_naive(term, path)
    return index


class TestDuplicateHandling:
    def test_bench_en_bloc(self, benchmark, bench_blocks):
        index = benchmark(build_en_bloc, bench_blocks)
        assert len(index) > 0

    def test_bench_naive(self, benchmark, occurrences):
        index = benchmark(build_naive, occurrences)
        assert len(index) > 0

    def test_both_produce_identical_indices(self, bench_blocks, occurrences):
        assert build_en_bloc(bench_blocks) == build_naive(occurrences)

    def test_en_bloc_faster(self, bench_blocks, occurrences):
        """The design decision itself: en-bloc must win."""
        import time

        t0 = time.perf_counter()
        build_en_bloc(bench_blocks)
        en_bloc_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        build_naive(occurrences)
        naive_s = time.perf_counter() - t0
        assert en_bloc_s < naive_s
