"""Table 4 — best configurations on the 32-core machine.

Paper: the spread is widest here — Implementation 1 x1.96 (lock
contention), Implementation 2 x2.47 (join costs ~11 s), Implementation 3
x3.50 (variance +78.6 % over Implementation 1).
"""

import pytest

from repro.engine.config import Implementation
from repro.experiments import (
    PAPER_BEST,
    render_best_config_table,
    run_best_config_table,
)
from repro.platforms import MANYCORE_32
from repro.simengine import SimPipeline

PLATFORM = MANYCORE_32


@pytest.fixture(scope="module")
def table(paper_workload, write_result):
    table = run_best_config_table(PLATFORM, paper_workload)
    write_result("table4.txt", render_best_config_table(table))
    return table


class TestTable4:
    def test_sequential_matches_paper(self, table):
        assert table.sequential_s == pytest.approx(90.0, rel=0.05)

    @pytest.mark.parametrize("implementation", list(Implementation))
    def test_speedups_match_paper(self, table, implementation):
        paper = PAPER_BEST[PLATFORM.name][implementation].speedup
        assert table.row_for(implementation).speedup == pytest.approx(
            paper, rel=0.15
        )

    def test_strict_ordering(self, table):
        s1 = table.row_for(Implementation.SHARED_LOCKED).speedup
        s2 = table.row_for(Implementation.REPLICATED_JOINED).speedup
        s3 = table.row_for(Implementation.REPLICATED_UNJOINED).speedup
        assert s3 > s2 > s1

    def test_impl3_variance_large(self, table):
        # Paper: +78.6 % over Implementation 1.
        variance = table.row_for(
            Implementation.REPLICATED_UNJOINED
        ).variance_vs_impl1_pct
        assert variance > 50.0

    def test_join_cost_separates_impl2_from_impl3(self, table):
        t2 = table.row_for(Implementation.REPLICATED_JOINED).exec_time_s
        t3 = table.row_for(Implementation.REPLICATED_UNJOINED).exec_time_s
        assert t2 - t3 > 3.0  # paper: 36.4 - 25.7 = 10.7 s

    def test_extractors_far_below_core_count(self, table):
        for row in table.rows:
            assert row.config.extractors <= 12 < PLATFORM.cores

    def test_bench_best_impl1_run(self, benchmark, paper_workload, table):
        pipeline = SimPipeline(PLATFORM, paper_workload)
        row = table.row_for(Implementation.SHARED_LOCKED)
        result = benchmark(
            pipeline.run, Implementation.SHARED_LOCKED, row.config
        )
        assert result.lock_wait_s > 0

    def test_bench_best_impl3_run(self, benchmark, paper_workload, table):
        pipeline = SimPipeline(PLATFORM, paper_workload)
        row = table.row_for(Implementation.REPLICATED_UNJOINED)
        result = benchmark(
            pipeline.run, Implementation.REPLICATED_UNJOINED, row.config
        )
        assert result.total_s == pytest.approx(row.exec_time_s, rel=0.02)
