"""Extension study: serving tail latency under open-loop load.

The claim quantified: under bursty, duplicate-heavy traffic the
single-flight, batch-admitted :class:`AsyncSearchFrontend` cuts the
p95/p99 tail versus handing every caller its own blocking
``SearchService.query`` — because duplicates coalesce onto one
evaluation and bursts are admitted in one transaction instead of N.

Protocol (open-loop, coordinated-omission-free):

* one seeded Poisson arrival schedule per offered-load point, replayed
  **identically** against both stacks; latency is measured from the
  *scheduled* arrival, so a driver that falls behind pays its lateness;
* workload: ~60% of arrivals drawn from a 4-query hot set (the
  duplicate traffic single-flight exists for), ~40% from a 40-query
  cold tail; all boolean, same snapshot for both stacks;
* offered load is calibrated from this machine's measured solo
  evaluation time (capacity ~ 1/solo on one core) and swept over
  factors of that capacity, from comfortable to past saturation;
* percentiles come from the harness's ``loadgen.query`` obs spans and
  must agree exactly with the driver's own accounting (cross-check
  asserted);
* differential identity: every unique query in the workload answered
  by the frontend must match a direct ``SearchService.query`` against
  the same snapshot generation byte-for-byte (paths) and
  float-for-float (BM25 scores, on-disk engine).

The digest is committed as ``BENCH_serving_latency.json`` at the repo
root.  The acceptance bar: at the contended, duplicate-heavy points
the frontend's p95 is at least 1.5x better than the plain service's.
"""

from __future__ import annotations

import json
import math
import os
import time

import pytest

from repro.engine import SequentialIndexer
from repro.fsmodel import VirtualFileSystem
from repro.index import MmapPostingsReader, save_index
from repro.obs import recorder as obsrec
from repro.query import FrequencyIndex
from repro.service import (
    AsyncSearchFrontend,
    IndexSnapshot,
    OpenLoopLoadGenerator,
    QuerySpec,
    SearchService,
)
from repro.service.loadgen import summarize_spans

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_serving_latency.json")

FILES = 2_000
HOT_QUERIES = 4          # the duplicate set
COLD_QUERIES = 40        # the distinct tail
HOT_WEIGHT = 15          # hot spec multiplicity -> 60/100 arrivals are hot
LOAD_FACTORS = (0.3, 0.5, 0.8, 1.3)   # x calibrated capacity
DURATION_S = 1.0
WARMUP_S = 0.2
SEED = 20260807
EVAL_WORKERS = 2
MAX_INFLIGHT = 32
BASELINE_ISSUERS = 8
SPEEDUP_FLOOR = 1.5

WORDS = (
    "alpha bravo charlie delta echo foxtrot golf hotel india juliett "
    "kilo lima mike november oscar papa quebec romeo sierra tango"
).split()


def _make_corpus(n: int) -> VirtualFileSystem:
    fs = VirtualFileSystem()
    for d in range(20):
        fs.mkdir(f"dir{d:02d}")
    for i in range(n):
        picks = [WORDS[(i + k * 7) % len(WORDS)] for k in range(6)]
        fs.write_file(
            f"dir{i % 20:02d}/doc{i:05d}.txt",
            (" ".join(picks) + f" doc{i}").encode(),
        )
    return fs


def _workload() -> list:
    """~60% duplicate-heavy specs: hot set x HOT_WEIGHT + cold tail."""
    hot = [
        QuerySpec(f"{WORDS[2 * i]} AND {WORDS[2 * i + 1]}")
        for i in range(HOT_QUERIES)
    ]
    cold = []
    for i in range(COLD_QUERIES):
        a = WORDS[i % len(WORDS)]
        b = WORDS[(i * 3 + 5) % len(WORDS)]
        op = ("OR", "AND", "AND NOT")[i % 3]
        cold.append(QuerySpec(f"{a} {op} {b}"))
    return hot * HOT_WEIGHT + cold


def _duplicate_fraction(specs) -> float:
    """Fraction of arrivals whose text is shared with other specs."""
    counts = {}
    for spec in specs:
        counts[spec.text] = counts.get(spec.text, 0) + 1
    shared = sum(c for c in counts.values() if c > 1)
    return shared / len(specs)


def _calibrate(snapshot: IndexSnapshot, specs) -> float:
    """Mean solo evaluation seconds over the unique workload queries."""
    unique = sorted({spec.text for spec in specs})
    for text in unique:                      # warm parse/eval caches
        snapshot.search(text)
    started = time.perf_counter()
    reps = 3
    for _ in range(reps):
        for text in unique:
            snapshot.search(text)
    return (time.perf_counter() - started) / (reps * len(unique))


@pytest.fixture(scope="module")
def serving_setup(tmp_path_factory):
    fs = _make_corpus(FILES)
    index = SequentialIndexer(fs, naive=False).build().index
    snapshot = IndexSnapshot(index)
    directory = tmp_path_factory.mktemp("serving")
    ridx2 = str(directory / "index.ridx2")
    save_index(index, ridx2, format="ridx2",
               frequencies=FrequencyIndex.from_fs(fs))
    return snapshot, ridx2


@pytest.fixture()
def fresh_recorder():
    """A per-test enabled recorder (fresh metrics registry per run)."""
    previous = obsrec.set_recorder(obsrec.Recorder(enabled=True))
    yield
    obsrec.set_recorder(previous)


def _run_point(snapshot, specs, qps: float) -> dict:
    """One offered-load point: identical schedule against both stacks."""
    generator = OpenLoopLoadGenerator(
        specs, offered_qps=qps, duration_s=DURATION_S,
        warmup_s=WARMUP_S, seed=SEED,
    )

    # Plain service: every caller blocks in query(); a thread pool of
    # issuers replays the schedule.
    obsrec.set_recorder(obsrec.Recorder(enabled=True))
    service = SearchService(
        snapshot, workers=EVAL_WORKERS, max_inflight=MAX_INFLIGHT
    )
    try:
        baseline = generator.run_service(
            service, workers=BASELINE_ISSUERS, label="service"
        )
    finally:
        service.close()
    base_spans = summarize_spans(
        obsrec.get_recorder().spans, label="service"
    )

    # Frontend: same schedule, same snapshot, same eval parallelism
    # (the backing service's single worker only serves stray direct
    # queries; the frontend evaluates on its own pool).
    obsrec.set_recorder(obsrec.Recorder(enabled=True))
    backing = SearchService(snapshot, workers=1, max_inflight=MAX_INFLIGHT)
    frontend = AsyncSearchFrontend(
        backing, batch_window=0.002, single_flight=True,
        workers=EVAL_WORKERS, max_inflight=MAX_INFLIGHT, own_service=True,
    )
    try:
        fronted = generator.run_frontend(frontend, label="frontend")
        stats = frontend.stats()
    finally:
        frontend.close()
    front_spans = summarize_spans(
        obsrec.get_recorder().spans, label="frontend"
    )

    # The spans ARE the accounting: recomputing percentiles from the
    # recorded loadgen.query spans must reproduce the driver's numbers.
    for result, spans in ((baseline, base_spans), (fronted, front_spans)):
        assert spans["count"] == result.measured
        assert math.isclose(spans["p95_ms"], result.p95_ms, rel_tol=1e-9)
        assert math.isclose(spans["p99_ms"], result.p99_ms, rel_tol=1e-9)

    assert baseline.issued == fronted.issued == len(generator.arrivals)
    assert fronted.completed + fronted.shed + fronted.errors == fronted.issued
    assert fronted.errors == 0 and baseline.errors == 0

    return {
        "arrivals": len(generator.arrivals),
        "service": baseline.to_dict(),
        "frontend": fronted.to_dict(),
        "frontend_stats": {k: round(v, 4) for k, v in stats.items()},
        "p95_speedup": round(baseline.p95_ms / fronted.p95_ms, 2),
        "p99_speedup": round(baseline.p99_ms / fronted.p99_ms, 2),
    }


def _differential(snapshot, ridx2, specs) -> dict:
    """Every workload query: frontend answer == direct service answer."""
    checked = 0
    # Boolean, in-memory snapshot.
    service = SearchService(snapshot, workers=1, max_inflight=MAX_INFLIGHT)
    frontend = AsyncSearchFrontend(service, workers=1, own_service=True)
    try:
        direct = SearchService(snapshot, workers=1)
        try:
            for text in sorted({spec.text for spec in specs}):
                served = frontend.query(text)
                reference = direct.query(text)
                assert served.paths == reference.paths, text
                assert served.generation == reference.generation
                checked += 1
        finally:
            direct.close()
    finally:
        frontend.close()

    # BM25, on-disk DAAT snapshot: scores must be float-identical.
    with MmapPostingsReader(ridx2) as reader:
        ranked_snapshot = IndexSnapshot.from_ondisk(reader)
        service = SearchService(ranked_snapshot, workers=1)
        frontend = AsyncSearchFrontend(service, workers=1, own_service=True)
        try:
            direct = SearchService(ranked_snapshot, workers=1)
            try:
                for text in sorted({s.text for s in specs})[:10]:
                    served = frontend.query(text, rank="bm25", topk=10)
                    reference = direct.query(text, rank="bm25", topk=10)
                    assert served.paths == reference.paths, text
                    assert [(h.path, h.score) for h in served.hits] == [
                        (h.path, h.score) for h in reference.hits
                    ], text
                    checked += 1
            finally:
                direct.close()
        finally:
            frontend.close()
    return {"queries_checked": checked, "identical": True}


class TestServingTailLatency:
    def test_open_loop_tail_latency(
        self, serving_setup, fresh_recorder, write_result
    ):
        snapshot, ridx2 = serving_setup
        specs = _workload()
        duplicate_fraction = _duplicate_fraction(specs)
        assert duplicate_fraction >= 0.5  # the ISSUE's workload bar

        solo_s = _calibrate(snapshot, specs)
        capacity_qps = 1.0 / solo_s

        curve = []
        for factor in LOAD_FACTORS:
            point = _run_point(snapshot, specs, factor * capacity_qps)
            point["load_factor"] = factor
            point["offered_qps"] = round(factor * capacity_qps, 1)
            curve.append(point)

        differential = _differential(snapshot, ridx2, specs)

        digest = {
            "benchmark": "serving_latency",
            "protocol": {
                "open_loop": True,
                "arrival_process": "poisson",
                "latency_from": "scheduled_arrival",
                "seed": SEED,
                "duration_s": DURATION_S,
                "warmup_s": WARMUP_S,
                "files": FILES,
                "duplicate_fraction": round(duplicate_fraction, 3),
                "eval_workers": EVAL_WORKERS,
                "max_inflight": MAX_INFLIGHT,
                "baseline_issuers": BASELINE_ISSUERS,
            },
            "calibration": {
                "solo_eval_us": round(solo_s * 1e6, 1),
                "capacity_qps": round(capacity_qps, 1),
            },
            "curve": curve,
            "differential": differential,
        }
        with open(RESULT_PATH, "w", encoding="utf-8") as fh:
            json.dump(digest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        write_result(
            "extension_serving_latency.txt",
            json.dumps(digest, indent=2, sort_keys=True),
        )

        # Sanity across the whole curve.
        for point in curve:
            assert math.isfinite(point["frontend"]["p99_ms"])
            assert math.isfinite(point["service"]["p99_ms"])
            assert 0.0 <= point["frontend"]["shed_rate"] <= 1.0

        # Coalescing must actually engage under the duplicate workload.
        contended = [p for p in curve if p["load_factor"] >= 0.5]
        assert all(p["frontend"]["coalesced"] > 0 for p in contended)

        # The acceptance bar: at the contended duplicate-heavy points
        # the frontend's p95 beats the plain service by >= 1.5x.
        best = max(p["p95_speedup"] for p in contended)
        assert best >= SPEEDUP_FLOOR, (
            f"best contended p95 speedup {best} < {SPEEDUP_FLOOR}: "
            + json.dumps(
                [
                    {
                        "factor": p["load_factor"],
                        "service_p95": p["service"]["p95_ms"],
                        "frontend_p95": p["frontend"]["p95_ms"],
                    }
                    for p in curve
                ]
            )
        )
