"""Extension study: serving queries off mmap vs a materialized index.

The RIDX2 claim quantified on a real corpus's index:

* **index-open time** — ``MmapPostingsReader`` parses a fixed-size
  header; ``load_index`` decodes every posting into dicts.  The
  acceptance bar is >= 2x lower open time for mmap;
* **per-query latency** — p50/p95 over a mixed boolean workload,
  measured cold (first touch of each posting block) and warm (OS page
  cache + decoded-block reuse), plus BM25 top-10;
* **resident bytes** — tracemalloc peaks: what opening costs in Python
  heap for each path.

Every timed query is also checked differentially against the in-memory
engine, so the numbers can never come from a wrong answer.  The digest
is committed as ``BENCH_ondisk_postings.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import statistics
import time
import tracemalloc

import pytest

from repro.engine import SequentialIndexer
from repro.index import MmapPostingsReader, load_index, save_index
from repro.query import BM25Ranker, FrequencyIndex, QueryEngine, search_bm25
from repro.query.daat import DaatQueryEngine

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_ondisk_postings.json")

OPEN_REPS = 30
QUERY_REPS = 5


def _percentiles(samples):
    ordered = sorted(samples)
    return {
        "p50_us": round(statistics.median(ordered) * 1e6, 1),
        "p95_us": round(ordered[int(0.95 * (len(ordered) - 1))] * 1e6, 1),
        "mean_us": round(statistics.fmean(ordered) * 1e6, 1),
    }


@pytest.fixture(scope="module")
def ondisk_setup(bench_corpus, tmp_path_factory):
    fs = bench_corpus.fs
    index = SequentialIndexer(fs, naive=False).build().index
    frequencies = FrequencyIndex.from_fs(fs)
    directory = tmp_path_factory.mktemp("ondisk")
    ridx1 = str(directory / "index.ridx")
    ridx2 = str(directory / "index.ridx2")
    save_index(index, ridx1, format="binary")
    save_index(index, ridx2, format="ridx2", frequencies=frequencies)
    universe = frozenset(ref.path for ref in fs.list_files())
    return index, frequencies, universe, ridx1, ridx2


def _query_set(index):
    """A mixed workload from the corpus's own vocabulary: frequent and
    rare terms, conjunctions, disjunctions, negations, a wildcard."""
    by_df = sorted(index.items(), key=lambda kv: -len(kv[1]))
    frequent = [term for term, _ in by_df[:8]]
    rare = [term for term, _ in by_df[-8:]]
    queries = []
    queries += frequent[:4]
    queries += rare[:4]
    queries += [f"{a} AND {b}" for a, b in zip(frequent[:4], rare[:4])]
    queries += [f"{a} OR {b}" for a, b in zip(frequent[4:8], rare[4:8])]
    queries += [f"{a} AND NOT {b}" for a, b in zip(frequent[:2], frequent[2:4])]
    queries.append(f"{frequent[0][:3]}*")
    return queries


class TestOndiskPostings:
    def test_open_query_and_memory_profile(self, ondisk_setup, write_result):
        index, frequencies, universe, ridx1, ridx2 = ondisk_setup

        # -- index-open time: full decode vs header-only mmap ------------
        full_opens, mmap_opens = [], []
        for _ in range(OPEN_REPS):
            started = time.perf_counter()
            load_index(ridx1)
            full_opens.append(time.perf_counter() - started)
            started = time.perf_counter()
            MmapPostingsReader(ridx2).close()
            mmap_opens.append(time.perf_counter() - started)
        open_full = statistics.median(full_opens)
        open_mmap = statistics.median(mmap_opens)
        speedup = open_full / open_mmap

        # -- per-query latency, differentially checked -------------------
        queries = _query_set(index)
        memory_engine = QueryEngine(index, universe=universe)
        mem_lat, cold_lat, warm_lat = [], [], []
        for _ in range(QUERY_REPS):
            # Cold: a fresh reader per sweep — every block decode and
            # lexicon probe is paid again (OS page cache stays warm;
            # colder than this needs a drop_caches we can't do here).
            with MmapPostingsReader(ridx2) as reader:
                daat = DaatQueryEngine(reader)
                for query in queries:
                    started = time.perf_counter()
                    ondisk_paths = daat.search(query)
                    cold_lat.append(time.perf_counter() - started)
                    started = time.perf_counter()
                    memory_paths = memory_engine.search(query)
                    mem_lat.append(time.perf_counter() - started)
                    assert ondisk_paths == memory_paths
                # Warm: same reader again, cursors re-created but the
                # doc table and lexicon caches are hot.
                for query in queries:
                    started = time.perf_counter()
                    daat.search(query)
                    warm_lat.append(time.perf_counter() - started)
                blocks = reader.stats()

        # -- BM25 parity and latency --------------------------------------
        ranker = BM25Ranker(frequencies)
        bm25_queries = queries[:8]
        bm25_mem, bm25_disk = [], []
        with MmapPostingsReader(ridx2) as reader:
            daat = DaatQueryEngine(reader)
            for query in bm25_queries:
                started = time.perf_counter()
                expected = search_bm25(memory_engine, ranker, query, topk=10)
                bm25_mem.append(time.perf_counter() - started)
                started = time.perf_counter()
                got = daat.search_bm25(query, topk=10)
                bm25_disk.append(time.perf_counter() - started)
                assert [(h.path, h.score) for h in got] == [
                    (h.path, h.score) for h in expected
                ]

        # -- resident bytes ----------------------------------------------
        tracemalloc.start()
        loaded = load_index(ridx1)
        _, full_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del loaded
        tracemalloc.start()
        with MmapPostingsReader(ridx2) as reader:
            daat = DaatQueryEngine(reader)
            for query in queries:
                daat.search(query)
            _, mmap_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        digest = {
            "benchmark": "ondisk_postings",
            "corpus": {
                "files": len(universe),
                "terms": len(index),
                "postings": index.posting_count,
                "ridx1_bytes": os.path.getsize(ridx1),
                "ridx2_bytes": os.path.getsize(ridx2),
            },
            "open": {
                "full_load_ms": round(open_full * 1e3, 3),
                "mmap_open_ms": round(open_mmap * 1e3, 3),
                "speedup": round(speedup, 1),
                "reps": OPEN_REPS,
            },
            "query_latency": {
                "queries": len(queries),
                "reps": QUERY_REPS,
                "in_memory": _percentiles(mem_lat),
                "mmap_cold": _percentiles(cold_lat),
                "mmap_warm": _percentiles(warm_lat),
            },
            "bm25_latency": {
                "queries": len(bm25_queries),
                "in_memory": _percentiles(bm25_mem),
                "mmap": _percentiles(bm25_disk),
            },
            "resident_bytes": {
                "full_load_peak": full_peak,
                "mmap_serve_peak": mmap_peak,
                "ratio": round(full_peak / mmap_peak, 1),
            },
            "blocks": {
                "read": blocks["ondisk.blocks_read"],
                "skipped": blocks["ondisk.blocks_skipped"],
            },
        }
        with open(RESULT_PATH, "w", encoding="utf-8") as fh:
            json.dump(digest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        write_result(
            "extension_ondisk.txt",
            json.dumps(digest, indent=2, sort_keys=True),
        )

        # The tentpole's acceptance bar: opening via mmap must beat a
        # full load by >= 2x, and skipping must actually happen.
        assert speedup >= 2.0, digest["open"]
        assert digest["blocks"]["skipped"] > 0, digest["blocks"]
        assert mmap_peak < full_peak, digest["resident_bytes"]
