"""Ablation (section 2.1/3): pre-generated vs. pipelined stage 1.

The paper: "Running the filename generator concurrently with the term
extractors proved to be highly inefficient, because of a pair of lock
operations for every filename generated and consumed."  This ablation
simulates both designs on each platform.
"""

import pytest

from repro.engine.config import Implementation, ThreadConfig
from repro.platforms import ALL_PLATFORMS, MANYCORE_32, OCTO_CORE
from repro.simengine import SimPipeline

CONFIG = ThreadConfig(5, 3, 0)
IMPL = Implementation.REPLICATED_UNJOINED


@pytest.fixture(scope="module")
def stage1_results(paper_workload, write_result):
    lines = ["Stage-1 ablation: pre-generated vs pipelined filename generation",
             f"{'platform':<14}{'pre-generated':>14}{'pipelined':>12}{'delta':>8}"]
    results = {}
    for platform in ALL_PLATFORMS:
        pipeline = SimPipeline(platform, paper_workload)
        pre = pipeline.run(IMPL, CONFIG).total_s
        pipelined = pipeline.run(IMPL, CONFIG, pipelined_stage1=True).total_s
        results[platform.name] = (pre, pipelined)
        lines.append(
            f"{platform.name:<14}{pre:>13.1f}s{pipelined:>11.1f}s"
            f"{(pipelined / pre - 1) * 100:>+7.0f}%"
        )
    write_result("ablation_stage1.txt", "\n".join(lines))
    return results


class TestStage1Ablation:
    def test_pipelined_loses_on_octo_core(self, stage1_results):
        pre, pipelined = stage1_results["octo-core"]
        assert pipelined > pre * 1.05

    def test_pipelined_loses_badly_on_manycore(self, stage1_results):
        pre, pipelined = stage1_results["manycore-32"]
        assert pipelined > pre * 1.2

    def test_quad_core_roughly_neutral(self, stage1_results):
        """On the cheap-lock 4-core machine the two designs are close;
        the paper's decision is driven by the multicore machines."""
        pre, pipelined = stage1_results["quad-core"]
        assert pipelined == pytest.approx(pre, rel=0.10)

    def test_bench_pipelined_run(self, benchmark, paper_workload, stage1_results):
        pipeline = SimPipeline(OCTO_CORE, paper_workload)
        result = benchmark(pipeline.run, IMPL, CONFIG, True)
        assert result.total_s > 0

    def test_filename_lock_contention_visible(self, paper_workload):
        # The simulated filename queue really is the contention point:
        # disk utilization drops versus the pre-generated design.
        pipeline = SimPipeline(MANYCORE_32, paper_workload)
        pre = pipeline.run(IMPL, CONFIG)
        pipelined = pipeline.run(IMPL, CONFIG, pipelined_stage1=True)
        assert pipelined.disk_utilization < pre.disk_utilization
