"""Table 3 — best configurations on the 8-core machine.

Paper: Implementation 1 is slowest (59.5 s, x1.76), Implementation 3
fastest (49.5 s, x2.12); the disk is nearly saturated by one stream, so
speed-ups stay ~2.
"""

import pytest

from repro.engine.config import Implementation
from repro.experiments import (
    PAPER_BEST,
    render_best_config_table,
    run_best_config_table,
)
from repro.platforms import OCTO_CORE
from repro.simengine import SimPipeline

PLATFORM = OCTO_CORE


@pytest.fixture(scope="module")
def table(paper_workload, write_result):
    table = run_best_config_table(PLATFORM, paper_workload)
    write_result("table3.txt", render_best_config_table(table))
    return table


class TestTable3:
    def test_sequential_matches_paper(self, table):
        assert table.sequential_s == pytest.approx(105.0, rel=0.05)

    @pytest.mark.parametrize("implementation", list(Implementation))
    def test_speedups_match_paper(self, table, implementation):
        paper = PAPER_BEST[PLATFORM.name][implementation].speedup
        assert table.row_for(implementation).speedup == pytest.approx(
            paper, rel=0.15
        )

    def test_impl3_wins(self, table):
        s1 = table.row_for(Implementation.SHARED_LOCKED).speedup
        s2 = table.row_for(Implementation.REPLICATED_JOINED).speedup
        s3 = table.row_for(Implementation.REPLICATED_UNJOINED).speedup
        assert s3 > s2 > s1

    def test_speedups_stay_around_two(self, table):
        for row in table.rows:
            assert row.speedup < 2.6  # paper max: 2.12

    def test_bench_best_impl1_run(self, benchmark, paper_workload, table):
        pipeline = SimPipeline(PLATFORM, paper_workload)
        row = table.row_for(Implementation.SHARED_LOCKED)
        result = benchmark(
            pipeline.run, Implementation.SHARED_LOCKED, row.config
        )
        assert result.lock_acquires > 0

    def test_bench_best_impl3_run(self, benchmark, paper_workload, table):
        pipeline = SimPipeline(PLATFORM, paper_workload)
        row = table.row_for(Implementation.REPLICATED_UNJOINED)
        result = benchmark(
            pipeline.run, Implementation.REPLICATED_UNJOINED, row.config
        )
        assert result.total_s == pytest.approx(row.exec_time_s, rel=0.02)
