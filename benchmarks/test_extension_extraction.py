"""Extension study: bytes-fast extraction and huge-file splitting.

Two claims quantified, one equivalence pinned:

* **tokenizer throughput** — the translation-table fast path
  (``bytes.translate`` + ``split``, both C loops) must be at least 2x
  the retained per-byte reference loop (``iter_terms_slow``) on the
  same corpus blob; the code-aware tokenizer carries a lower bar
  because its camelCase part-splitting regex is shared between paths;
* **build tail** — chunk-splitting a dominant huge file must shrink
  the longest single extraction task (the straggler that sets stage-2
  tail time) roughly in proportion to the chunk count, and the
  process-backend wall times with and without splitting are recorded;
* **equivalence** — the split build's index is byte-identical to the
  unsplit build's, so none of the timed runs can come from a wrong
  index.

The digest is committed as ``BENCH_extraction.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import time

from repro.engine import ProcessReplicatedIndexer, ThreadConfig
from repro.extract import AsciiExtractor, CodeTokenizer, plan_chunks, read_chunk
from repro.fsmodel import VirtualFileSystem
from repro.index.binfmt import dump_index_bytes
from repro.index.merge import join_indices
from repro.index.multi import MultiIndex
from repro.text import Tokenizer

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_extraction.json")

#: ~1.2 MB of separator-rich prose with mixed case and short/long runs,
#: the shape the translation table has to chew through in practice.
BLOB = (
    b"The Quick-Brown fox, v2.0; jumps over 13 lazy dogs!  "
    b"alpha BETA gamma delta epsilon zeta eta theta iota kappa "
    b"lambda mu nu xi omicron pi rho sigma tau upsilon phi chi "
) * 7_000

CODE_BLOB = (
    b"def parseHTTPHeader(raw_bytes):\n"
    b"    content_length = int(raw_bytes.splitHeaderValue())\n"
    b"    return HTTPHeader(content_length, sha256sum(raw_bytes))\n"
) * 8_000

REPEATS = 3


def _best(fn, *args):
    """Best-of-N wall time in seconds (min filters scheduler noise)."""
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def _throughput(tokenizer, blob):
    """MB/s of the fast path vs the per-byte reference loop."""
    fast = tokenizer.tokenize(blob)
    slow = list(tokenizer.iter_terms_slow(blob))
    assert fast == slow, "fast path diverged from the reference loop"
    mb = len(blob) / 1e6
    t_fast = _best(tokenizer.tokenize, blob)
    t_slow = _best(lambda b: list(tokenizer.iter_terms_slow(b)), blob)
    return {
        "input_mb": round(mb, 2),
        "fast_mb_per_s": round(mb / t_fast, 1),
        "slow_mb_per_s": round(mb / t_slow, 1),
        "speedup": round(t_slow / t_fast, 1),
    }


def _straggler(fs, path, extractor, threshold):
    """Longest single extraction task, whole-file vs chunked."""
    size = fs.file_size(path)
    content = fs.read_file(path)
    whole = _best(lambda: extractor.terms(path, content))

    chunks = plan_chunks(size, threshold)
    boundary = extractor.boundary_bytes

    def one_chunk(start, end):
        data = read_chunk(fs, path, size, start, end, boundary)
        return extractor.chunk_terms(data)

    longest = max(_best(one_chunk, start, end) for start, end in chunks)
    return {
        "file_mb": round(size / 1e6, 2),
        "chunks": len(chunks),
        "whole_file_ms": round(whole * 1e3, 2),
        "longest_chunk_ms": round(longest * 1e3, 2),
        "tail_speedup": round(whole / longest, 1),
    }


def _flat_bytes(index):
    if isinstance(index, MultiIndex):
        index = join_indices(index.replicas)
    return dump_index_bytes(index)


def _skewed_fs():
    """20 small files plus one file holding ~75% of the corpus bytes."""
    fs = VirtualFileSystem()
    for i in range(20):
        fs.write_file(
            f"note-{i:02d}.txt", b"cat dog ferret gecko heron ibis " * 40
        )
    fs.write_file("archive.txt", b"alpha beta gamma delta epsilon " * 25_000)
    return fs


def _process_build(fs, split_threshold):
    engine = ProcessReplicatedIndexer(
        fs, split_threshold=split_threshold, oversubscribe=True
    )
    t0 = time.perf_counter()
    report = engine.build(ThreadConfig(2, 0, 1, backend="process"))
    return time.perf_counter() - t0, report


def test_extraction_benchmark(write_result):
    digest = {
        "tokenizer_throughput": {
            "ascii": _throughput(Tokenizer(), BLOB),
            "code": _throughput(CodeTokenizer(), CODE_BLOB),
        }
    }

    # Straggler tail: one huge file, in-process, chunked eight ways.
    fs = VirtualFileSystem()
    fs.write_file("huge.txt", b"alpha beta gamma delta epsilon " * 40_000)
    size = fs.file_size("huge.txt")
    digest["straggler"] = _straggler(
        fs, "huge.txt", AsciiExtractor(), threshold=size // 8 + 1
    )

    # End-to-end: process backend over a skewed corpus, split vs not.
    skewed = _skewed_fs()
    wall_unsplit, unsplit = _process_build(skewed, split_threshold=None)
    wall_split, split = _process_build(skewed, split_threshold=96 * 1024)
    assert _flat_bytes(split.index) == _flat_bytes(unsplit.index)
    digest["process_build"] = {
        "files": unsplit.file_count,
        "wall_unsplit_s": round(wall_unsplit, 3),
        "wall_split_s": round(wall_split, 3),
        "split_failures": len(split.failures),
    }

    with open(RESULT_PATH, "w", encoding="utf-8") as fh:
        json.dump(digest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    write_result("extension_extraction.txt", json.dumps(digest, indent=2))

    # The PR's headline bars.  The code tokenizer's bar is lower: its
    # camelCase part-splitting regex runs in both paths, so only the
    # scan itself accelerates.
    assert digest["tokenizer_throughput"]["ascii"]["speedup"] >= 2.0
    assert digest["tokenizer_throughput"]["code"]["speedup"] >= 1.2
    # 8 chunks -> the longest task must shrink by a lot more than 2x.
    assert digest["straggler"]["tail_speedup"] >= 2.0
    assert digest["process_build"]["split_failures"] == 0
