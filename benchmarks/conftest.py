"""Shared benchmark fixtures.

The benchmarks both *measure* (pytest-benchmark timings of the
simulator and of the real data structures) and *regenerate the paper's
tables* (full-fidelity configuration sweeps whose rendered output is
written to ``benchmarks/results/`` and echoed to stdout).
"""

from __future__ import annotations

import os

import pytest

from repro.corpus import CorpusGenerator, PAPER_PROFILE
from repro.simengine import Workload

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def _write_result(name: str, text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, name), "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    print()
    print(text)


@pytest.fixture(scope="session")
def write_result():
    """Persist a rendered table under benchmarks/results/ and echo it."""
    return _write_result


@pytest.fixture(scope="session")
def paper_workload():
    """The full 51,000-file / 869 MB synthetic workload."""
    return Workload.synthesize()


@pytest.fixture(scope="session")
def bench_corpus():
    """A small real corpus (~510 files, ~8.7 MB) for real-engine benchmarks."""
    return CorpusGenerator(PAPER_PROFILE.scaled(0.01, name="bench")).generate()


@pytest.fixture(scope="session")
def bench_blocks(bench_corpus):
    """Pre-extracted term blocks of the bench corpus."""
    from repro.text import Tokenizer, extract_term_block

    tokenizer = Tokenizer()
    fs = bench_corpus.fs
    return [
        extract_term_block(ref.path, fs.read_file(ref.path), tokenizer)
        for ref in fs.list_files()
    ]
