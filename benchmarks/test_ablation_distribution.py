"""Ablation (section 2.1/3): work-distribution strategies.

The paper tried size-aware assignment and found that "simply assigning
files round-robin was the fastest approach".  This ablation measures
the distribution step itself at paper scale (51,000 filenames) and the
resulting byte balance.
"""

import pytest

from repro.distribute import (
    RoundRobinStrategy,
    SharedQueueStrategy,
    SizeBalancedStrategy,
    WorkStealingStrategy,
)
from repro.fsmodel import FileRef

WORKERS = 8


@pytest.fixture(scope="module")
def paper_refs(paper_workload):
    return [FileRef(f.path, f.size_bytes) for f in paper_workload.files]


class TestDistributionCost:
    """Time to split 51,000 filenames among 8 extractors."""

    def test_bench_round_robin(self, benchmark, paper_refs):
        distribution = benchmark(
            RoundRobinStrategy().distribute, paper_refs, WORKERS
        )
        assert distribution.file_count == len(paper_refs)

    def test_bench_size_balanced(self, benchmark, paper_refs):
        distribution = benchmark(
            SizeBalancedStrategy().distribute, paper_refs, WORKERS
        )
        assert distribution.file_count == len(paper_refs)

    def test_bench_shared_queue(self, benchmark, paper_refs):
        distribution = benchmark(
            SharedQueueStrategy().distribute, paper_refs, WORKERS
        )
        assert distribution.file_count == len(paper_refs)

    def test_bench_work_stealing_setup(self, benchmark, paper_refs):
        deques = benchmark(
            WorkStealingStrategy().make_deques, paper_refs, WORKERS
        )
        assert sum(len(d) for d in deques) == len(paper_refs)


class TestDistributionQuality:
    def test_round_robin_balance_good_enough(self, paper_refs):
        """The paper's point: on a many-small-files corpus, round-robin's
        byte balance is already close to perfect, so paying for anything
        smarter (or synchronized) buys nothing."""
        rr = RoundRobinStrategy().distribute(paper_refs, WORKERS)
        assert rr.imbalance() < 1.35

    def test_lpt_balance_near_perfect(self, paper_refs):
        lpt = SizeBalancedStrategy().distribute(paper_refs, WORKERS)
        assert lpt.imbalance() < 1.01

    def test_shared_queue_pays_lock_pair_per_filename(self, paper_refs):
        strategy = SharedQueueStrategy()
        strategy.distribute(paper_refs, WORKERS)
        assert strategy.lock_operations >= 2 * len(paper_refs)
