"""Ablation (section 2.3): join strategies.

"Would it be enough to join the indices with a single thread, or should
a parallel reduction setup with multiple joining processes be used?"
Measured on real indices (single fold vs. pairwise reduction tree) and
on the simulator (z = 1 vs z = 2 on the 32-core machine, where the
paper's Implementation 2 pays ~11 s of join).
"""

import pytest

from repro.engine.config import Implementation, ThreadConfig
from repro.index import InvertedIndex, join_indices, join_pairwise_tree
from repro.platforms import MANYCORE_32
from repro.simengine import SimPipeline

REPLICAS = 8


@pytest.fixture(scope="module")
def replicas(bench_blocks):
    """The bench corpus's blocks spread over 8 replica indices."""
    replicas = [InvertedIndex() for _ in range(REPLICAS)]
    for i, block in enumerate(bench_blocks):
        replicas[i % REPLICAS].add_block(block)
    return replicas


def fresh_copies(replicas):
    """Deep-ish copies so destructive tree joins can run repeatedly."""
    copies = []
    for replica in replicas:
        copy = InvertedIndex()
        from repro.index.merge import merge_into

        merge_into(copy, replica, copy=True)
        copies.append(copy)
    return copies


class TestRealJoins:
    def test_bench_single_join(self, benchmark, replicas):
        joined = benchmark(join_indices, replicas)
        assert len(joined) > 0

    def test_bench_tree_join_one_thread(self, benchmark, replicas):
        joined = benchmark.pedantic(
            join_pairwise_tree,
            setup=lambda: ((fresh_copies(replicas),), {}),
            rounds=5,
        )
        assert len(joined) > 0

    def test_bench_tree_join_four_threads(self, benchmark, replicas):
        joined = benchmark.pedantic(
            lambda reps: join_pairwise_tree(reps, threads_per_level=4),
            setup=lambda: ((fresh_copies(replicas),), {}),
            rounds=5,
        )
        assert len(joined) > 0

    def test_all_strategies_agree(self, replicas):
        single = join_indices(replicas)
        tree = join_pairwise_tree(fresh_copies(replicas))
        threaded = join_pairwise_tree(fresh_copies(replicas), threads_per_level=4)
        assert single == tree == threaded


class TestSimulatedJoins:
    def test_tree_join_beats_single_join_on_manycore(self, paper_workload):
        pipeline = SimPipeline(MANYCORE_32, paper_workload)
        single = pipeline.run(
            Implementation.REPLICATED_JOINED, ThreadConfig(9, 4, 1)
        )
        tree = pipeline.run(
            Implementation.REPLICATED_JOINED, ThreadConfig(9, 4, 2)
        )
        assert tree.join_s < single.join_s

    def test_join_cost_near_paper(self, paper_workload):
        """Paper Table 4: Impl2 (8,4,1) 36.4s vs Impl3 (9,4,0) 25.7s —
        the single-thread join of 4 replicas costs ~10.7s."""
        pipeline = SimPipeline(MANYCORE_32, paper_workload)
        joined = pipeline.run(
            Implementation.REPLICATED_JOINED, ThreadConfig(8, 4, 1)
        )
        assert joined.join_s == pytest.approx(10.7, rel=0.5)

    def test_unjoined_never_pays(self, paper_workload):
        pipeline = SimPipeline(MANYCORE_32, paper_workload)
        unjoined = pipeline.run(
            Implementation.REPLICATED_UNJOINED, ThreadConfig(9, 4, 0)
        )
        assert unjoined.join_s == pytest.approx(0.0, abs=1e-6)
