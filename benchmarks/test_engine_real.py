"""Benchmarks of the real (threaded) engine and the core structures.

These run the actual Python implementations on a 1%-scale corpus.  The
GIL means thread counts do not buy real speed-ups here (that is exactly
why the timing reproduction lives in the simulator); what these
benchmarks document is the relative cost of the real code paths.
"""

import pytest

from repro.adt import FnvHashMap
from repro.engine import (
    Implementation,
    IndexGenerator,
    SequentialIndexer,
    ThreadConfig,
)
from repro.hashing import fnv1a_64
from repro.query import QueryEngine
from repro.text import Tokenizer


class TestHashingCost:
    def test_bench_fnv1a_64(self, benchmark):
        words = [f"benchword{i}" for i in range(1000)]
        total = benchmark(lambda: sum(fnv1a_64(w) for w in words))
        assert total > 0

    def test_bench_hashmap_inserts(self, benchmark):
        keys = [f"key{i}" for i in range(2000)]

        def build():
            m = FnvHashMap()
            for i, key in enumerate(keys):
                m[key] = i
            return m

        assert len(benchmark(build)) == 2000


class TestTokenizerCost:
    def test_bench_tokenize_large_file(self, benchmark, bench_corpus):
        fs = bench_corpus.fs
        big = max(fs.list_files(), key=lambda r: r.size)
        content = fs.read_file(big.path)
        tokenizer = Tokenizer()
        terms = benchmark(tokenizer.tokenize, content)
        assert len(terms) > 100


class TestRealEngineBuilds:
    def test_bench_sequential_naive(self, benchmark, bench_corpus):
        report = benchmark.pedantic(
            SequentialIndexer(bench_corpus.fs, naive=True).build,
            rounds=3,
        )
        assert report.term_count > 0

    def test_bench_sequential_en_bloc(self, benchmark, bench_corpus):
        report = benchmark.pedantic(
            SequentialIndexer(bench_corpus.fs, naive=False).build,
            rounds=3,
        )
        assert report.term_count > 0

    def test_bench_impl1(self, benchmark, bench_corpus):
        generator = IndexGenerator(bench_corpus.fs)
        report = benchmark.pedantic(
            lambda: generator.build(
                Implementation.SHARED_LOCKED, ThreadConfig(3, 1, 0)
            ),
            rounds=3,
        )
        assert report.term_count > 0

    def test_bench_impl2(self, benchmark, bench_corpus):
        generator = IndexGenerator(bench_corpus.fs)
        report = benchmark.pedantic(
            lambda: generator.build(
                Implementation.REPLICATED_JOINED, ThreadConfig(3, 2, 1)
            ),
            rounds=3,
        )
        assert report.term_count > 0

    def test_bench_impl3(self, benchmark, bench_corpus):
        generator = IndexGenerator(bench_corpus.fs)
        report = benchmark.pedantic(
            lambda: generator.build(
                Implementation.REPLICATED_UNJOINED, ThreadConfig(3, 2, 0)
            ),
            rounds=3,
        )
        assert report.term_count > 0


class TestQueryCost:
    @pytest.fixture(scope="class")
    def engine(self, bench_corpus):
        report = IndexGenerator(bench_corpus.fs).build(
            Implementation.REPLICATED_UNJOINED, ThreadConfig(3, 2, 0)
        )
        universe = [ref.path for ref in bench_corpus.fs.list_files()]
        return QueryEngine(report.index, universe=universe), report

    def test_bench_single_term_query(self, benchmark, engine):
        query_engine, report = engine
        term = next(iter(report.index.replicas[0].terms()))
        hits = benchmark(query_engine.search, term)
        assert hits

    def test_bench_boolean_query(self, benchmark, engine):
        query_engine, report = engine
        terms = list(report.index.replicas[0].terms())[:3]
        query = f"{terms[0]} OR ({terms[1]} AND NOT {terms[2]})"
        benchmark(query_engine.search, query)

    def test_bench_parallel_multi_index_query(self, benchmark, engine):
        query_engine, report = engine
        term = next(iter(report.index.replicas[0].terms()))
        hits = benchmark(query_engine.search, term, True)
        assert hits
