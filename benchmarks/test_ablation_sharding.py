"""Ablation (extension): lock striping between the paper's extremes.

The paper compares one lock (Implementation 1) against full replication
(Implementations 2/3).  Striping the shared index's lock over K shards
is the classic middle ground; this ablation places it on the spectrum
using the 32-core platform, where Implementation 1 suffers most.
"""

import pytest

from repro.engine.config import Implementation, ThreadConfig
from repro.platforms import MANYCORE_32
from repro.simengine import SimPipeline

CONFIG = ThreadConfig(8, 4, 0)


@pytest.fixture(scope="module")
def sharding_sweep(paper_workload, write_result):
    pipeline = SimPipeline(MANYCORE_32, paper_workload)
    results = {}
    lines = [
        "Sharding ablation: Implementation 1 with K striped locks "
        "(manycore-32, config (8, 4, 0))",
        f"{'variant':<16}{'time':>8}{'lock wait':>11}",
    ]
    for shards in (1, 2, 4, 8, 16, 32):
        run = pipeline.run(Implementation.SHARED_LOCKED, CONFIG, shards=shards)
        results[shards] = run
        lines.append(
            f"{'K=' + str(shards):<16}{run.total_s:>7.1f}s"
            f"{run.lock_wait_s:>10.1f}s"
        )
    impl3 = pipeline.run(Implementation.REPLICATED_UNJOINED, ThreadConfig(7, 3, 0))
    results["impl3"] = impl3
    lines.append(f"{'Impl 3 (7,3,0)':<16}{impl3.total_s:>7.1f}s{'-':>11}")
    write_result("ablation_sharding.txt", "\n".join(lines))
    return results


class TestShardingAblation:
    def test_monotone_improvement(self, sharding_sweep):
        times = [sharding_sweep[k].total_s for k in (1, 2, 4, 8, 16)]
        assert all(a >= b - 0.2 for a, b in zip(times, times[1:]))

    def test_striping_recovers_most_of_replication_win(self, sharding_sweep):
        single = sharding_sweep[1].total_s
        striped = sharding_sweep[16].total_s
        impl3 = sharding_sweep["impl3"].total_s
        recovered = (single - striped) / (single - impl3)
        assert recovered > 0.7

    def test_replication_still_wins(self, sharding_sweep):
        # Even at K=32, the replicas' total absence of locking wins.
        assert sharding_sweep["impl3"].total_s <= sharding_sweep[32].total_s

    def test_lock_wait_collapses(self, sharding_sweep):
        assert sharding_sweep[16].lock_wait_s < sharding_sweep[1].lock_wait_s / 10

    def test_bench_striped_run(self, benchmark, paper_workload, sharding_sweep):
        pipeline = SimPipeline(MANYCORE_32, paper_workload)
        result = benchmark(
            pipeline.run, Implementation.SHARED_LOCKED, CONFIG, False, 8
        )
        assert result.total_s > 0
