"""Extension study: parallel query processing over multiple indices.

The paper's stated future work: "analyze how to integrate the search
query functionality and parallelize it as well, for instance by using
multiple indices."  This study serves a Zipfian query stream on the
32-core platform from (a) one joined index, (b) Implementation 3's four
unjoined replicas probed sequentially, (c) the replicas probed in
parallel per query.

Expected shape: intra-query parallelism cuts latency severalfold while
cores are idle, costs nothing while the merge overhead is hidden, and
loses throughput once every core is busy — quantifying when
Implementation 3's "search works with multiple indices in parallel"
claim pays off.
"""

import pytest

from repro.platforms import MANYCORE_32
from repro.simengine.querysim import QuerySimulation, QueryWorkloadSpec

WORKER_POINTS = (1, 4, 16, 64)
REPLICAS = 4


@pytest.fixture(scope="module")
def study(paper_workload, write_result):
    simulation = QuerySimulation(
        MANYCORE_32, paper_workload, QueryWorkloadSpec(query_count=400)
    )
    sweep = simulation.sweep(list(WORKER_POINTS), replicas=REPLICAS)
    lines = [
        "Query-serving study (manycore-32, 400 Zipfian queries, "
        f"{REPLICAS} replicas)",
        f"{'mode':<22}{'workers':>8}{'mean lat':>10}{'p95 lat':>10}"
        f"{'qps':>10}",
    ]
    for mode, results in sweep.items():
        for result in results:
            lines.append(
                f"{mode:<22}{result.workers:>8}"
                f"{result.mean_latency_ms:>8.1f}ms"
                f"{result.p95_latency_ms():>8.1f}ms"
                f"{result.throughput_qps:>10.1f}"
            )
    write_result("extension_queries.txt", "\n".join(lines))
    return sweep


def _at(study, mode, workers):
    return next(r for r in study[mode] if r.workers == workers)


class TestQueryStudy:
    def test_parallel_latency_wins_at_light_load(self, study):
        parallel = _at(study, "replicas-parallel", 1)
        joined = _at(study, "joined", 1)
        assert parallel.mean_latency_ms < joined.mean_latency_ms * 0.7

    def test_throughput_scales_with_workers(self, study):
        for mode in study:
            one = _at(study, mode, 1)
            sixteen = _at(study, mode, 16)
            assert sixteen.throughput_qps > one.throughput_qps * 8

    def test_saturation_erases_parallel_advantage(self, study):
        """At 64 workers on 32 cores, throughput is fixed by total CPU
        work — and parallel probing does strictly more of it (merge)."""
        joined = _at(study, "joined", 64)
        parallel = _at(study, "replicas-parallel", 64)
        assert joined.throughput_qps >= parallel.throughput_qps * 0.95

    def test_sequential_replicas_cost_little_over_joined(self, study):
        joined = _at(study, "joined", 16)
        sequential = _at(study, "replicas-sequential", 16)
        assert sequential.throughput_qps > joined.throughput_qps * 0.8

    def test_bench_one_service_run(self, benchmark, paper_workload):
        simulation = QuerySimulation(
            MANYCORE_32, paper_workload, QueryWorkloadSpec(query_count=200)
        )
        result = benchmark(simulation.run, "replicas-parallel", 8, REPLICAS)
        assert result.throughput_qps > 0
