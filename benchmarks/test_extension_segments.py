"""Extension study: segmented refresh vs full-rescan incremental refresh.

The LSM claim quantified: after a small delta lands on a large corpus,
a refresh should cost ``O(delta)`` reads, not ``O(corpus)``.

* **refresh latency** — wall time of ``SegmentedIndexer.refresh()``
  (stat-first scan, reads only changed files) vs the legacy
  ``IncrementalIndexer.refresh()`` (reads and re-hashes every file) for
  the same 10-file delta, at two corpus sizes;
* **read counts** — a counting filesystem proves the segmented path
  re-reads exactly the delta: 10 reads on a 10,000-file corpus leaves
  the untouched 99.9% untouched;
* **merge equivalence** — after the deltas, compaction of the segmented
  index must be byte-identical (canonical RIDX2) to a from-scratch
  rebuild, so none of the timed refreshes can come from a wrong index.

The digest is committed as ``BENCH_segments.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import time

from repro.engine import SequentialIndexer
from repro.fsmodel import VirtualFileSystem
from repro.index.binfmt import dump_index_ridx2
from repro.index.incremental import IncrementalIndexer
from repro.index.segments import SegmentedIndexer

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_segments.json")

SIZES = (1_000, 10_000)
DELTA = 10

WORDS = (
    "alpha bravo charlie delta echo foxtrot golf hotel india juliett "
    "kilo lima mike november oscar papa quebec romeo sierra tango"
).split()


class CountingFs:
    """Delegating wrapper that counts read and stat traffic."""

    def __init__(self, inner):
        self._inner = inner
        self.reads = 0
        self.stats = 0

    def read_file(self, path):
        self.reads += 1
        return self._inner.read_file(path)

    def stat(self, path):
        self.stats += 1
        return self._inner.stat(path)

    def reset(self):
        self.reads = self.stats = 0

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _content(i: int) -> bytes:
    picks = [WORDS[(i + k * 7) % len(WORDS)] for k in range(6)]
    return (" ".join(picks) + f" doc{i}").encode()


def _make_corpus(n: int) -> VirtualFileSystem:
    fs = VirtualFileSystem()
    for d in range(50):
        fs.mkdir(f"dir{d:02d}")
    for i in range(n):
        fs.write_file(f"dir{i % 50:02d}/doc{i:06d}.txt", _content(i))
    return fs


def _mutate(fs: VirtualFileSystem, n: int) -> None:
    for i in range(0, DELTA):
        path = f"dir{i % 50:02d}/doc{i:06d}.txt"
        fs.replace_file(path, _content(i) + b" touched")


def _measure(n: int) -> dict:
    base = _make_corpus(n)
    counting = CountingFs(base)

    segmented = SegmentedIndexer(counting)
    segmented.refresh()  # bootstrap segment 0
    legacy = IncrementalIndexer(counting)
    legacy.refresh()

    _mutate(base, n)

    counting.reset()
    started = time.perf_counter()
    change = segmented.refresh()
    seg_elapsed = time.perf_counter() - started
    seg_reads = counting.reads
    seg_stats = counting.stats

    counting.reset()
    started = time.perf_counter()
    legacy_change = legacy.refresh()
    full_elapsed = time.perf_counter() - started
    full_reads = counting.reads

    assert change.total == DELTA
    assert legacy_change.total == DELTA
    # The acceptance bar: the delta is all the segmented path re-reads.
    assert seg_reads == DELTA, (n, seg_reads)
    assert full_reads == n, (n, full_reads)

    rebuilt = SequentialIndexer(base, naive=False).build().index
    segmented.compact()
    assert segmented.manifest.to_ridx2() == dump_index_ridx2(rebuilt)

    return {
        "files": n,
        "delta_files": DELTA,
        "segmented": {
            "refresh_ms": round(seg_elapsed * 1e3, 3),
            "files_read": seg_reads,
            "files_statted": seg_stats,
            "untouched_reread": seg_reads - DELTA,
        },
        "full_rescan": {
            "refresh_ms": round(full_elapsed * 1e3, 3),
            "files_read": full_reads,
        },
        "read_amplification": round(full_reads / max(seg_reads, 1), 1),
        "speedup": round(full_elapsed / seg_elapsed, 1),
    }


class TestSegmentedRefreshCost:
    def test_delta_refresh_reads_only_the_delta(self, write_result):
        tiers = [_measure(n) for n in SIZES]
        digest = {
            "benchmark": "segmented_refresh",
            "tiers": tiers,
        }
        with open(RESULT_PATH, "w", encoding="utf-8") as fh:
            json.dump(digest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        write_result(
            "extension_segments.txt",
            json.dumps(digest, indent=2, sort_keys=True),
        )

        biggest = tiers[-1]
        assert biggest["files"] == 10_000
        assert biggest["segmented"]["untouched_reread"] == 0
        assert biggest["read_amplification"] >= 100.0
