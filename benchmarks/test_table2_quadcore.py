"""Table 2 — best configurations on the 4-core machine.

Full-fidelity sweep (x up to 12, y up to 6, z up to 2) against the
paper-scale workload; output in benchmarks/results/table2.txt.

Paper: all three implementations tie at ~46.5 s (speed-up ~4.7).
"""

import pytest

from repro.engine.config import Implementation, ThreadConfig
from repro.experiments import (
    PAPER_BEST,
    render_best_config_table,
    run_best_config_table,
)
from repro.platforms import QUAD_CORE
from repro.simengine import SimPipeline

PLATFORM = QUAD_CORE


@pytest.fixture(scope="module")
def table(paper_workload, write_result):
    table = run_best_config_table(PLATFORM, paper_workload)
    write_result("table2.txt", render_best_config_table(table))
    return table


class TestTable2:
    def test_sequential_matches_paper(self, table):
        assert table.sequential_s == pytest.approx(220.0, rel=0.05)

    @pytest.mark.parametrize("implementation", list(Implementation))
    def test_speedups_match_paper(self, table, implementation):
        paper = PAPER_BEST[PLATFORM.name][implementation].speedup
        assert table.row_for(implementation).speedup == pytest.approx(
            paper, rel=0.15
        )

    def test_all_three_tie(self, table):
        speedups = [row.speedup for row in table.rows]
        assert max(speedups) - min(speedups) < 0.25

    def test_bench_best_impl1_run(self, benchmark, paper_workload, table):
        pipeline = SimPipeline(PLATFORM, paper_workload)
        row = table.row_for(Implementation.SHARED_LOCKED)
        result = benchmark(
            pipeline.run, Implementation.SHARED_LOCKED, row.config
        )
        assert result.total_s == pytest.approx(row.exec_time_s, rel=0.02)

    def test_bench_best_impl3_run(self, benchmark, paper_workload, table):
        pipeline = SimPipeline(PLATFORM, paper_workload)
        row = table.row_for(Implementation.REPLICATED_UNJOINED)
        result = benchmark(
            pipeline.run, Implementation.REPLICATED_UNJOINED, row.config
        )
        assert result.total_s == pytest.approx(row.exec_time_s, rel=0.02)
