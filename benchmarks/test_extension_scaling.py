"""Extension study: how do the three designs scale with core count?

The paper measures three fixed machines; this study isolates the *core
count* variable by holding the 32-core machine's disk and memory
parameters fixed and sweeping hypothetical variants from 2 to 64 cores.
The expectation from the paper's analysis: Implementation 3 rides the
disk ceiling once enough cores exist; Implementation 1 stops scaling
early because its serialized critical section does not shrink with
cores; and past the disk saturation point nobody gains anything.
"""

import pytest

from repro.autotune import ConfigurationSpace, ExhaustiveSearch
from repro.engine.config import Implementation
from repro.platforms import MANYCORE_32, hypothetical
from repro.simengine import SimPipeline

CORE_COUNTS = (2, 4, 8, 16, 32, 64)


@pytest.fixture(scope="module")
def scaling_results(paper_workload, write_result):
    results = {}
    lines = [
        "Core-count scaling (manycore-32 disk, best config per point)",
        f"{'cores':>6}" + "".join(
            f"{impl.paper_name:>20}" for impl in Implementation
        ),
    ]
    search = ExhaustiveSearch()
    for cores in CORE_COUNTS:
        platform = hypothetical(MANYCORE_32, cores=cores)
        pipeline = SimPipeline(
            platform, paper_workload, batches_per_extractor=60
        )
        sequential = pipeline.run_sequential().total_s
        row = {}
        for implementation in Implementation:
            space = ConfigurationSpace(
                implementation, max_extractors=10, max_updaters=4
            )
            best = search.run(
                space,
                lambda config, impl=implementation: pipeline.run(
                    impl, config
                ).total_s,
            )
            row[implementation] = sequential / best.best_value
        results[cores] = row
        lines.append(
            f"{cores:>6}" + "".join(
                f"{row[impl]:>19.2f}x" for impl in Implementation
            )
        )
    write_result("extension_scaling.txt", "\n".join(lines))
    return results


IMPL1 = Implementation.SHARED_LOCKED
IMPL3 = Implementation.REPLICATED_UNJOINED


class TestScalingStudy:
    def test_impl3_scales_then_saturates(self, scaling_results):
        speedups = [scaling_results[c][IMPL3] for c in CORE_COUNTS]
        assert speedups[1] > speedups[0]  # still gaining at low counts
        # Disk-bound plateau: 64 cores buy almost nothing over 32.
        assert speedups[-1] <= speedups[-2] * 1.1

    def test_impl1_gap_grows_with_cores(self, scaling_results):
        gap_small = (
            scaling_results[4][IMPL3] / scaling_results[4][IMPL1]
        )
        gap_large = (
            scaling_results[32][IMPL3] / scaling_results[32][IMPL1]
        )
        assert gap_large > gap_small

    def test_impl3_at_least_matches_impl1_everywhere(self, scaling_results):
        for cores in CORE_COUNTS:
            row = scaling_results[cores]
            assert row[IMPL3] >= row[IMPL1] - 0.05

    def test_bench_one_scaling_point(self, benchmark, paper_workload):
        platform = hypothetical(MANYCORE_32, cores=16)
        pipeline = SimPipeline(platform, paper_workload, batches_per_extractor=60)
        from repro.engine.config import ThreadConfig

        result = benchmark(
            pipeline.run, Implementation.REPLICATED_UNJOINED, ThreadConfig(7, 3, 0)
        )
        assert result.total_s > 0
