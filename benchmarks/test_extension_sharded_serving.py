"""Extension study: document-partitioned serving behind the broker.

Two questions, two instruments:

1. **Measured** (this machine, real threads): replay one seeded
   Poisson arrival schedule against a single ``SearchService`` and
   against N-shard ``ScatterGatherBroker`` topologies over the *same*
   corpus, and record the throughput/tail-latency curves plus the
   broker's per-query overhead.  In one CPython process the shards
   share the GIL, so this measures the *coordination cost* of
   scatter-gather (it must stay bounded), not a parallel speedup —
   and the differential gate that sharded boolean answers stay
   byte-identical under load.
2. **Simulated** (calibrated platforms): the ``doc-sharded`` mode of
   :class:`~repro.simengine.querysim.QuerySimulation` runs the same
   scatter/probe/gather structure on the calibrated ``manycore-32``
   profile, sweeping shard counts through 16 — where per-shard probes
   genuinely run on distinct cores.  This is where the ≥8-shard
   scaling question is answered, the same way the paper's simulator
   answers its build-side questions.

The digest is committed as ``BENCH_sharded_serving.json`` at the repo
root; NaN never reaches it (``require_measured`` +
``json.dump(allow_nan=False)``).
"""

from __future__ import annotations

import json
import math
import os
import time

import pytest

from repro.engine import SequentialIndexer
from repro.fsmodel import VirtualFileSystem
from repro.obs import recorder as obsrec
from repro.platforms import platform_by_name
from repro.query.ranking import FrequencyIndex
from repro.service import (
    IndexSnapshot,
    OpenLoopLoadGenerator,
    QuerySpec,
    SearchService,
    build_sharded_service,
)
from repro.simengine.querysim import QuerySimulation, QueryWorkloadSpec
from repro.simengine.workload import Workload

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_sharded_serving.json")

FILES = 2_000
SHARD_COUNTS = (2, 4)            # real-thread topologies vs 1 service
SIM_SHARD_COUNTS = (1, 2, 4, 8, 16)  # the calibrated-platform sweep
SIM_WORKERS = (1, 4, 16)
LOAD_FACTORS = (0.3, 0.6)        # x calibrated single-service capacity
DURATION_S = 1.0
WARMUP_S = 0.2
SEED = 20260807
EVAL_WORKERS = 2
MAX_INFLIGHT = 64
ISSUERS = 8

WORDS = (
    "alpha bravo charlie delta echo foxtrot golf hotel india juliett "
    "kilo lima mike november oscar papa quebec romeo sierra tango"
).split()


def _make_corpus(n: int) -> VirtualFileSystem:
    fs = VirtualFileSystem()
    for d in range(20):
        fs.mkdir(f"dir{d:02d}")
    for i in range(n):
        picks = [WORDS[(i + k * 7) % len(WORDS)] for k in range(6)]
        fs.write_file(
            f"dir{i % 20:02d}/doc{i:05d}.txt",
            (" ".join(picks) + f" doc{i}").encode(),
        )
    return fs


def _workload() -> list:
    specs = []
    for i in range(40):
        a = WORDS[i % len(WORDS)]
        b = WORDS[(i * 3 + 5) % len(WORDS)]
        op = ("OR", "AND", "AND NOT")[i % 3]
        specs.append(QuerySpec(f"{a} {op} {b}"))
    return specs


def _calibrate(snapshot: IndexSnapshot, specs) -> float:
    unique = sorted({spec.text for spec in specs})
    for text in unique:
        snapshot.search(text)
    started = time.perf_counter()
    reps = 3
    for _ in range(reps):
        for text in unique:
            snapshot.search(text)
    return (time.perf_counter() - started) / (reps * len(unique))


@pytest.fixture(scope="module")
def corpus():
    fs = _make_corpus(FILES)
    index = SequentialIndexer(fs, naive=False).build().index
    universe = [ref.path for ref in fs.list_files()]
    frequencies = FrequencyIndex.from_fs(fs)
    return index, universe, frequencies


@pytest.fixture()
def fresh_recorder():
    previous = obsrec.set_recorder(obsrec.Recorder(enabled=True))
    yield
    obsrec.set_recorder(previous)


def _run_measured_curve(index, universe, frequencies, specs):
    """Replay the same schedule against 1 service and N-shard brokers."""
    snapshot = IndexSnapshot(index)
    solo_s = _calibrate(snapshot, specs)
    capacity_qps = 1.0 / solo_s

    curve = []
    for factor in LOAD_FACTORS:
        qps = factor * capacity_qps
        generator = OpenLoopLoadGenerator(
            specs, offered_qps=qps, duration_s=DURATION_S,
            warmup_s=WARMUP_S, seed=SEED,
        )
        point = {
            "load_factor": factor,
            "offered_qps": round(qps, 1),
            "arrivals": len(generator.arrivals),
        }

        obsrec.set_recorder(obsrec.Recorder(enabled=True))
        service = SearchService(
            snapshot, workers=EVAL_WORKERS, max_inflight=MAX_INFLIGHT
        )
        try:
            baseline = generator.run_service(
                service, workers=ISSUERS, label="service-1"
            ).require_measured()
        finally:
            service.close()
        point["service"] = baseline.to_dict()

        for shards in SHARD_COUNTS:
            obsrec.set_recorder(obsrec.Recorder(enabled=True))
            broker = build_sharded_service(
                index, universe, shards=shards, frequencies=frequencies,
                workers=EVAL_WORKERS, max_inflight=MAX_INFLIGHT,
            )
            try:
                sharded = generator.run_service(
                    broker, workers=ISSUERS, label=f"broker-{shards}"
                ).require_measured()
                stats = broker.stats()
            finally:
                broker.close()
            assert stats["broker.shards_ok"] == float(shards)
            assert sharded.errors == 0
            point[f"broker_{shards}"] = sharded.to_dict()
            point[f"broker_{shards}_stats"] = {
                k: round(v, 1) for k, v in stats.items()
            }
        curve.append(point)
    return curve, {
        "solo_eval_us": round(solo_s * 1e6, 1),
        "capacity_qps": round(capacity_qps, 1),
    }


def _differential_under_load(index, universe, frequencies, specs):
    """Sharded boolean answers equal the unsharded engine's, per query."""
    from repro.query.evaluator import QueryEngine

    engine = QueryEngine(index, universe=frozenset(universe))
    checked = 0
    broker = build_sharded_service(
        index, universe, shards=3, frequencies=frequencies,
        workers=EVAL_WORKERS, max_inflight=MAX_INFLIGHT,
    )
    try:
        for spec in specs:
            result = broker.query(spec.text)
            assert result.paths == engine.search(spec.text), spec.text
            assert result.shards_ok == result.shards_total == 3
            checked += 1
    finally:
        broker.close()
    return {"queries_checked": checked, "identical": True}


def _simulated_sweep():
    """The ≥8-shard question on the calibrated manycore-32 platform."""
    platform = platform_by_name("manycore-32")
    simulation = QuerySimulation(
        platform, Workload.synthesize(),
        QueryWorkloadSpec(query_count=300),
    )
    grid = []
    for workers in SIM_WORKERS:
        for shards in SIM_SHARD_COUNTS:
            result = simulation.run_doc_sharded(workers, shards)
            grid.append({
                "workers": workers,
                "shards": shards,
                "throughput_qps": round(result.throughput_qps, 1),
                "mean_latency_ms": round(result.mean_latency_ms, 4),
                "p95_latency_ms": round(result.p95_latency_ms(), 4),
            })
    return {"platform": platform.name, "grid": grid}


class TestShardedServing:
    def test_sharded_serving_curves(self, corpus, fresh_recorder,
                                    write_result):
        index, universe, frequencies = corpus
        specs = _workload()

        curve, calibration = _run_measured_curve(
            index, universe, frequencies, specs
        )
        differential = _differential_under_load(
            index, universe, frequencies, specs
        )
        simulated = _simulated_sweep()

        digest = {
            "benchmark": "sharded_serving",
            "protocol": {
                "open_loop": True,
                "arrival_process": "poisson",
                "latency_from": "scheduled_arrival",
                "seed": SEED,
                "duration_s": DURATION_S,
                "warmup_s": WARMUP_S,
                "files": FILES,
                "eval_workers": EVAL_WORKERS,
                "max_inflight": MAX_INFLIGHT,
                "issuers": ISSUERS,
                "shard_counts": list(SHARD_COUNTS),
                "note": (
                    "single-process threads share the GIL: the measured "
                    "curves price scatter-gather coordination, the "
                    "simulated sweep answers the multi-core scaling "
                    "question on the calibrated platform"
                ),
            },
            "calibration": calibration,
            "curve": curve,
            "differential": differential,
            "simulated": simulated,
        }
        with open(RESULT_PATH, "w", encoding="utf-8") as fh:
            json.dump(digest, fh, indent=2, sort_keys=True,
                      allow_nan=False)
            fh.write("\n")
        write_result(
            "extension_sharded_serving.txt",
            json.dumps(digest, indent=2, sort_keys=True),
        )

        # Every measured point is finite and fully accounted.
        for point in curve:
            for key in ("service",) + tuple(
                f"broker_{n}" for n in SHARD_COUNTS
            ):
                digest_point = point[key]
                assert digest_point["measured"] > 0
                assert digest_point["p95_ms"] is not None
                assert math.isfinite(digest_point["p95_ms"])

        # The simulated sweep must show sharding helping latency on the
        # 32-core platform at light load...
        light = {g["shards"]: g for g in simulated["grid"]
                 if g["workers"] == 4}
        assert light[8]["mean_latency_ms"] < light[1]["mean_latency_ms"]
        # ...with diminishing (not magically superlinear) returns by 16.
        assert (light[16]["mean_latency_ms"]
                > light[8]["mean_latency_ms"] * 0.3)
