"""Extension study: robustness of the conclusions to the fitted
parameters.

The stage times come from the paper's Table 1, but aggregate bandwidth,
cache-coherence penalty and lock handoff were fitted to Tables 2-4.
This study halves and doubles each fitted parameter on the 32-core
platform and checks whether the paper's central conclusion — the strict
Implementation 3 > 2 > 1 ordering — survives.
"""

import pytest

from repro.engine.config import Implementation
from repro.experiments.sensitivity import (
    render_sensitivity,
    sweep_parameter,
)
from repro.platforms import MANYCORE_32

PARAMETERS = ("shared_coherence", "lock_handoff_us", "aggregate_mbps")
IMPL1 = Implementation.SHARED_LOCKED
IMPL3 = Implementation.REPLICATED_UNJOINED


@pytest.fixture(scope="module")
def reports(paper_workload, write_result):
    reports = {
        parameter: sweep_parameter(
            MANYCORE_32, paper_workload, parameter,
            scales=(0.5, 1.0, 2.0),
        )
        for parameter in PARAMETERS
    }
    write_result(
        "extension_sensitivity.txt",
        "\n\n".join(render_sensitivity(r) for r in reports.values()),
    )
    return reports


class TestSensitivity:
    @pytest.mark.parametrize("parameter", PARAMETERS)
    def test_impl3_beats_impl1_under_all_perturbations(
        self, reports, parameter
    ):
        """The headline conclusion must not hinge on the fitted values."""
        for point in reports[parameter].points:
            assert point.speedups[IMPL3] > point.speedups[IMPL1], (
                f"{parameter} x{point.scale}: ordering flipped"
            )

    def test_contention_parameters_mostly_hit_impl1(self, reports):
        """Coherence and handoff scale Impl 1's pain, not Impl 3's."""
        for parameter in ("shared_coherence", "lock_handoff_us"):
            report = reports[parameter]
            assert report.speedup_range(IMPL1) > report.speedup_range(IMPL3)

    def test_bandwidth_moves_everyone(self, reports):
        """Aggregate bandwidth is the shared ceiling: doubling it must
        lift Implementation 3 substantially."""
        report = reports["aggregate_mbps"]
        assert report.speedup_range(IMPL3) > 0.5

    def test_unknown_parameter_rejected(self, paper_workload):
        with pytest.raises(ValueError):
            sweep_parameter(MANYCORE_32, paper_workload, "cores")

    def test_bench_one_sensitivity_point(self, benchmark, paper_workload):
        result = benchmark.pedantic(
            lambda: sweep_parameter(
                MANYCORE_32, paper_workload, "shared_coherence",
                scales=(1.0,), max_extractors=4, max_updaters=2,
                batches_per_extractor=30,
            ),
            rounds=1,
            iterations=1,
        )
        assert result.points
