"""Ablation (section 3 / future work): cost of richer file formats.

The paper indexed plain text and notes that "for more complex formats,
this part [extraction] would take longer".  This ablation measures it:
the same underlying text is encoded as plain text, HTML, Markdown, CSV
and DocZ, and per-format extraction+tokenization cost is benchmarked on
the real code paths.
"""

import time

import pytest

from repro.corpus import CorpusGenerator, PAPER_PROFILE
from repro.formats import default_registry
from repro.formats.mixed import _ENCODERS
from repro.text import Tokenizer

FORMATS = ("plain", "html", "markdown", "csv", "docz")


@pytest.fixture(scope="module")
def encoded_corpus():
    """The same ~300 KB of text, encoded once per format."""
    import random

    corpus = CorpusGenerator(PAPER_PROFILE.scaled(0.0006, name="fmt")).generate()
    texts = [
        corpus.fs.read_file(ref.path) for ref in corpus.fs.list_files()
    ]
    rng = random.Random(7)
    return {
        name: [(f"doc{i}.{name}", _ENCODERS[name](text, rng))
               for i, text in enumerate(texts)]
        for name in FORMATS
    }


def extract_all(documents, registry, tokenizer):
    total_terms = 0
    for path, content in documents:
        text = registry.extract_text(path, content)
        total_terms += sum(1 for _ in tokenizer.iter_terms(text))
    return total_terms


class TestFormatCosts:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_bench_format_extraction(self, benchmark, encoded_corpus, fmt):
        registry = default_registry()
        tokenizer = Tokenizer()
        terms = benchmark(
            extract_all, encoded_corpus[fmt], registry, tokenizer
        )
        assert terms > 1000

    def test_rich_formats_cost_more_than_plain(
        self, encoded_corpus, write_result
    ):
        """The paper's prediction, quantified on real code paths."""
        registry = default_registry()
        tokenizer = Tokenizer()
        costs = {}
        for fmt in FORMATS:
            t0 = time.perf_counter()
            for _ in range(3):
                extract_all(encoded_corpus[fmt], registry, tokenizer)
            costs[fmt] = (time.perf_counter() - t0) / 3
        lines = [
            "Format-cost ablation: extraction + tokenization of the same text",
            f"{'format':<10}{'time':>9}{'vs plain':>10}",
        ]
        for fmt in FORMATS:
            lines.append(
                f"{fmt:<10}{costs[fmt] * 1000:>8.1f}ms"
                f"{costs[fmt] / costs['plain']:>9.2f}x"
            )
        write_result("ablation_formats.txt", "\n".join(lines))
        assert costs["html"] > costs["plain"]

    def test_all_formats_preserve_terms(self, encoded_corpus):
        registry = default_registry()
        tokenizer = Tokenizer()
        plain_terms = set()
        for path, content in encoded_corpus["plain"]:
            plain_terms.update(tokenizer.tokenize(content))
        for fmt in ("html", "markdown", "docz"):
            extracted = set()
            for path, content in encoded_corpus[fmt]:
                text = registry.extract_text(path, content)
                extracted.update(tokenizer.tokenize(text))
            assert plain_terms <= extracted, f"{fmt} lost terms"
