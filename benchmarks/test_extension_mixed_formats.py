"""Extension study: the paper's experiment on a mixed-format corpus.

The paper's benchmark is plain text, chosen to make scanning fast —
"it also made the parallelization problem harder: the faster the term
extractor runs, the less opportunity for speedup exists."  This study
re-runs the configuration sweep with the scan costs of a realistic
desktop mix (40 % plain, 25 % HTML, 15 % Markdown, 10 % CSV, 10 % DocZ,
multipliers from the format-cost ablation) and quantifies the flip
side: richer formats mean more CPU work per byte, hence *more*
parallelization opportunity.
"""

import pytest

from repro.engine.config import Implementation
from repro.experiments import run_best_config_table
from repro.platforms import OCTO_CORE, QUAD_CORE
from repro.simengine import Workload, WorkloadSpec

MIX = {"plain": 0.40, "html": 0.25, "markdown": 0.15, "csv": 0.10,
       "docz": 0.10}

SWEEP = dict(max_extractors=10, max_updaters=4, batches_per_extractor=60)


@pytest.fixture(scope="module")
def mixed_workload():
    return Workload.synthesize(WorkloadSpec(format_mix=MIX))


@pytest.fixture(scope="module")
def study(paper_workload, mixed_workload, write_result):
    results = {}
    lines = [
        "Mixed-format study: the paper's sweep with realistic scan costs",
        f"{'platform':<12}{'corpus':<8}{'seq':>7}"
        + "".join(f"{impl.paper_name:>20}" for impl in Implementation),
    ]
    for platform in (QUAD_CORE, OCTO_CORE):
        for label, workload in (("plain", paper_workload),
                                ("mixed", mixed_workload)):
            table = run_best_config_table(platform, workload, **SWEEP)
            results[(platform.name, label)] = table
            lines.append(
                f"{platform.name:<12}{label:<8}{table.sequential_s:>6.1f}s"
                + "".join(
                    f"{table.row_for(impl).speedup:>13.2f}x "
                    f"{table.row_for(impl).config!s:>5}"
                    for impl in Implementation
                )
            )
    write_result("extension_mixed_formats.txt", "\n".join(lines))
    return results


IMPL3 = Implementation.REPLICATED_UNJOINED


class TestMixedFormatStudy:
    def test_mixed_corpus_takes_longer_sequentially(self, study):
        for platform in ("quad-core", "octo-core"):
            plain = study[(platform, "plain")].sequential_s
            mixed = study[(platform, "mixed")].sequential_s
            assert mixed > plain

    def test_mixed_corpus_increases_speedup_opportunity(self, study):
        """More CPU per byte -> parallelism buys more, exactly the
        paper's 'faster extractor = less opportunity' inverted."""
        platform = "octo-core"  # near-saturated disk, slow cores
        plain = study[(platform, "plain")].row_for(IMPL3).speedup
        mixed = study[(platform, "mixed")].row_for(IMPL3).speedup
        assert mixed > plain

    def test_ordering_preserved_on_mixed(self, study):
        table = study[("octo-core", "mixed")]
        s = {impl: table.row_for(impl).speedup for impl in Implementation}
        assert (
            s[IMPL3]
            >= s[Implementation.REPLICATED_JOINED]
            >= s[Implementation.SHARED_LOCKED] * 0.98
        )

    def test_bench_mixed_run(self, benchmark, mixed_workload):
        from repro.engine.config import ThreadConfig
        from repro.simengine import SimPipeline

        pipeline = SimPipeline(OCTO_CORE, mixed_workload,
                               batches_per_extractor=60)
        result = benchmark(pipeline.run, IMPL3, ThreadConfig(5, 2, 0))
        assert result.total_s > 0
