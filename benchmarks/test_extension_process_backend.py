"""Extension study: the multiprocessing backend vs. threaded Impl 2.

Builds a 2,000-file on-disk corpus and races the threaded (4, 0, 1)
"Join Forces" engine against the process backend at the same tuple.
The comparison metric is the pipeline time the paper tunes — extract +
update + join — excluding stage 1 (shared by both engines verbatim).

The measured ratio and both stage breakdowns land in
``benchmarks/results/BENCH_process_backend.json``.  On a multi-core
machine the process backend additionally gets true parallelism; even on
one core it wins on the leaner worker pipeline (native-set dedup and
array postings instead of per-byte FNV hashing), which the
merge-equivalence tests prove changes nothing about the output.
"""

import json
import os

import pytest

from repro.corpus import CorpusProfile, CorpusGenerator, materialize
from repro.engine import (
    Implementation,
    ProcessReplicatedIndexer,
    ReplicatedJoinedIndexer,
    ThreadConfig,
)
from repro.index.binfmt import dump_index_bytes

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

WORKERS = 4
ROUNDS = 3

BENCH_PROFILE = CorpusProfile(
    name="procbench",
    file_count=2_000,
    total_bytes=4_000_000,
)


@pytest.fixture(scope="module")
def bench_dir(tmp_path_factory):
    """The 2,000-file benchmark corpus, materialized on disk."""
    destination = str(tmp_path_factory.mktemp("procbench") / "corpus")
    corpus = CorpusGenerator(BENCH_PROFILE).generate()
    materialize(corpus.fs, destination)
    return destination


def _pipeline_seconds(report) -> float:
    timings = report.timings
    # The y = 0 convention reports extraction and update as one fused
    # phase (timings.extraction == timings.update), so count it once.
    return timings.extraction + timings.join


def _race(fs):
    thread_config = ThreadConfig(WORKERS, 0, 1)
    process_config = ThreadConfig(WORKERS, 0, 1, backend="process")
    threaded = ReplicatedJoinedIndexer(fs)
    process = ProcessReplicatedIndexer(fs, oversubscribe=True)

    thread_runs, process_runs = [], []
    thread_index = process_index = None
    for _ in range(ROUNDS):
        report = threaded.build(thread_config)
        thread_runs.append(_pipeline_seconds(report))
        thread_index = report.index
        report = process.build(process_config)
        process_runs.append(_pipeline_seconds(report))
        process_index = report.index
    return thread_runs, process_runs, thread_index, process_index


class TestProcessBackendRace:
    def test_process_beats_threads(self, bench_dir, write_result):
        from repro.fsmodel import OsFileSystem

        fs = OsFileSystem(bench_dir)
        thread_runs, process_runs, thread_index, process_index = _race(fs)

        # Correctness first: the race is meaningless unless both
        # engines produce the same canonical index.
        assert dump_index_bytes(process_index) == dump_index_bytes(
            thread_index
        )

        thread_s = min(thread_runs)
        process_s = min(process_runs)
        ratio = thread_s / process_s
        cpus = os.cpu_count() or 1

        payload = {
            "benchmark": "process_backend_vs_threaded_impl2",
            "corpus": {
                "files": BENCH_PROFILE.file_count,
                "bytes": BENCH_PROFILE.total_bytes,
            },
            "workers": WORKERS,
            "config": "(4, 0, 1)",
            "cpus": cpus,
            "rounds": ROUNDS,
            "metric": "extract+update+join seconds (best of rounds)",
            "threaded_s": round(thread_s, 4),
            "process_s": round(process_s, 4),
            "threaded_runs_s": [round(s, 4) for s in thread_runs],
            "process_runs_s": [round(s, 4) for s in process_runs],
            "speedup_ratio": round(ratio, 3),
            "outputs_byte_identical": True,
        }
        os.makedirs(RESULTS_DIR, exist_ok=True)
        target = os.path.join(RESULTS_DIR, "BENCH_process_backend.json")
        with open(target, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")

        write_result(
            "extension_process_backend.txt",
            "\n".join([
                "Process backend vs threaded Implementation 2 "
                f"({BENCH_PROFILE.file_count} files, {WORKERS} workers, "
                f"{cpus} CPU(s))",
                f"{'engine':<12}{'extract+update+join':>22}",
                f"{'threaded':<12}{thread_s:>21.3f}s",
                f"{'process':<12}{process_s:>21.3f}s",
                f"speedup: {ratio:.2f}x (outputs byte-identical)",
            ]),
        )
        assert ratio > 1.0, (
            f"process backend must beat threaded Impl 2, got {ratio:.3f}x "
            f"(threaded {thread_s:.3f}s vs process {process_s:.3f}s)"
        )
