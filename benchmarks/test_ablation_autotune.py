"""Ablation (lessons learned, step 6): auto-tuner strategies.

The paper recommends "Use an auto-tuner to speed up exploring the
design space."  This ablation quantifies the recommendation: how close
do cheap search strategies get to the exhaustive optimum, at what
fraction of the evaluations?
"""

import pytest

from repro.autotune import (
    ConfigurationSpace,
    ExhaustiveSearch,
    HillClimbing,
    RandomSearch,
)
from repro.engine.config import Implementation
from repro.platforms import OCTO_CORE
from repro.simengine import SimPipeline

IMPL = Implementation.REPLICATED_UNJOINED


@pytest.fixture(scope="module")
def objective(paper_workload):
    pipeline = SimPipeline(OCTO_CORE, paper_workload, batches_per_extractor=60)
    return lambda config: pipeline.run(IMPL, config).total_s


@pytest.fixture(scope="module")
def space():
    return ConfigurationSpace(IMPL, max_extractors=10, max_updaters=5)


@pytest.fixture(scope="module")
def exhaustive_result(space, objective, write_result):
    result = ExhaustiveSearch().run(space, objective)
    hill = HillClimbing(restarts=3, seed=0).run(space, objective)
    rand = RandomSearch(budget=hill.evaluations, seed=0).run(space, objective)
    lines = [
        "Auto-tuner ablation (Implementation 3 on octo-core)",
        f"{'strategy':<14}{'best config':>12}{'best time':>11}{'evals':>7}",
        f"{'exhaustive':<14}{str(result.best_config):>12}"
        f"{result.best_value:>10.1f}s{result.evaluations:>7}",
        f"{'hill-climb':<14}{str(hill.best_config):>12}"
        f"{hill.best_value:>10.1f}s{hill.evaluations:>7}",
        f"{'random':<14}{str(rand.best_config):>12}"
        f"{rand.best_value:>10.1f}s{rand.evaluations:>7}",
    ]
    write_result("ablation_autotune.txt", "\n".join(lines))
    return result, hill, rand


class TestAutotuneAblation:
    def test_hill_climbing_near_optimal(self, exhaustive_result):
        exhaustive, hill, _ = exhaustive_result
        assert hill.best_value <= exhaustive.best_value * 1.05

    def test_hill_climbing_cheaper(self, exhaustive_result):
        exhaustive, hill, _ = exhaustive_result
        assert hill.evaluations < exhaustive.evaluations * 0.7

    def test_random_with_same_budget_no_better_than_exhaustive(
        self, exhaustive_result
    ):
        exhaustive, _, rand = exhaustive_result
        assert rand.best_value >= exhaustive.best_value - 1e-9

    def test_bench_hill_climbing(self, benchmark, space, objective,
                                 exhaustive_result):
        result = benchmark.pedantic(
            lambda: HillClimbing(restarts=2, seed=1).run(space, objective),
            rounds=3,
        )
        assert result.best_value > 0

    def test_bench_single_evaluation(self, benchmark, paper_workload):
        from repro.engine.config import ThreadConfig

        pipeline = SimPipeline(OCTO_CORE, paper_workload, batches_per_extractor=60)
        result = benchmark(pipeline.run, IMPL, ThreadConfig(6, 2, 0))
        assert result.total_s > 0
