"""Table 1 — sequential stage times on the three platforms.

Regenerates the table (written to benchmarks/results/table1.txt) and
benchmarks the simulated stage measurement itself.
"""

import pytest

from repro.experiments import PAPER_STAGE_TIMES, render_table1, run_table1
from repro.platforms import QUAD_CORE
from repro.simengine import SimPipeline


@pytest.fixture(scope="module")
def table1_rows(paper_workload, write_result):
    rows = run_table1(paper_workload)
    write_result("table1.txt", render_table1(rows))
    return rows


class TestTable1:
    def test_matches_paper(self, table1_rows):
        for row in table1_rows:
            paper = PAPER_STAGE_TIMES[row.platform]
            assert row.filename_generation == pytest.approx(paper[0], rel=0.05)
            assert row.read_files == pytest.approx(paper[1], rel=0.05)
            assert row.read_and_extract == pytest.approx(paper[2], rel=0.05)
            assert row.index_update == pytest.approx(paper[3], rel=0.05)

    def test_bench_stage_simulation(self, benchmark, paper_workload, table1_rows):
        pipeline = SimPipeline(QUAD_CORE, paper_workload)
        times = benchmark(pipeline.stage_times)
        assert times.read_files == pytest.approx(77.0, rel=0.05)

    def test_bench_sequential_simulation(self, benchmark, paper_workload):
        pipeline = SimPipeline(QUAD_CORE, paper_workload)
        result = benchmark(pipeline.run_sequential)
        assert result.total_s == pytest.approx(220.0, rel=0.05)
