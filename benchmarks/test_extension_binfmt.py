"""Extension study: index persistence formats.

Compares the transparent JSON-lines format against the gap-compressed
binary format on a real corpus's index: file size, save time, load
time.  The binary format's postings cost ~1 byte per (term, file) pair;
JSON pays the full path string per pair.
"""

import os

import pytest

from repro.engine import SequentialIndexer
from repro.index.binfmt import (
    dump_index_bytes,
    load_index_bytes,
    save_index_binary,
)
from repro.index.serialize import load_index, save_index


@pytest.fixture(scope="module")
def built_index(bench_corpus):
    return SequentialIndexer(bench_corpus.fs, naive=False).build().index


class TestPersistenceFormats:
    def test_bench_json_save(self, benchmark, built_index, tmp_path_factory):
        target = str(tmp_path_factory.mktemp("json") / "index.idx")

        def save():
            if os.path.exists(target):
                os.remove(target)
            save_index(built_index, target)

        benchmark(save)

    def test_bench_binary_save(self, benchmark, built_index, tmp_path_factory):
        target = str(tmp_path_factory.mktemp("bin") / "index.ridx")

        def save():
            if os.path.exists(target):
                os.remove(target)
            save_index_binary(built_index, target)

        benchmark(save)

    def test_bench_json_load(self, benchmark, built_index, tmp_path_factory):
        target = str(tmp_path_factory.mktemp("jload") / "index.idx")
        save_index(built_index, target)
        loaded = benchmark(load_index, target)
        assert loaded == built_index

    def test_bench_binary_load(self, benchmark, built_index):
        blob = dump_index_bytes(built_index)
        loaded = benchmark(load_index_bytes, blob)
        assert loaded == built_index

    def test_size_comparison(self, built_index, tmp_path_factory,
                             write_result):
        directory = tmp_path_factory.mktemp("sizes")
        json_path = str(directory / "index.idx")
        binary_path = str(directory / "index.ridx")
        save_index(built_index, json_path)
        save_index_binary(built_index, binary_path)
        json_size = os.path.getsize(json_path)
        binary_size = os.path.getsize(binary_path)
        pairs = built_index.posting_count
        lines = [
            "Persistence-format study (1%-scale corpus index)",
            f"{'format':<10}{'bytes':>12}{'bytes/pair':>12}",
            f"{'json':<10}{json_size:>12}{json_size / pairs:>12.2f}",
            f"{'binary':<10}{binary_size:>12}{binary_size / pairs:>12.2f}",
            f"ratio: {json_size / binary_size:.1f}x",
        ]
        write_result("extension_binfmt.txt", "\n".join(lines))
        assert binary_size * 3 < json_size
