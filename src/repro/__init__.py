"""repro — a reproduction of "Parallelizing an Index Generator for
Desktop Search" (Meder & Tichy, Karlsruhe Reports in Informatics 2010-9).

The package has two halves:

* a **real desktop-search engine**: corpus generation
  (:mod:`repro.corpus`), FNV-hashed index structures (:mod:`repro.adt`,
  :mod:`repro.index`), the paper's three parallel implementations on
  real Python threads and processes (:mod:`repro.engine`), a boolean
  query engine (:mod:`repro.query`) and a snapshot-isolated query
  service (:mod:`repro.service`);
* a **calibrated platform simulator**: a discrete-event kernel
  (:mod:`repro.sim`), models of the paper's 4-, 8- and 32-core Intel
  machines (:mod:`repro.platforms`), the simulated pipeline
  (:mod:`repro.simengine`), an auto-tuner (:mod:`repro.autotune`) and
  the experiment drivers that regenerate the paper's Tables 1-4
  (:mod:`repro.experiments`).

The front door is the :class:`Search` session (:mod:`repro.api`)::

    from repro import Search, ThreadConfig

    session = Search.build("~/documents", config=ThreadConfig(3, 2, 0))
    hits = session.query("cat AND dog")
    session.refresh()                    # pick up filesystem changes
    session.save("documents.ridx")
    service = session.serve(workers=4)   # concurrent serving

The historical entry points (``IndexGenerator``, ``CorpusGenerator``,
the simulator names, ...) still import from here but now raise a
``DeprecationWarning`` — import them from their home modules
(:mod:`repro.engine`, :mod:`repro.corpus`, :mod:`repro.simengine`, ...)
or migrate to :class:`Search`; ``docs/api.md`` has the table.
"""

__version__ = "2.0.0"

from repro.api import Search
from repro.engine.config import Implementation, ThreadConfig
from repro.engine.faults import FaultPolicy
from repro.engine.results import BuildReport
from repro.extract import Extractor, ExtractorSpec, get_extractor
from repro.index.inverted import InvertedIndex
from repro.query.evaluator import QueryEngine
from repro.service.frontend import AsyncSearchFrontend
from repro.service.service import SearchService
from repro.service.sharded import ScatterGatherBroker, ShardDeadError

#: The curated public API.  Everything else that used to live at the
#: top level still resolves via ``__getattr__`` with a
#: ``DeprecationWarning`` pointing at its home module.
__all__ = [
    "AsyncSearchFrontend",
    "BuildReport",
    "Extractor",
    "ExtractorSpec",
    "FaultPolicy",
    "InvertedIndex",
    "QueryEngine",
    "ScatterGatherBroker",
    "Search",
    "SearchService",
    "ShardDeadError",
    "ThreadConfig",
    "get_extractor",
]

#: legacy top-level name -> (home module, attribute).  Resolved lazily
#: and NOT cached into globals(), so every deprecated import site warns.
_LEGACY = {
    "ALL_PLATFORMS": ("repro.platforms", "ALL_PLATFORMS"),
    "CorpusGenerator": ("repro.corpus", "CorpusGenerator"),
    "CorpusProfile": ("repro.corpus", "CorpusProfile"),
    "IndexGenerator": ("repro.engine", "IndexGenerator"),
    "MANYCORE_32": ("repro.platforms", "MANYCORE_32"),
    "MultiIndex": ("repro.index", "MultiIndex"),
    "OCTO_CORE": ("repro.platforms", "OCTO_CORE"),
    "PAPER_PROFILE": ("repro.corpus", "PAPER_PROFILE"),
    "QUAD_CORE": ("repro.platforms", "QUAD_CORE"),
    "SMALL_PROFILE": ("repro.corpus", "SMALL_PROFILE"),
    "SequentialIndexer": ("repro.engine", "SequentialIndexer"),
    "SimPipeline": ("repro.simengine", "SimPipeline"),
    "TINY_PROFILE": ("repro.corpus", "TINY_PROFILE"),
    "Workload": ("repro.simengine", "Workload"),
    "join_indices": ("repro.index", "join_indices"),
    "parse_query": ("repro.query", "parse_query"),
}

# `Implementation` stays eagerly importable without a warning: it is an
# argument type for Search.build, just not advertised in __all__.


def __getattr__(name):
    """Resolve legacy top-level names with a deprecation warning."""
    target = _LEGACY.get(name)
    if target is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    module_name, attribute = target
    import warnings

    warnings.warn(
        f"importing {name!r} from the top-level 'repro' package is "
        f"deprecated; import it from {module_name} (or use "
        "repro.Search — see docs/api.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attribute)


def __dir__():
    return sorted(set(__all__) | set(_LEGACY) | set(globals()))
