"""repro — a reproduction of "Parallelizing an Index Generator for
Desktop Search" (Meder & Tichy, Karlsruhe Reports in Informatics 2010-9).

The package has two halves:

* a **real desktop-search engine**: corpus generation
  (:mod:`repro.corpus`), FNV-hashed index structures (:mod:`repro.adt`,
  :mod:`repro.index`), the paper's three parallel implementations on
  real Python threads (:mod:`repro.engine`) and a boolean query engine
  (:mod:`repro.query`);
* a **calibrated platform simulator**: a discrete-event kernel
  (:mod:`repro.sim`), models of the paper's 4-, 8- and 32-core Intel
  machines (:mod:`repro.platforms`), the simulated pipeline
  (:mod:`repro.simengine`), an auto-tuner (:mod:`repro.autotune`) and
  the experiment drivers that regenerate the paper's Tables 1-4
  (:mod:`repro.experiments`).

Quickstart::

    from repro import (CorpusGenerator, TINY_PROFILE, IndexGenerator,
                       Implementation, ThreadConfig, QueryEngine)

    corpus = CorpusGenerator(TINY_PROFILE).generate()
    report = IndexGenerator(corpus.fs).build(
        Implementation.REPLICATED_UNJOINED, ThreadConfig(3, 2, 0))
    engine = QueryEngine(report.index)
    hits = engine.search("some AND terms")
"""

from repro.corpus import (
    CorpusGenerator,
    CorpusProfile,
    PAPER_PROFILE,
    SMALL_PROFILE,
    TINY_PROFILE,
)
from repro.engine import (
    BuildReport,
    Implementation,
    IndexGenerator,
    SequentialIndexer,
    ThreadConfig,
)
from repro.index import InvertedIndex, MultiIndex, join_indices
from repro.platforms import ALL_PLATFORMS, MANYCORE_32, OCTO_CORE, QUAD_CORE
from repro.query import QueryEngine, parse_query
from repro.simengine import SimPipeline, Workload

__version__ = "1.0.0"

__all__ = [
    "ALL_PLATFORMS",
    "BuildReport",
    "CorpusGenerator",
    "CorpusProfile",
    "Implementation",
    "IndexGenerator",
    "InvertedIndex",
    "MANYCORE_32",
    "MultiIndex",
    "OCTO_CORE",
    "PAPER_PROFILE",
    "QUAD_CORE",
    "QueryEngine",
    "SMALL_PROFILE",
    "SequentialIndexer",
    "SimPipeline",
    "ThreadConfig",
    "TINY_PROFILE",
    "Workload",
    "join_indices",
    "parse_query",
]
