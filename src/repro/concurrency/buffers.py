"""A bounded, closable producer/consumer buffer.

``queue.Queue`` has no close semantics, and the engine needs them: when
the last extractor finishes, updaters must drain the buffer and exit.
``BoundedBuffer`` provides blocking put/get with a capacity bound,
close-on-producer-exit, and lock-operation accounting (the quantity the
paper blames for the inefficiency of pipelined stage 1).

The buffer's internal lock and condition variables come from a
:class:`~repro.concurrency.provider.SyncProvider`, so the schedule
checker can run the *same* buffer algorithm on instrumented,
deterministically scheduled primitives.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Optional, TypeVar

from repro.obs import recorder as obsrec

T = TypeVar("T")


class Closed(Exception):
    """Raised by :meth:`BoundedBuffer.get` after drain-and-close."""


class BoundedBuffer(Generic[T]):
    """Blocking bounded FIFO with close semantics."""

    def __init__(
        self,
        capacity: int = 64,
        sync=None,
        name: str = "buffer",
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        if sync is None:
            from repro.concurrency.provider import THREADING_SYNC

            sync = THREADING_SYNC
        self.capacity = capacity
        self.name = name
        self._items: Deque[T] = deque()
        self._lock = sync.lock(f"{name}.lock")
        self._not_full = sync.condition(self._lock, name=f"{name}.not-full")
        self._not_empty = sync.condition(self._lock, name=f"{name}.not-empty")
        self._closed = False
        self.lock_operations = 0
        self._depth_metric = f"buffer.{name}.depth"

    def put(self, item: T) -> None:
        """Block until there is room, then enqueue ``item``."""
        with self._not_full:
            self.lock_operations += 1
            while len(self._items) >= self.capacity and not self._closed:
                self._not_full.wait()
            if self._closed:
                raise Closed("buffer is closed")
            self._items.append(item)
            depth = len(self._items)
            self._not_empty.notify()
        # Queue-depth instrumentation: one branch while tracing is off;
        # recorded outside the lock so the hot path never stretches the
        # critical section.
        if obsrec.enabled():
            obsrec.metrics().gauge(self._depth_metric).set(depth)
            obsrec.metrics().histogram(f"{self._depth_metric}.hist").observe(
                depth
            )

    def get(self) -> T:
        """Block until an item arrives; raise :class:`Closed` when the
        buffer has been closed and fully drained."""
        with self._not_empty:
            self.lock_operations += 1
            while not self._items and not self._closed:
                self._not_empty.wait()
            if self._items:
                item = self._items.popleft()
                depth = len(self._items)
                self._not_full.notify()
            else:
                raise Closed("buffer drained and closed")
        if obsrec.enabled():
            obsrec.metrics().gauge(self._depth_metric).set(depth)
        return item

    def close(self) -> None:
        """No more puts; pending gets drain the remaining items."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)
