"""A hash-sharded lock.

An extension beyond the paper: instead of one lock over the whole shared
index (Implementation 1) or full replication (2/3), stripe the index
lock over FNV shards of the term space.  The ablation benchmarks use it
to show where on the contention spectrum sharding lands.  The stripes
come from a :class:`~repro.concurrency.provider.SyncProvider`, so the
schedule checker can observe every stripe acquire/release.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List

from repro.hashing import fnv1a_64


class ShardedLock:
    """``shards`` independent locks selected by key hash."""

    def __init__(
        self, shards: int = 16, sync=None, name: str = "sharded-lock"
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be at least 1, got {shards}")
        if sync is None:
            from repro.concurrency.provider import THREADING_SYNC

            sync = THREADING_SYNC
        self.name = name
        self._locks: List = [
            sync.lock(f"{name}.stripe[{i}]") for i in range(shards)
        ]

    @property
    def shard_count(self) -> int:
        """Number of independent locks."""
        return len(self._locks)

    def shard_for(self, key: str) -> int:
        """The shard index ``key`` hashes to."""
        return fnv1a_64(key) % len(self._locks)

    @contextmanager
    def locked(self, key: str) -> Iterator[None]:
        """Context manager holding the shard lock for ``key``."""
        lock = self._locks[self.shard_for(key)]
        lock.acquire()
        try:
            yield
        finally:
            lock.release()

    @contextmanager
    def locked_all(self) -> Iterator[None]:
        """Hold every shard (ordered, so concurrent callers cannot
        deadlock); used for global operations like snapshotting."""
        for lock in self._locks:
            lock.acquire()
        try:
            yield
        finally:
            for lock in reversed(self._locks):
                lock.release()
