"""A reusable cyclic barrier.

Implementation 2 "would eliminate all synchronization, except for a
barrier before the join operation".  ``threading.Barrier`` exists, but a
from-scratch condition-variable implementation keeps this substrate
dependency-free and lets tests inspect the generation counter.
"""

from __future__ import annotations

import threading


class ReusableBarrier:
    """All ``parties`` threads block until the last one arrives; then the
    barrier resets for the next cycle."""

    def __init__(self, parties: int) -> None:
        if parties < 1:
            raise ValueError(f"parties must be at least 1, got {parties}")
        self.parties = parties
        self._count = 0
        self._generation = 0
        self._condition = threading.Condition()

    def wait(self, timeout: float = None) -> int:
        """Block until all parties arrive; returns the arrival index
        (0 for the first arriver, parties-1 for the releaser)."""
        with self._condition:
            generation = self._generation
            index = self._count
            self._count += 1
            if self._count == self.parties:
                self._count = 0
                self._generation += 1
                self._condition.notify_all()
                return index
            while generation == self._generation:
                if not self._condition.wait(timeout):
                    raise TimeoutError("barrier wait timed out")
            return index

    @property
    def generation(self) -> int:
        """Number of completed barrier cycles."""
        with self._condition:
            return self._generation

    @property
    def waiting(self) -> int:
        """Threads currently blocked at the barrier."""
        with self._condition:
            return self._count
