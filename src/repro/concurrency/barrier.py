"""A reusable cyclic barrier.

Implementation 2 "would eliminate all synchronization, except for a
barrier before the join operation".  ``threading.Barrier`` exists, but a
from-scratch condition-variable implementation keeps this substrate
dependency-free, lets tests inspect the generation counter, and lets
the schedule checker run the barrier algorithm itself on instrumented
primitives (via the ``sync`` provider).
"""

from __future__ import annotations

from typing import Optional


class ReusableBarrier:
    """All ``parties`` threads block until the last one arrives; then the
    barrier resets for the next cycle."""

    def __init__(self, parties: int, sync=None, name: str = "barrier") -> None:
        if parties < 1:
            raise ValueError(f"parties must be at least 1, got {parties}")
        if sync is None:
            from repro.concurrency.provider import THREADING_SYNC

            sync = THREADING_SYNC
        self.parties = parties
        self.name = name
        self._count = 0
        self._generation = 0
        self._condition = sync.condition(name=f"{name}.cond")

    def wait(self, timeout: Optional[float] = None) -> int:
        """Block until all parties arrive; returns the arrival index
        (0 for the first arriver, parties-1 for the releaser)."""
        with self._condition:
            generation = self._generation
            index = self._count
            self._count += 1
            if self._count == self.parties:
                self._count = 0
                self._generation += 1
                self._condition.notify_all()
                return index
            while generation == self._generation:
                if not self._condition.wait(timeout):
                    if generation == self._generation:
                        # Withdraw this arrival so the incomplete cycle
                        # is not corrupted: without the decrement a
                        # timed-out waiter would leave a phantom arrival
                        # behind and the next cycle would release early.
                        self._count -= 1
                        raise TimeoutError("barrier wait timed out")
                    # The cycle completed between the timeout firing and
                    # this thread reacquiring the lock: it was released.
                    break
            return index

    @property
    def generation(self) -> int:
        """Number of completed barrier cycles."""
        with self._condition:
            return self._generation

    @property
    def waiting(self) -> int:
        """Threads currently blocked at the barrier."""
        with self._condition:
            return self._count
