"""Concurrency primitives used by the threaded engine.

* :class:`BoundedBuffer` — the buffer between extractors and separate
  updater threads ("a separate process for index update that received
  sets of terms via a buffer");
* :class:`ReusableBarrier` — the barrier before the join operation in
  Implementation 2;
* :class:`ShardedLock` — a lock striped over key hashes, provided as an
  extension point beyond the paper's single index lock;
* :class:`SyncProvider` / :class:`ThreadingSyncProvider` — the factory
  seam through which engines obtain locks, conditions and threads, so
  the schedule checker (:mod:`repro.schedcheck`) can substitute
  instrumented, deterministically scheduled primitives.
"""

from repro.concurrency.barrier import ReusableBarrier
from repro.concurrency.buffers import BoundedBuffer, Closed
from repro.concurrency.provider import (
    THREADING_SYNC,
    SyncProvider,
    ThreadingSyncProvider,
)
from repro.concurrency.sharded import ShardedLock

__all__ = [
    "BoundedBuffer",
    "Closed",
    "ReusableBarrier",
    "ShardedLock",
    "SyncProvider",
    "THREADING_SYNC",
    "ThreadingSyncProvider",
]
