"""The synchronization-provider seam between engines and ``threading``.

Engine code never constructs a raw ``threading.Lock``/``Condition``/
``Thread`` directly (a lint in :mod:`repro.schedcheck.lint` enforces
this).  Instead every threaded indexer carries a :class:`SyncProvider`
and asks it for primitives by *name*.  The default provider hands back
the plain ``threading`` objects, so production behaviour is unchanged;
the schedule checker swaps in an instrumented provider
(:class:`repro.schedcheck.sync.InstrumentedSyncProvider`) whose
primitives record vector-clocked traces and — under the cooperative
deterministic scheduler — serialize every interleaving decision so a
failing schedule can be replayed from its seed.

The ``name`` argument is an identification hint only: providers may use
it to label trace events, target fault injection, or pretty-print
deadlock reports.  The default provider ignores it.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Tuple


class SyncProvider:
    """Factory for the synchronization vocabulary the engines consume.

    The base class *is* the raw-threading implementation; instrumented
    providers subclass it and override every method.  ``access`` is the
    one hook with no ``threading`` counterpart: engines call it to
    declare "this thread is about to mutate the shared location named
    X", which is what the happens-before race detector checks.
    """

    def lock(self, name: str = "lock"):
        """A mutual-exclusion lock (``threading.Lock`` semantics)."""
        return threading.Lock()

    def condition(self, lock=None, name: str = "condition"):
        """A condition variable, optionally sharing ``lock``."""
        return threading.Condition(lock)

    def thread(
        self,
        target: Callable[..., None],
        args: Tuple = (),
        name: Optional[str] = None,
    ):
        """A startable/joinable worker thread (daemonic by default)."""
        return threading.Thread(target=target, args=args, name=name,
                                daemon=True)

    def buffer(self, capacity: int, name: str = "buffer"):
        """A :class:`~repro.concurrency.buffers.BoundedBuffer` whose
        internal lock and conditions come from this provider."""
        from repro.concurrency.buffers import BoundedBuffer

        return BoundedBuffer(capacity, sync=self, name=name)

    def barrier(self, parties: int, name: str = "barrier"):
        """A :class:`~repro.concurrency.barrier.ReusableBarrier` built
        on this provider's condition variables."""
        from repro.concurrency.barrier import ReusableBarrier

        return ReusableBarrier(parties, sync=self, name=name)

    def sharded_lock(self, shards: int = 16, name: str = "sharded-lock"):
        """A :class:`~repro.concurrency.sharded.ShardedLock` whose
        stripes come from this provider."""
        from repro.concurrency.sharded import ShardedLock

        return ShardedLock(shards, sync=self, name=name)

    def access(self, location: str, write: bool = True) -> None:
        """Declare an access to the shared ``location``.  No-op here;
        the instrumented provider records it for race detection."""

    def run(self, fn: Callable[[], object]):
        """Run ``fn`` under this provider's execution regime.

        The raw provider just calls it; the controlled provider runs it
        as the scheduler's main managed thread.
        """
        return fn()


class ThreadingSyncProvider(SyncProvider):
    """The production provider: plain ``threading`` primitives."""


#: Shared default instance (the provider is stateless).
THREADING_SYNC = ThreadingSyncProvider()
