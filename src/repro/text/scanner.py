"""The "empty scanner".

The paper's first parallelism probe: read every byte of every file but
do no term extraction at all.  Comparing its runtime against the full
extractor separates I/O cost from CPU cost (Table 1's "read files"
versus "read files and extract terms" columns).
"""

from __future__ import annotations


def empty_scan(content: bytes) -> int:
    """Touch every byte of ``content``; returns a checksum so the loop
    cannot be optimized away.  The checksum is the byte sum modulo 2^32.
    """
    total = 0
    for byte in content:
        total += byte
    return total & 0xFFFFFFFF
