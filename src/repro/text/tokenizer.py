"""ASCII term extraction.

A term is a maximal run of letters and digits; everything else is a
separator.  Terms are lower-cased so searches are case-insensitive, and
terms shorter than ``min_length`` are dropped (single characters are
noise in desktop search).  The tokenizer works on bytes because stage 2
reads raw file content.

Fast path
---------

Extraction dominates build time (paper Table 1), so the hot path is
*vectorized*: a precompiled 256-byte :func:`bytes.translate` table maps
every separator byte to a single delimiter (space) **and** folds
``A-Z`` to ``a-z`` in the same pass, after which :meth:`bytes.split`
yields the lower-cased word runs — both loops run in C instead of
per-byte Python.  Length filtering, ``max_length`` truncation and the
stopword check then touch only whole words.

The original per-byte loop survives as
:meth:`Tokenizer.iter_terms_slow`: it is the executable specification
the fast path is differential-tested against (see the hypothesis
property in ``tests/test_extract.py``), and the baseline the
``BENCH_extraction.json`` throughput bar is measured from.

``max_length`` aliasing
-----------------------

Truncation is a *projection*, not a bijection: two distinct runs longer
than ``max_length`` that share a prefix collapse to the same term
(``"x"*65`` and ``"x"*64 + "y"`` both become ``"x"*64`` under the
default limit).  This is deliberate — the limit exists so one base64
blob cannot blow up the index, and a truncated term is still findable
by its prefix — but it means the index cannot distinguish such runs.
The behaviour is pinned by a regression test so the fast path can never
silently diverge from it.
"""

from __future__ import annotations

from typing import Iterator, List

_WORD_BYTES = frozenset(
    b"abcdefghijklmnopqrstuvwxyz" b"ABCDEFGHIJKLMNOPQRSTUVWXYZ" b"0123456789"
)

#: Separator bytes: everything that is not a letter or digit.  Exposed
#: for the huge-file splitter, which may cut a file at any separator
#: without changing the extracted term stream.
SEPARATOR_BYTES = frozenset(range(256)) - _WORD_BYTES


def make_translation_table(
    word_bytes=_WORD_BYTES, delimiter: bytes = b" ", fold_case: bool = True
) -> bytes:
    """A 256-entry ``bytes.translate`` table: separators to
    ``delimiter``, ``A-Z`` to ``a-z`` (unless ``fold_case`` is off —
    the code tokenizer needs case intact to split camelCase), word
    bytes otherwise unchanged."""
    table = bytearray(delimiter * 256)
    for byte in word_bytes:
        if fold_case and 0x41 <= byte <= 0x5A:
            table[byte] = byte + 0x20  # A-Z folds to a-z in the same pass
        else:
            table[byte] = byte
    return bytes(table)


#: The default table for the default word-byte set, built once.
_ASCII_TABLE = make_translation_table()


class Tokenizer:
    """Extracts terms from byte content.

    ``min_length`` filters out very short tokens; ``max_length``
    truncates pathological runs (e.g. base64 blobs in text files) so a
    single garbage line cannot blow up the index — note the aliasing
    consequence documented in the module docstring; ``stopwords`` drops
    the given (lower-case) terms entirely — the classic index-size
    optimization, since the most frequent terms match nearly every
    file and carry no selectivity (see
    :func:`repro.text.stopwords.derive_stopwords`).
    """

    #: The translation table the fast path uses; subclasses with a
    #: different word-byte alphabet override this.
    _table: bytes = _ASCII_TABLE
    #: The word-byte alphabet, kept in sync with ``_table`` (the slow
    #: reference loop and the splitter's boundary set derive from it).
    word_bytes: frozenset = _WORD_BYTES

    def __init__(
        self,
        min_length: int = 2,
        max_length: int = 64,
        stopwords=None,
    ) -> None:
        if min_length < 1:
            raise ValueError("min_length must be at least 1")
        if max_length < min_length:
            raise ValueError("max_length must be >= min_length")
        self.min_length = min_length
        self.max_length = max_length
        self.stopwords = frozenset(stopwords) if stopwords else frozenset()

    def tokenize(self, content: bytes) -> List[str]:
        """All terms of ``content`` in order of appearance (with duplicates).

        This is the vectorized fast path: one ``translate`` pass (fold
        case, map separators to space), one ``split``, then whole-word
        filtering.  Semantics are bit-for-bit those of
        :meth:`iter_terms_slow`.
        """
        min_length = self.min_length
        max_length = self.max_length
        words = content.translate(self._table).split()
        if self.stopwords:
            stopwords = self.stopwords
            return [
                term
                for word in words
                if len(word) >= min_length
                and (term := word[:max_length].decode("ascii"))
                not in stopwords
            ]
        return [
            word[:max_length].decode("ascii")
            for word in words
            if len(word) >= min_length
        ]

    def iter_terms(self, content: bytes) -> Iterator[str]:
        """Terms of ``content`` in order of appearance.

        Delegates to the vectorized :meth:`tokenize`; the iterator face
        is kept for the call sites that stream terms.
        """
        return iter(self.tokenize(content))

    def iter_terms_slow(self, content: bytes) -> Iterator[str]:
        """The original per-byte reference loop (executable spec).

        Kept verbatim so the fast path has an oracle: the hypothesis
        differential property asserts ``tokenize(c) ==
        list(iter_terms_slow(c))`` for arbitrary byte strings, and the
        extraction benchmark measures its speed-up against this.
        """
        word_bytes = self.word_bytes
        word = bytearray()
        for byte in content:
            if byte in word_bytes:
                word.append(byte)
            elif word:
                yield from self._emit(word)
                word = bytearray()
        if word:
            yield from self._emit(word)

    def _emit(self, word: bytearray) -> Iterator[str]:
        if len(word) >= self.min_length:
            term = bytes(word[: self.max_length]).decode("ascii").lower()
            if term not in self.stopwords:
                yield term

    def count_terms(self, content: bytes) -> int:
        """Number of terms without materializing them (for workload stats)."""
        min_length = self.min_length
        words = content.translate(self._table).split()
        if self.stopwords:
            return len(self.tokenize(content))
        return sum(1 for word in words if len(word) >= min_length)
