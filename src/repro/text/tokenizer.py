"""ASCII term extraction.

A term is a maximal run of letters and digits; everything else is a
separator.  Terms are lower-cased so searches are case-insensitive, and
terms shorter than ``min_length`` are dropped (single characters are
noise in desktop search).  The tokenizer works on bytes because stage 2
reads raw file content.
"""

from __future__ import annotations

from typing import Iterator, List

_WORD_BYTES = frozenset(
    b"abcdefghijklmnopqrstuvwxyz" b"ABCDEFGHIJKLMNOPQRSTUVWXYZ" b"0123456789"
)


class Tokenizer:
    """Extracts terms from byte content.

    ``min_length`` filters out very short tokens; ``max_length``
    truncates pathological runs (e.g. base64 blobs in text files) so a
    single garbage line cannot blow up the index; ``stopwords`` drops
    the given (lower-case) terms entirely — the classic index-size
    optimization, since the most frequent terms match nearly every
    file and carry no selectivity (see
    :func:`repro.text.stopwords.derive_stopwords`).
    """

    def __init__(
        self,
        min_length: int = 2,
        max_length: int = 64,
        stopwords=None,
    ) -> None:
        if min_length < 1:
            raise ValueError("min_length must be at least 1")
        if max_length < min_length:
            raise ValueError("max_length must be >= min_length")
        self.min_length = min_length
        self.max_length = max_length
        self.stopwords = frozenset(stopwords) if stopwords else frozenset()

    def tokenize(self, content: bytes) -> List[str]:
        """All terms of ``content`` in order of appearance (with duplicates)."""
        return list(self.iter_terms(content))

    def iter_terms(self, content: bytes) -> Iterator[str]:
        """Lazily yield terms of ``content`` in order of appearance."""
        word = bytearray()
        for byte in content:
            if byte in _WORD_BYTES:
                word.append(byte)
            elif word:
                yield from self._emit(word)
                word = bytearray()
        if word:
            yield from self._emit(word)

    def _emit(self, word: bytearray) -> Iterator[str]:
        if len(word) >= self.min_length:
            term = bytes(word[: self.max_length]).decode("ascii").lower()
            if term not in self.stopwords:
                yield term

    def count_terms(self, content: bytes) -> int:
        """Number of terms without materializing them (for workload stats)."""
        return sum(1 for _ in self.iter_terms(content))
