"""Per-file term blocks.

The paper's key design decision (section 3): instead of inserting every
term occurrence into the shared index (and paying a linear (term, file)
duplicate search per insertion), each extractor builds a condensed,
duplicate-free word list per file and hands it to the index *en bloc*.
``TermBlock`` is that unit of transfer between stage 2 and stage 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class TermBlock:
    """A file's de-duplicated terms, ready for a single index update.

    ``terms`` is a tuple (immutable, hashable) of distinct terms.  Since
    every file is scanned exactly once, the index may append the file to
    each term's postings without any duplicate check — the invariant the
    en-bloc design rests on.
    """

    path: str
    terms: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if len(set(self.terms)) != len(self.terms):
            raise ValueError(f"term block for {self.path!r} contains duplicates")

    def __len__(self) -> int:
        return len(self.terms)

    def __bool__(self) -> bool:
        # A block for a file with no terms is still a meaningful unit of
        # work, so truthiness follows "exists", not "has terms".
        return True
