"""Stopword derivation.

A stopword is a term so common it matches nearly every file: indexing
it costs a posting per file and buys no selectivity.  On Zipfian text
the top handful of terms account for a huge share of all postings —
:func:`derive_stopwords` finds them empirically (by document frequency
over a corpus sample), which works for any language or synthetic
vocabulary, unlike a fixed English list.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from repro.text.tokenizer import Tokenizer


def derive_stopwords(
    fs,
    top_k: int = 20,
    min_document_fraction: float = 0.5,
    tokenizer: Optional[Tokenizer] = None,
    sample_limit: Optional[int] = None,
    root: str = "",
) -> FrozenSet[str]:
    """Terms appearing in at least ``min_document_fraction`` of files.

    At most the ``top_k`` highest-document-frequency qualifiers are
    returned, so even a degenerate corpus (every file identical) yields
    a bounded stopword set.  ``sample_limit`` caps how many files are
    scanned — document frequency of genuinely common terms converges
    fast, so a few hundred files suffice on large corpora.
    """
    if not 0.0 < min_document_fraction <= 1.0:
        raise ValueError("min_document_fraction must be in (0, 1]")
    if top_k < 0:
        raise ValueError("top_k cannot be negative")
    tokenizer = tokenizer or Tokenizer()
    document_frequency: Dict[str, int] = {}
    scanned = 0
    for ref in fs.list_files(root):
        if sample_limit is not None and scanned >= sample_limit:
            break
        scanned += 1
        for term in set(tokenizer.iter_terms(fs.read_file(ref.path))):
            document_frequency[term] = document_frequency.get(term, 0) + 1
    if not scanned:
        return frozenset()
    threshold = scanned * min_document_fraction
    qualifying = [
        (count, term)
        for term, count in document_frequency.items()
        if count >= threshold
    ]
    qualifying.sort(key=lambda item: (-item[0], item[1]))
    return frozenset(term for _, term in qualifying[:top_k])
