"""Stage 2 text processing: scanning, term extraction, de-duplication.

Three levels of processing, matching the paper's measurements:

* :func:`empty_scan` — "a loop that simply reads each file byte by
  byte, but without any term extraction"; the paper uses it to measure
  pure read cost ("read files" in Table 1);
* :class:`Tokenizer` — extracts ASCII terms from file content
  ("read files and extract terms");
* :func:`extract_term_block` — tokenization plus FNV-hash-set
  de-duplication, producing the per-file :class:`TermBlock` that is
  inserted into the index *en bloc*.
"""

from repro.text.scanner import empty_scan
from repro.text.stopwords import derive_stopwords
from repro.text.termblock import TermBlock
from repro.text.tokenizer import Tokenizer
from repro.text.dedup import dedup_terms, extract_term_block

__all__ = [
    "TermBlock",
    "Tokenizer",
    "dedup_terms",
    "derive_stopwords",
    "empty_scan",
    "extract_term_block",
]
