"""Per-file duplicate elimination.

Terms typically appear many times in a document; the extractor collapses
them with an FNV hash set (the paper's choice) before the index update.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.adt import FnvHashSet
from repro.text.termblock import TermBlock
from repro.text.tokenizer import Tokenizer


def dedup_terms(terms: Iterable[str]) -> Tuple[str, ...]:
    """Distinct terms in first-seen order, de-duplicated via FnvHashSet."""
    seen = FnvHashSet()
    ordered = []
    for term in terms:
        if seen.add(term):
            ordered.append(term)
    return tuple(ordered)


def extract_term_block(path: str, content: bytes, tokenizer: Tokenizer) -> TermBlock:
    """Scan ``content`` and build the file's condensed term block."""
    return TermBlock(path=path, terms=dedup_terms(tokenizer.iter_terms(content)))
