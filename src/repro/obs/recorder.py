"""The span recorder and the process-global instrumentation switch.

Two usage patterns share this module:

* **Per-build recorders** — every engine build creates its own
  :class:`Recorder` and records its handful of stage/worker spans
  unconditionally (a build emits ~``x + y + z + 4`` spans; the cost is
  unmeasurable).  The finished span list rides on
  :attr:`~repro.engine.results.BuildReport.spans`.

* **The global recorder** — shared library code (the bounded buffer,
  the query path, per-file detail spans) records through the
  module-level :func:`span` / :func:`metrics` helpers, which hit a
  process-global :class:`Recorder` that is **disabled by default**.
  When disabled, :func:`span` returns a no-op singleton after a single
  attribute check — the hot path pays one branch per span, nothing
  more.  ``--trace-out`` / ``--stats`` (or :func:`enable`) switch it
  on.

Thread safety: span completion appends under a lock; the thread-local
open-span stack gives nesting without any cross-thread coordination.
Recorders are *not* shared across processes — worker processes build
their own and ship :class:`~repro.obs.spans.SpanRecord` lists back by
value (see :func:`repro.engine.procworker.build_replica`).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Dict, Iterable, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Attr, SpanRecord


class _NullSpan:
    """The do-nothing span handed out while recording is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> None:
        return None

    # Mirror _OpenSpan's read API so callers can use the result of
    # ``span(...)`` uniformly.
    name = ""
    duration = 0.0
    start = 0.0

    def set_attr(self, _name: str, _value: Attr) -> None:
        return None


NULL_SPAN = _NullSpan()


class _OpenSpan:
    """A span between ``__enter__`` and ``__exit__``.

    Exposes ``duration`` (valid after exit) so call sites can keep
    feeding measurements like per-worker lifetimes from the same clock
    reading the span records, instead of timing twice.
    """

    __slots__ = ("recorder", "name", "attrs", "span_id", "start", "duration")

    def __init__(
        self, recorder: "Recorder", name: str, attrs: Dict[str, Attr]
    ) -> None:
        self.recorder = recorder
        self.name = name
        self.attrs = attrs
        self.span_id = next(recorder._ids)
        self.start = 0.0
        self.duration = 0.0

    def set_attr(self, name: str, value: Attr) -> None:
        self.attrs[name] = value

    def __enter__(self) -> "_OpenSpan":
        stack = self.recorder._stack()
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> None:
        end = time.perf_counter()
        self.duration = end - self.start
        recorder = self.recorder
        stack = recorder._stack()
        # The stack discipline can only break if exits are misordered
        # within one thread; pop defensively by identity.
        if stack and stack[-1] is self:
            stack.pop()
        else:  # pragma: no cover - misnested exit
            try:
                stack.remove(self)
            except ValueError:
                pass
        parent = stack[-1].span_id if stack else None
        thread = threading.current_thread()
        recorder._append(
            SpanRecord(
                name=self.name,
                start=self.start,
                duration=self.duration,
                pid=os.getpid(),
                tid=thread.ident or 0,
                thread=thread.name,
                span_id=self.span_id,
                parent_id=parent,
                attrs=self.attrs,
            )
        )


class Recorder:
    """Collects spans and metrics for one scope (a build, a process)."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self._spans: List[SpanRecord] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()

    # -- recording --------------------------------------------------------

    def span(self, name: str, **attrs: Attr):
        """Context manager timing one interval; no-op when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return _OpenSpan(self, name, attrs)

    def absorb(self, spans: Iterable[SpanRecord]) -> None:
        """Add externally produced spans (e.g. re-based worker spans)."""
        with self._lock:
            self._spans.extend(spans)

    def record_span(
        self, name: str, start: float, duration: float, **attrs: Attr
    ) -> Optional[SpanRecord]:
        """Record an already-measured interval as a finished span.

        For intervals that do not nest on one thread's call stack —
        e.g. a query's full sojourn through a queueing front end, whose
        start (submission) and end (resolution) happen on different
        threads.  The span is parentless and attributed to the
        recording thread; ``start`` is in this process's
        ``perf_counter`` timeline.  No-op (returns None) while the
        recorder is disabled.
        """
        if not self.enabled:
            return None
        thread = threading.current_thread()
        record = SpanRecord(
            name=name,
            start=start,
            duration=duration,
            pid=os.getpid(),
            tid=thread.ident or 0,
            thread=thread.name,
            span_id=next(self._ids),
            parent_id=None,
            attrs=attrs,
        )
        self._append(record)
        return record

    # -- reading ----------------------------------------------------------

    @property
    def spans(self) -> List[SpanRecord]:
        """A snapshot copy of everything recorded so far."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
        self.metrics = MetricsRegistry()

    # -- internals --------------------------------------------------------

    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            self._spans.append(record)

    def _stack(self) -> List[_OpenSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack


# -- the process-global recorder -----------------------------------------

_GLOBAL = Recorder(enabled=False)


def get_recorder() -> Recorder:
    """The process-global recorder (disabled until :func:`enable`)."""
    return _GLOBAL


def set_recorder(recorder: Recorder) -> Recorder:
    """Swap the global recorder (tests); returns the previous one."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = recorder
    return previous


def enable() -> Recorder:
    """Turn global recording on; returns the recorder."""
    _GLOBAL.enabled = True
    return _GLOBAL


def disable() -> None:
    """Turn global recording off (existing records are kept)."""
    _GLOBAL.enabled = False


def enabled() -> bool:
    """True when the global recorder is recording."""
    return _GLOBAL.enabled


def span(name: str, **attrs: Attr):
    """Record a span on the global recorder; one branch when disabled.

    The disabled path intentionally does no attribute formatting and
    allocates nothing beyond the kwargs dict the caller wrote — keep
    hot-path call sites to ``obs.span("name")`` with no kwargs and the
    cost is one call and one branch.
    """
    recorder = _GLOBAL
    if not recorder.enabled:
        return NULL_SPAN
    return _OpenSpan(recorder, name, attrs)


def metrics() -> MetricsRegistry:
    """The global recorder's metrics registry (usable even while span
    recording is disabled — callers gate on :func:`enabled`)."""
    return _GLOBAL.metrics
