"""Exporters: Chrome ``trace_event`` JSON, flat stats, human summary.

The Chrome trace format (loadable in ``chrome://tracing`` and
`Perfetto <https://ui.perfetto.dev>`_) is the layer's visual exporter:
every span becomes a matched ``B``/``E`` duration-event pair on its
``(pid, tid)`` track, with thread/process name metadata events so the
per-worker extract/update lanes are labelled.  The format reference is
the trace-event spec; the subset emitted here is deliberately small
and is checked by :func:`validate_chrome_trace` — the same checker CI
runs over a real build's trace.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.obs.spans import SpanRecord


def chrome_trace(
    spans: Sequence[SpanRecord],
    metadata: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """The Chrome ``trace_event`` JSON object for ``spans``.

    Timestamps are re-based so the earliest span starts at t=0 and are
    emitted in microseconds.  Per ``(pid, tid)`` track, events are
    produced by a nesting sweep that guarantees matched B/E pairs and
    non-decreasing timestamps (span trees recorded by the context
    manager API are well-nested per thread by construction; re-based
    worker spans keep their worker's pid/tid and stay well-nested on
    their own track).
    """
    events: List[Dict[str, object]] = []
    if not spans:
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    epoch = min(span.start for span in spans)
    tracks: Dict[Tuple[int, int], List[SpanRecord]] = defaultdict(list)
    for span in spans:
        tracks[(span.pid, span.tid)].append(span)

    pids = sorted({pid for pid, _tid in tracks})
    for pid in pids:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro pid {pid}"},
            }
        )
    for (pid, tid), track in sorted(tracks.items()):
        # The last-recorded span's thread name labels the lane.
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": track[-1].thread},
            }
        )

    def us(seconds: float) -> float:
        return round((seconds - epoch) * 1e6, 3)

    for (pid, tid), track in sorted(tracks.items()):
        # Parents first: earlier start wins; at equal starts the longer
        # span is the enclosing one.
        ordered = sorted(
            track, key=lambda s: (s.start, -s.duration, s.span_id)
        )
        stack: List[Tuple[SpanRecord, float]] = []  # (span, clamped end)

        def emit_end(span: SpanRecord, end: float) -> None:
            events.append(
                {
                    "name": span.name,
                    "ph": "E",
                    "ts": us(end),
                    "pid": pid,
                    "tid": tid,
                }
            )

        for span in ordered:
            while stack and stack[-1][1] <= span.start:
                finished, finished_end = stack.pop()
                emit_end(finished, finished_end)
            # Clamp to the enclosing span so float jitter can never
            # produce a crossing (mismatched) pair.
            end = span.end
            if stack and end > stack[-1][1]:
                end = stack[-1][1]
            args = {key: value for key, value in span.attrs.items()}
            events.append(
                {
                    "name": span.name,
                    "cat": span.name.split(".", 1)[0],
                    "ph": "B",
                    "ts": us(span.start),
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
            stack.append((span, end))
        while stack:
            finished, finished_end = stack.pop()
            emit_end(finished, finished_end)

    trace: Dict[str, object] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        trace["otherData"] = dict(metadata)
    return trace


def write_chrome_trace(
    path: str,
    spans: Sequence[SpanRecord],
    metadata: Optional[Mapping[str, object]] = None,
) -> int:
    """Serialize :func:`chrome_trace` to ``path``; returns bytes written."""
    text = json.dumps(chrome_trace(spans, metadata=metadata))
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return len(text)


def validate_chrome_trace(trace: object) -> List[str]:
    """Structural errors in a trace object ([] when valid).

    Checks the properties CI pins: a ``traceEvents`` list; required
    keys per event; per-track non-decreasing timestamps; and strict
    stack discipline — every ``E`` matches the innermost open ``B`` of
    the same name, and nothing stays open at the end.
    """
    errors: List[str] = []
    if not isinstance(trace, dict):
        return [f"trace must be a JSON object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]

    last_ts: Dict[Tuple[int, int], float] = {}
    open_stacks: Dict[Tuple[int, int], List[str]] = defaultdict(list)
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: event must be an object")
            continue
        phase = event.get("ph")
        if phase not in ("B", "E", "M"):
            errors.append(f"{where}: unsupported ph {phase!r}")
            continue
        if "pid" not in event or "tid" not in event:
            errors.append(f"{where}: missing pid/tid")
            continue
        if phase == "M":
            if "name" not in event or "args" not in event:
                errors.append(f"{where}: metadata event needs name and args")
            continue
        name = event.get("name")
        ts = event.get("ts")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: duration event needs a name")
            continue
        if not isinstance(ts, (int, float)):
            errors.append(f"{where}: duration event needs a numeric ts")
            continue
        track = (event["pid"], event["tid"])
        if track in last_ts and ts < last_ts[track]:
            errors.append(
                f"{where}: ts {ts} goes backwards on track {track} "
                f"(previous {last_ts[track]})"
            )
        last_ts[track] = ts
        stack = open_stacks[track]
        if phase == "B":
            stack.append(name)
        else:
            if not stack:
                errors.append(f"{where}: E {name!r} with no open B on {track}")
            elif stack[-1] != name:
                errors.append(
                    f"{where}: E {name!r} does not match open B "
                    f"{stack[-1]!r} on {track}"
                )
                stack.pop()
            else:
                stack.pop()
    for track, stack in sorted(open_stacks.items()):
        for name in stack:
            errors.append(f"unclosed B {name!r} on track {track}")
    return errors


def validate_trace_file(path: str) -> List[str]:
    """:func:`validate_chrome_trace` over a JSON file on disk."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            trace = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: {exc}"]
    return validate_chrome_trace(trace)


def human_summary(
    spans: Sequence[SpanRecord],
    metrics: Optional[Mapping[str, float]] = None,
) -> str:
    """A terminal-friendly digest: per-stage totals, worker lanes,
    then every metric, sorted."""
    lines: List[str] = []
    phase_totals: Dict[str, float] = defaultdict(float)
    worker_lines: List[str] = []
    for span in spans:
        if span.name.startswith("phase."):
            phase_totals[span.name[len("phase."):]] += span.duration
        elif span.name in ("extract.worker", "update.worker"):
            worker = span.attrs.get("worker", "?")
            worker_lines.append(
                f"  {span.name} #{worker}: {span.duration * 1e3:9.2f} ms"
                f"  (pid {span.pid})"
            )
    if phase_totals:
        lines.append("stages:")
        for name in ("stage1", "extract", "update", "join"):
            if name in phase_totals:
                lines.append(
                    f"  {name:<10} {phase_totals[name] * 1e3:9.2f} ms"
                )
        for name, total in sorted(phase_totals.items()):
            if name not in ("stage1", "extract", "update", "join"):
                lines.append(f"  {name:<10} {total * 1e3:9.2f} ms")
    if worker_lines:
        lines.append("workers:")
        lines.extend(sorted(worker_lines))
    if metrics:
        lines.append("metrics:")
        for name in sorted(metrics):
            value = metrics[name]
            rendered = (
                f"{value:.3f}".rstrip("0").rstrip(".")
                if isinstance(value, float)
                else str(value)
            )
            lines.append(f"  {name} = {rendered}")
    return "\n".join(lines) if lines else "(no observability data)"
