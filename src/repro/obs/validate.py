"""``python -m repro.obs.validate trace.json [...]`` — trace checker.

Exits nonzero when any file fails :func:`repro.obs.validate_chrome_trace`
(malformed JSON, missing keys, backwards timestamps, mismatched B/E
pairs).  CI runs this over the trace a real build emits.
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence

from repro.obs.export import validate_trace_file


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print("usage: python -m repro.obs.validate TRACE.json [...]",
              file=sys.stderr)
        return 2
    failed = 0
    for path in args:
        errors = validate_trace_file(path)
        if errors:
            failed += 1
            for error in errors:
                print(f"{path}: {error}", file=sys.stderr)
        else:
            print(f"{path}: valid chrome trace")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
