"""Span records: one timed, attributed interval of work.

A span is the observability layer's unit of timing — "extractor 3 ran
from t to t+d on thread X in process P".  Spans are plain picklable
data so worker processes can record them locally and ship them back to
the parent over the existing result boundary, where they are re-based
onto the parent's timeline (see :mod:`repro.engine.procworker`).

Timestamps are ``time.perf_counter()`` seconds.  Within one process
they share a timeline; across processes they do not, which is why
cross-process spans travel as *relative* offsets and are re-based by
the receiver (:func:`rebase_spans`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Union

Attr = Union[str, int, float, bool, None]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, as plain picklable data.

    ``start`` is in the recorder's timeline (``perf_counter`` seconds);
    ``duration`` is elapsed seconds.  ``span_id``/``parent_id`` encode
    the span tree: ``parent_id`` is the id of the span that was open on
    the same thread when this one started (None at the root).
    """

    name: str
    start: float
    duration: float
    pid: int
    tid: int
    thread: str
    span_id: int
    parent_id: Optional[int] = None
    attrs: Dict[str, Attr] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration


def rebase_spans(
    spans: Sequence[SpanRecord], offset: float
) -> List[SpanRecord]:
    """Shift every span's start by ``offset`` seconds.

    Used by the parent process to map worker-recorded spans (whose
    starts are relative to the worker body's start) onto its own
    timeline: ``offset`` is the parent-side estimate of when the worker
    body started.
    """
    return [replace(span, start=span.start + offset) for span in spans]


def total_duration(spans: Sequence[SpanRecord], name: str) -> float:
    """Sum of durations of every span named ``name``."""
    return sum(span.duration for span in spans if span.name == name)


def children_of(
    spans: Sequence[SpanRecord], parent: SpanRecord
) -> List[SpanRecord]:
    """Direct children of ``parent`` in the span tree."""
    return [span for span in spans if span.parent_id == parent.span_id]
