"""A small thread-safe metrics registry: counters, gauges, histograms.

The registry is the numeric half of the observability layer: while
spans answer "when did stage X run", metrics answer "how many / how
fast" — files per second, buffer depths, batch retries, cache hit
rates.  Everything is dependency-free plain Python with one lock per
registry, and snapshots flatten to a ``Dict[str, float]`` so they can
ride on :attr:`repro.engine.results.BuildReport.metrics` or be printed
by ``--stats``.

Histograms use fixed buckets (powers of two by default) so percentile
estimation needs no per-sample storage — the same design Prometheus
uses, which keeps `observe` O(#buckets) and merge-friendly.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

# Default histogram buckets: 20 powers of two starting at 1.  Suits the
# layer's native quantities (queue depths, file sizes in KB, ms
# latencies) without per-metric tuning.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(2.0 ** e for e in range(20))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (queue depth, pool size)."""

    __slots__ = ("name", "_value", "_max", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0.0
        self._max = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value
            if value > self._max:
                self._max = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta
            if self._value > self._max:
                self._max = self._value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def max(self) -> float:
        """High-water mark since creation."""
        with self._lock:
            return self._max


class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    ``buckets`` are the *upper* bounds of each bucket; observations
    above the last bound land in an implicit +Inf bucket.  Percentiles
    are estimated as the upper bound of the bucket containing the
    requested rank — exact enough for queue depths and latencies, with
    O(#buckets) memory regardless of sample count.
    """

    __slots__ = ("name", "buckets", "_counts", "_count", "_sum", "_lock")

    def __init__(
        self,
        name: str,
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self._count = 0
        self._sum = 0.0
        self._lock = lock

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket holding the ``p``-th percentile.

        ``p`` in [0, 100].  Returns 0.0 with no observations; the last
        finite bound for samples in the +Inf bucket.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            if not self._count:
                return 0.0
            rank = p / 100.0 * self._count
            seen = 0
            for index, count in enumerate(self._counts):
                seen += count
                if seen >= rank and count:
                    if index < len(self.buckets):
                        return self.buckets[index]
                    return self.buckets[-1]
            return self.buckets[-1]


class MetricsRegistry:
    """Named counters, gauges and histograms behind one lock.

    ``counter``/``gauge``/``histogram`` create-or-return, so
    instrumentation sites need no registration step.  A name may hold
    only one kind of instrument; mixing kinds raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, object] = {}

    def _get_or_create(self, name: str, kind, *args):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = kind(name, threading.Lock(), *args)
                self._instruments[name] = instrument
                return instrument
        if not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(name, Histogram, buckets)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def get(self, name: str) -> Optional[object]:
        with self._lock:
            return self._instruments.get(name)

    def snapshot(self) -> Dict[str, float]:
        """Every instrument flattened to ``name -> float`` pairs.

        Counters and gauges export their value (gauges additionally a
        ``.max`` high-water mark); histograms export ``.count``,
        ``.mean``, ``.p50``, ``.p95`` and ``.p99``.
        """
        with self._lock:
            instruments = list(self._instruments.items())
        flat: Dict[str, float] = {}
        for name, instrument in sorted(instruments):
            if isinstance(instrument, Counter):
                flat[name] = instrument.value
            elif isinstance(instrument, Gauge):
                flat[name] = instrument.value
                flat[f"{name}.max"] = instrument.max
            elif isinstance(instrument, Histogram):
                flat[f"{name}.count"] = float(instrument.count)
                flat[f"{name}.mean"] = instrument.mean
                flat[f"{name}.p50"] = instrument.percentile(50)
                flat[f"{name}.p95"] = instrument.percentile(95)
                flat[f"{name}.p99"] = instrument.percentile(99)
        return flat

    def merge_counts(self, pairs: Iterable[Tuple[str, float]]) -> None:
        """Fold external ``(counter name, amount)`` pairs in (used for
        counts shipped back from worker processes)."""
        for name, amount in pairs:
            self.counter(name).inc(amount)
