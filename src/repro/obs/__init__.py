"""Observability: spans, metrics, and trace export for build + query.

The paper's whole argument is a timing argument — Table 1's stage
breakdown, Tables 2-4's per-configuration sweeps — and a production
indexer needs the same numbers continuously, not from ad-hoc
``perf_counter`` pairs.  This package is that layer:

* :func:`span` / :class:`Recorder` — nestable timed spans recording
  start, duration, thread, and process; near-zero overhead (one branch)
  while the global recorder is disabled;
* :class:`MetricsRegistry` — counters, gauges, and fixed-bucket
  histograms (files/s, queue depths, retries, cache hit rates);
* :func:`chrome_trace` / :func:`write_chrome_trace` — Chrome
  ``trace_event`` JSON for ``chrome://tracing`` / Perfetto, validated
  by :func:`validate_chrome_trace`;
* :func:`human_summary` — the ``--stats`` terminal digest.

Engines record their stage spans on per-build recorders and publish
them on :attr:`~repro.engine.results.BuildReport.spans`;
:meth:`~repro.engine.results.StageTimings.from_spans` derives the
paper's stage breakdown from the span tree.  Worker processes ship
spans back by value; the parent re-bases them onto its timeline with
:func:`rebase_spans`.
"""

from repro.obs.export import (
    chrome_trace,
    human_summary,
    validate_chrome_trace,
    validate_trace_file,
    write_chrome_trace,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.recorder import (
    NULL_SPAN,
    Recorder,
    disable,
    enable,
    enabled,
    get_recorder,
    metrics,
    set_recorder,
    span,
)
from repro.obs.spans import (
    SpanRecord,
    children_of,
    rebase_spans,
    total_duration,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Recorder",
    "SpanRecord",
    "children_of",
    "chrome_trace",
    "disable",
    "enable",
    "enabled",
    "get_recorder",
    "human_summary",
    "metrics",
    "rebase_spans",
    "set_recorder",
    "span",
    "total_duration",
    "validate_chrome_trace",
    "validate_trace_file",
    "write_chrome_trace",
]
