"""Fowler-Noll-Vo hash functions (FNV-1 and FNV-1a, 32- and 64-bit).

FNV hashes a byte stream by repeatedly multiplying an accumulator by a
magic prime and XOR-ing in the next byte.  FNV-1 multiplies first and
XORs second; FNV-1a reverses the two steps, which gives slightly better
avalanche behaviour on short keys.  The constants below are the official
ones from Noll's reference page.

The functions accept ``str`` (hashed as UTF-8) or ``bytes`` and return a
non-negative int that fits the requested width, making them directly
usable as bucket hashes in :mod:`repro.adt`.
"""

from __future__ import annotations

from typing import Union

FNV_32_PRIME = 0x01000193
FNV1_32_INIT = 0x811C9DC5
FNV_64_PRIME = 0x100000001B3
FNV1_64_INIT = 0xCBF29CE484222325

_MASK_32 = 0xFFFFFFFF
_MASK_64 = 0xFFFFFFFFFFFFFFFF

HashInput = Union[str, bytes, bytearray, memoryview]


def _as_bytes(data: HashInput) -> bytes:
    """Normalize hashable input to bytes (str is encoded as UTF-8)."""
    if isinstance(data, str):
        return data.encode("utf-8")
    if isinstance(data, (bytearray, memoryview)):
        return bytes(data)
    if isinstance(data, bytes):
        return data
    raise TypeError(f"cannot hash object of type {type(data).__name__}")


def fnv1_32(data: HashInput) -> int:
    """32-bit FNV-1 hash (multiply, then XOR) of ``data``."""
    h = FNV1_32_INIT
    for byte in _as_bytes(data):
        h = (h * FNV_32_PRIME) & _MASK_32
        h ^= byte
    return h


def fnv1a_32(data: HashInput) -> int:
    """32-bit FNV-1a hash (XOR, then multiply) of ``data``."""
    h = FNV1_32_INIT
    for byte in _as_bytes(data):
        h ^= byte
        h = (h * FNV_32_PRIME) & _MASK_32
    return h


def fnv1_64(data: HashInput) -> int:
    """64-bit FNV-1 hash (multiply, then XOR) of ``data``."""
    h = FNV1_64_INIT
    for byte in _as_bytes(data):
        h = (h * FNV_64_PRIME) & _MASK_64
        h ^= byte
    return h


def fnv1a_64(data: HashInput) -> int:
    """64-bit FNV-1a hash (XOR, then multiply) of ``data``."""
    h = FNV1_64_INIT
    for byte in _as_bytes(data):
        h ^= byte
        h = (h * FNV_64_PRIME) & _MASK_64
    return h


class IncrementalFnv1a:
    """Incrementally feedable 64-bit FNV-1a hasher.

    Useful when a key arrives in chunks (e.g. while scanning a file byte
    by byte) and re-materializing it just to hash would be wasteful::

        hasher = IncrementalFnv1a()
        hasher.update(b"hello ")
        hasher.update(b"world")
        assert hasher.digest() == fnv1a_64(b"hello world")
    """

    __slots__ = ("_state",)

    def __init__(self) -> None:
        self._state = FNV1_64_INIT

    def update(self, data: HashInput) -> "IncrementalFnv1a":
        """Feed more bytes; returns self so calls can be chained."""
        h = self._state
        for byte in _as_bytes(data):
            h ^= byte
            h = (h * FNV_64_PRIME) & _MASK_64
        self._state = h
        return self

    def digest(self) -> int:
        """Current hash value; the hasher may keep being updated after."""
        return self._state

    def reset(self) -> None:
        """Restore the initial basis so the hasher can be reused."""
        self._state = FNV1_64_INIT
