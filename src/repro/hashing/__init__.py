"""FNV (Fowler-Noll-Vo) hash functions.

The paper's index generator hashes terms with the FNV1 hash function
(Noll, http://isthe.com/chongo/tech/comp/fnv/) for both the shared index
hash map and the per-extractor duplicate-elimination hash set.  This
package provides faithful 32- and 64-bit FNV-1 and FNV-1a implementations
plus an incremental hasher, used by :mod:`repro.adt`.
"""

from repro.hashing.fnv import (
    FNV1_32_INIT,
    FNV1_64_INIT,
    FNV_32_PRIME,
    FNV_64_PRIME,
    IncrementalFnv1a,
    fnv1_32,
    fnv1_64,
    fnv1a_32,
    fnv1a_64,
)

__all__ = [
    "FNV1_32_INIT",
    "FNV1_64_INIT",
    "FNV_32_PRIME",
    "FNV_64_PRIME",
    "IncrementalFnv1a",
    "fnv1_32",
    "fnv1_64",
    "fnv1a_32",
    "fnv1a_64",
]
