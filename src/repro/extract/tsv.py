"""TSV / structured-field extraction.

Structured corpora (the MS MARCO style: one record per line, fields
separated by tabs) carry columns that should not be indexed — numeric
ids, URLs, labels.  The TSV extractor's *prepare* stage selects the
wanted columns from each line before tokenization; ``columns=None``
indexes every field.

Because *prepare* is strictly line-local, TSV files are always
splittable for huge-file extraction — with the chunk boundary
restricted to ``\\n`` so every chunk holds whole records (cutting at an
arbitrary separator could split a line *between columns* and change
which fields the selector sees).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.extract.base import Extractor, ExtractorSpec

#: Only newlines: a chunk must hold whole records.
_LINE_BOUNDARY = frozenset((0x0A,))


class TsvExtractor(Extractor):
    """Tab-separated records; ``columns`` picks the indexed fields."""

    name = "tsv"

    def __init__(
        self,
        tokenizer=None,
        registry=None,
        columns: Optional[Tuple[int, ...]] = None,
    ) -> None:
        # A format registry makes no sense here: the tab structure IS
        # the format, and registry conversion would destroy it.
        super().__init__(tokenizer=tokenizer, registry=None)
        if columns is not None:
            columns = tuple(columns)
            if any(c < 0 for c in columns):
                raise ValueError("column indices must be non-negative")
        self.columns = columns

    def prepare(self, path: str, content: bytes) -> bytes:
        if self.columns is None:
            return content
        columns = self.columns
        out = []
        for line in content.split(b"\n"):
            fields = line.split(b"\t")
            out.append(b" ".join(fields[c] for c in columns if c < len(fields)))
        return b"\n".join(out)

    @property
    def boundary_bytes(self) -> frozenset:
        return _LINE_BOUNDARY

    def splittable(self, path: str, head: bytes = b"") -> bool:
        return True

    def chunk_terms(self, data: bytes) -> List[str]:
        # prepare is line-local and chunks hold whole lines, so running
        # the column selector per chunk equals running it on the file.
        return self.tokenize(self.prepare("", data))

    def _options(self) -> Tuple[Tuple[str, object], ...]:
        if self.columns is None:
            return ()
        return (("columns", self.columns),)

    @classmethod
    def from_spec(cls, spec: ExtractorSpec) -> "TsvExtractor":
        return cls(
            tokenizer=cls._tokenizer_class()(
                min_length=spec.min_length,
                max_length=spec.max_length,
                stopwords=spec.stopwords,
            ),
            columns=spec.option("columns"),
        )

    def __repr__(self) -> str:
        return f"TsvExtractor(columns={self.columns!r})"
