"""Extractor registry and the one resolution seam for engines.

``register_extractor`` / ``get_extractor`` map short names (the CLI's
``--extractor {ascii,code,tsv}``) to extractor classes;
:func:`resolve_extractor` is the single helper every engine constructor
funnels through, so the legacy ``tokenizer=`` / ``registry=`` kwargs
and the new ``extractor=`` kwarg resolve identically everywhere.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Type

from repro.extract.ascii import AsciiExtractor
from repro.extract.base import Extractor
from repro.extract.code import CodeExtractor
from repro.extract.tsv import TsvExtractor

_FACTORIES: Dict[str, Type[Extractor]] = {}


def register_extractor(name: str, factory: Type[Extractor]) -> None:
    """Register an extractor class under ``name`` (last wins)."""
    if not name:
        raise ValueError("extractor name must be non-empty")
    _FACTORIES[name] = factory


def extractor_class(name: str) -> Type[Extractor]:
    """The registered class for ``name``; KeyError with choices if unknown."""
    try:
        return _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown extractor {name!r}; available: "
            f"{', '.join(available_extractors())}"
        ) from None


def get_extractor(name: str, *, tokenizer=None, registry=None) -> Extractor:
    """Build a registered extractor by name."""
    cls = extractor_class(name)
    if tokenizer is None and registry is None:
        return cls()
    if tokenizer is None:
        return cls(registry=registry)
    return cls(tokenizer=tokenizer, registry=registry)


def available_extractors() -> Tuple[str, ...]:
    """Registered extractor names, sorted (for CLI choices / errors)."""
    return tuple(sorted(_FACTORIES))


def resolve_extractor(
    extractor=None,
    tokenizer=None,
    registry=None,
) -> Extractor:
    """The engine seam: one extractor from old-style or new-style kwargs.

    ``extractor`` may be an :class:`Extractor` instance (returned as
    is), a registered name (built, honoring ``tokenizer``/``registry``
    as construction parameters), or ``None`` (the legacy path: an
    :class:`AsciiExtractor` wrapping whatever ``tokenizer``/``registry``
    the caller passed, which reproduces pre-extractor engine behavior
    exactly).
    """
    if extractor is None:
        return AsciiExtractor(tokenizer=tokenizer, registry=registry)
    if isinstance(extractor, Extractor):
        if tokenizer is not None or registry is not None:
            raise ValueError(
                "pass either extractor= or tokenizer=/registry=, not both"
            )
        return extractor
    if isinstance(extractor, str):
        return get_extractor(extractor, tokenizer=tokenizer, registry=registry)
    raise TypeError(
        f"extractor must be an Extractor, a registered name, or None, "
        f"not {type(extractor).__name__}"
    )


register_extractor("ascii", AsciiExtractor)
register_extractor("code", CodeExtractor)
register_extractor("tsv", TsvExtractor)
