"""Code-aware extraction: identifiers split into their parts.

Source code defeats the ASCII tokenizer twice: ``snake_case`` breaks
into fragments at every underscore with the identifier itself lost, and
``camelCase`` survives as one opaque term nobody queries for.  The code
tokenizer treats ``_`` as a word byte (so an identifier is one run),
then splits each identifier into camelCase / snake_case / digit parts
and emits **both** the parts and — when there is more than one part —
the joined identifier (underscores dropped, lower-cased), so
``parseHTTPHeader`` is findable via ``parse``, ``http``, ``header`` or
``parsehttpheader``.  Every emitted term is pure lower-case
alphanumeric, so code terms live in the same query language as text
terms.
"""

from __future__ import annotations

import re
from typing import Iterator, List

from repro.extract.base import Extractor
from repro.text.tokenizer import Tokenizer, make_translation_table

_CODE_WORD_BYTES = frozenset(
    b"abcdefghijklmnopqrstuvwxyz"
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    b"0123456789_"
)

#: Case is preserved by the table (fold_case=False): the part splitter
#: below needs it to find camelCase boundaries.
_CODE_TABLE = make_translation_table(_CODE_WORD_BYTES, fold_case=False)

#: Identifier parts: digit runs, acronyms (``HTTP`` in ``HTTPServer``),
#: capitalized words, lower-case runs.  Underscores match nothing and
#: so act as part separators.
_PART_RE = re.compile(rb"[0-9]+|[A-Z]+(?![a-z])|[A-Z][a-z]*|[a-z]+")


class CodeTokenizer(Tokenizer):
    """Identifier-splitting tokenizer (camelCase / snake_case / digits).

    ``min_length`` / ``max_length`` / ``stopwords`` apply to each
    emitted term — parts and joined identifiers alike — with the same
    semantics (and the same ``max_length`` truncation aliasing) as the
    base tokenizer.
    """

    _table = _CODE_TABLE
    word_bytes = _CODE_WORD_BYTES

    def tokenize(self, content: bytes) -> List[str]:
        out: List[str] = []
        for ident in content.translate(self._table).split():
            out.extend(self._emit(ident))
        return out

    def _emit(self, word) -> Iterator[str]:
        # Shared by the fast path above and the inherited per-byte
        # reference loop (iter_terms_slow), so the two stay equivalent
        # by construction.
        ident = bytes(word)
        parts = _PART_RE.findall(ident)
        min_length = self.min_length
        max_length = self.max_length
        stopwords = self.stopwords
        for part in parts:
            if len(part) >= min_length:
                term = part[:max_length].decode("ascii").lower()
                if term not in stopwords:
                    yield term
        if len(parts) > 1:
            joined = ident.replace(b"_", b"")
            if len(joined) >= min_length:
                term = joined[:max_length].decode("ascii").lower()
                if term not in stopwords:
                    yield term

    def count_terms(self, content: bytes) -> int:
        return len(self.tokenize(content))


class CodeExtractor(Extractor):
    """Code-aware pipeline: format conversion + identifier splitting."""

    name = "code"

    def __init__(self, tokenizer=None, registry=None) -> None:
        super().__init__(
            tokenizer=tokenizer if tokenizer is not None else CodeTokenizer(),
            registry=registry,
        )

    @classmethod
    def _tokenizer_class(cls):
        return CodeTokenizer
