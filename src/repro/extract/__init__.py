"""Pluggable extraction pipelines.

An :class:`Extractor` composes format conversion and tokenization into
one unit — the seam every engine now shares (``Search(extractor=...)``,
``repro-cli --extractor {ascii,code,tsv}``).  :class:`ExtractorSpec` is
its picklable description for the process-worker boundary, and
:mod:`repro.extract.split` implements huge-file divide-and-conquer on
top of the extractor's boundary-byte contract.  See
``docs/extraction.md``.
"""

from repro.extract.ascii import AsciiExtractor
from repro.extract.base import Extractor, ExtractorSpec
from repro.extract.code import CodeExtractor, CodeTokenizer
from repro.extract.registry import (
    available_extractors,
    extractor_class,
    get_extractor,
    register_extractor,
    resolve_extractor,
)
from repro.extract.split import (
    DEFAULT_SPLIT_THRESHOLD,
    SplitJoiner,
    expand_file_refs,
    plan_chunks,
    read_chunk,
    read_range,
)
from repro.extract.tsv import TsvExtractor

__all__ = [
    "AsciiExtractor",
    "CodeExtractor",
    "CodeTokenizer",
    "DEFAULT_SPLIT_THRESHOLD",
    "Extractor",
    "ExtractorSpec",
    "SplitJoiner",
    "TsvExtractor",
    "available_extractors",
    "expand_file_refs",
    "extractor_class",
    "get_extractor",
    "plan_chunks",
    "read_chunk",
    "read_range",
    "register_extractor",
    "resolve_extractor",
]
