"""Huge-file divide-and-conquer: boundary-aligned chunk planning.

One 500 MB log in an otherwise small corpus serializes the tail of
every parallel build — the skew problem the paper flags (and the
genome-indexing literature solves by splitting the *input*, not just
the file list).  This module turns a file above ``split_threshold``
into chunks that can be extracted in parallel by different workers,
with a correctness guarantee:

    the terms of chunk ``[start, end)`` are exactly the terms whose
    first byte lies in ``[start, end)``,

so concatenating per-chunk term streams in chunk order reproduces the
whole-file term stream byte-for-byte.  The guarantee rests on the
extractor's :attr:`~repro.extract.base.Extractor.boundary_bytes`:
cutting at a boundary byte can never land inside a term (or, for TSV,
inside a record).

Alignment protocol (:func:`read_chunk`):

* **leading edge** — if the byte *before* ``start`` is a word byte, a
  run crosses into this chunk; its term belongs to the previous chunk,
  so the chunk drops everything up to the first boundary byte.  A chunk
  that lies entirely inside one giant run contributes nothing (the run
  is owned by whichever chunk its first byte falls in).
* **trailing edge** — if the chunk's last byte is a word byte, the run
  continues past ``end``; the chunk owns it (its first byte is inside),
  so probe reads extend the data to the run's true end.

Chunks are planned at nominal even offsets (:func:`plan_chunks`); the
alignment shifts each edge by at most one run, so chunk sizes stay
balanced unless the file is one enormous run — in which case splitting
degenerates gracefully to one owning chunk and empty neighbors.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.fsmodel.nodes import ChunkRef, FileRef

#: Files at or below this many bytes are never split (1 MiB — small
#: enough that one worker extracts it in well under a scheduling
#: quantum, large enough that chunk overhead never dominates).
DEFAULT_SPLIT_THRESHOLD = 1 << 20

#: Probe-read size for trailing-run extension.
_PROBE = 4096

#: Leading bytes read for format sniffing when deciding splittability.
_HEAD_PROBE = 512


def plan_chunks(size: int, threshold: int) -> List[Tuple[int, int]]:
    """Nominal ``[start, end)`` offsets for a file of ``size`` bytes.

    Files at or below ``threshold`` get a single chunk; larger files
    are divided into ``ceil(size / threshold)`` near-equal chunks.
    """
    if threshold < 1:
        raise ValueError("split threshold must be at least 1")
    if size <= threshold:
        return [(0, size)]
    count = -(-size // threshold)
    return [(size * i // count, size * (i + 1) // count) for i in range(count)]


def read_range(fs, path: str, offset: int, length: int) -> bytes:
    """``fs.read_range`` when the backend has it, else slice a full read.

    The fallback keeps chunk extraction correct on filesystem stand-ins
    that predate ``read_range`` — slower (whole-file read per chunk),
    never wrong.
    """
    ranged = getattr(fs, "read_range", None)
    if ranged is not None:
        return ranged(path, offset, length)
    return fs.read_file(path)[offset : offset + length]


def read_chunk(
    fs,
    path: str,
    file_size: int,
    start: int,
    end: int,
    boundary: frozenset,
) -> bytes:
    """The boundary-aligned bytes of chunk ``[start, end)``.

    Tokenizing the returned bytes yields exactly the terms whose first
    byte lies in ``[start, end)`` — see the module docstring for the
    alignment protocol and its correctness argument.
    """
    data = read_range(fs, path, start, end - start)
    if start > 0:
        before = read_range(fs, path, start - 1, 1)
        if before and before[0] not in boundary:
            # A run crosses our leading edge; the previous chunk owns it.
            i = 0
            n = len(data)
            while i < n and data[i] not in boundary:
                i += 1
            if i == n:
                return b""  # entirely inside one run owned upstream
            data = data[i:]
    if end < file_size and data and data[-1] not in boundary:
        # Our trailing run continues past `end`; we own it — extend.
        tail = bytearray()
        pos = end
        while pos < file_size:
            block = read_range(fs, path, pos, min(_PROBE, file_size - pos))
            if not block:
                break
            i = 0
            n = len(block)
            while i < n and block[i] not in boundary:
                i += 1
            tail += block[:i]
            if i < n:
                break
            pos += n
        data += bytes(tail)
    return data


def expand_file_refs(
    fs,
    files: Sequence[FileRef],
    extractor,
    threshold: Optional[int],
) -> Tuple[List[FileRef], List[str]]:
    """Expand oversized splittable files into :class:`ChunkRef` runs.

    Returns ``(refs, split_paths)``: the work list with each split file
    replaced by its chunks (everything else passed through unchanged),
    plus the paths that were split (for the ``extract.files_split``
    counter).  ``threshold=None`` disables splitting entirely.

    A file only splits when the extractor says its *prepare* stage
    commutes with chunking (:meth:`Extractor.splittable`, fed a small
    head read for magic sniffing).  A file whose head cannot be read is
    left whole — the engine's normal per-file path will then attribute
    the read error to the right stage under its error policy.
    """
    if threshold is None:
        return list(files), []
    out: List[FileRef] = []
    split_paths: List[str] = []
    for ref in files:
        if ref.size <= threshold or isinstance(ref, ChunkRef):
            out.append(ref)
            continue
        try:
            head = read_range(fs, ref.path, 0, min(_HEAD_PROBE, ref.size))
        except Exception:
            out.append(ref)
            continue
        if not extractor.splittable(ref.path, head):
            out.append(ref)
            continue
        chunks = plan_chunks(ref.size, threshold)
        if len(chunks) <= 1:
            out.append(ref)
            continue
        split_paths.append(ref.path)
        for index, (start, end) in enumerate(chunks):
            out.append(
                ChunkRef(
                    path=ref.path,
                    size=end - start,
                    start=start,
                    end=end,
                    index=index,
                    count=len(chunks),
                    file_size=ref.size,
                )
            )
    return out, split_paths


class SplitJoiner:
    """Joins per-chunk term streams back into whole-file term lists.

    Chunks of one file finish on different workers in arbitrary order;
    the joiner buffers each file's parts and releases the concatenation
    *in chunk order* — equal to the unsplit file's term stream by the
    :func:`read_chunk` guarantee — exactly once, when the last part
    lands.  A file with any failed chunk releases nothing: a term block
    must cover the whole document or not exist at all (no half-indexed
    files), matching the per-file skip-policy contract.

    Not thread-safe by itself: threaded engines guard every call with a
    SyncProvider lock; the process backend only calls it from the
    parent's collect loop.
    """

    def __init__(self) -> None:
        self._parts: Dict[str, List[Optional[List[str]]]] = {}
        self._done: Dict[str, int] = {}
        self._failed: Dict[str, bool] = {}

    def add(
        self, path: str, index: int, count: int, terms: Iterable[str]
    ) -> Optional[List[str]]:
        """Deliver chunk ``index``'s terms; the whole file's ordered
        term list when this completed the file, else ``None``."""
        self._parts.setdefault(path, [None] * count)[index] = list(terms)
        return self._finish(path, count)

    def fail(self, path: str, count: int) -> bool:
        """Deliver a chunk failure.  True only on the file's *first*
        failure, so the caller records exactly one FileFailure."""
        first = not self._failed.get(path, False)
        self._failed[path] = True
        self._parts.setdefault(path, [None] * count)
        self._finish(path, count)
        return first

    def _finish(self, path: str, count: int) -> Optional[List[str]]:
        done = self._done.get(path, 0) + 1
        if done < count:
            self._done[path] = done
            return None
        parts = self._parts.pop(path)
        self._done.pop(path, None)
        if self._failed.pop(path, False):
            return None
        out: List[str] = []
        for part in parts:
            out.extend(part)
        return out
