"""The default extractor: ASCII word runs, optional format conversion.

This is the paper's extraction semantics behind the new API — the
pipeline every engine ran before extractors existed, now as one
pluggable unit: optional :class:`~repro.formats.base.FormatRegistry`
conversion, then the vectorized
:class:`~repro.text.tokenizer.Tokenizer`.
"""

from __future__ import annotations

from repro.extract.base import Extractor


class AsciiExtractor(Extractor):
    """Maximal ``[a-zA-Z0-9]`` runs, lower-cased — the classic pipeline."""

    name = "ascii"
