"""The Extractor protocol and its picklable spec.

Before this package, "how does file content become index terms" was
three separate seams threaded through every engine: a
:class:`~repro.text.tokenizer.Tokenizer`, an optional
:class:`~repro.formats.base.FormatRegistry`, and (across the process
boundary) ``TokenizerSpec``.  An :class:`Extractor` composes the whole
pipeline — format conversion (*prepare*) followed by tokenization —
into one pluggable unit, and :class:`ExtractorSpec` is its picklable
description, superseding ``TokenizerSpec`` at the worker boundary.

The two-stage structure is load-bearing for error attribution: engines
call :meth:`Extractor.prepare` and :meth:`Extractor.tokenize`
separately so a failure can still be pinned to the *extract* stage vs
the *tokenize* stage (the skip-policy ``FileFailure`` contract from the
fault-tolerance work).  :meth:`Extractor.term_block` is the one-shot
face for callers that don't need staging.

Extractors also describe their own huge-file splittability (see
:mod:`repro.extract.split`): :attr:`Extractor.boundary_bytes` is the
set of bytes a file may be cut at without changing the term stream, and
:meth:`Extractor.splittable` gates splitting to files whose *prepare*
stage commutes with chunking (identity for plain text, line-local for
TSV — an HTML file cannot be cut mid-tag).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.formats.base import FormatRegistry
from repro.text.dedup import dedup_terms
from repro.text.termblock import TermBlock
from repro.text.tokenizer import Tokenizer


@dataclass(frozen=True)
class ExtractorSpec:
    """A picklable description of an :class:`Extractor`.

    This is what crosses the process-worker boundary (superseding the
    deprecated ``TokenizerSpec``): plain data plus the format registry
    carried *by value*, so a worker reconstructs the exact extraction
    pipeline with ``spec.build()``.  ``kind`` names a registered
    extractor class (see :mod:`repro.extract.registry`); ``options``
    holds extractor-specific settings as sorted ``(key, value)`` pairs
    so specs stay hashable and comparable.
    """

    kind: str = "ascii"
    min_length: int = 2
    max_length: int = 64
    stopwords: Tuple[str, ...] = ()
    registry: Optional[FormatRegistry] = None
    options: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.min_length < 1:
            raise ValueError("min_length must be at least 1")
        if self.max_length < self.min_length:
            raise ValueError("max_length must be >= min_length")

    def build(self) -> "Extractor":
        """Reconstruct the extractor this spec describes."""
        from repro.extract.registry import extractor_class

        return extractor_class(self.kind).from_spec(self)

    def option(self, key: str, default=None):
        for name, value in self.options:
            if name == key:
                return value
        return default


class Extractor:
    """One pluggable extraction pipeline: *prepare* then *tokenize*.

    Subclasses set :attr:`name` (the registry key) and override the
    stages they change; the base class implements the common ASCII
    pipeline so :class:`~repro.extract.ascii.AsciiExtractor` is pure
    declaration.  Instances are cheap, stateless between calls, and
    safe to share across threads; for processes, ship :meth:`spec`.
    """

    #: Registry key; subclasses must override.
    name: str = "abstract"

    def __init__(
        self,
        tokenizer: Optional[Tokenizer] = None,
        registry: Optional[FormatRegistry] = None,
    ) -> None:
        self.tokenizer = tokenizer if tokenizer is not None else Tokenizer()
        self.registry = registry

    # -- the two stages -------------------------------------------------

    def prepare(self, path: str, content: bytes) -> bytes:
        """Format conversion: raw file bytes to tokenizable text.

        With a registry this is format detection + text extraction
        (HTML tags stripped, etc.); without one it is the identity.
        Engines call this as the *extract* stage so failures here keep
        their stage attribution.
        """
        if self.registry is not None:
            return self.registry.extract_text(path, content)
        return content

    def tokenize(self, content: bytes) -> List[str]:
        """Terms of prepared ``content``, in order, with duplicates."""
        return self.tokenizer.tokenize(content)

    # -- composed faces -------------------------------------------------

    def terms(self, path: str, content: bytes) -> List[str]:
        """prepare + tokenize in one call."""
        return self.tokenize(self.prepare(path, content))

    def term_block(self, path: str, content: bytes) -> TermBlock:
        """The file's de-duplicated term block, ready for ``add_block``."""
        return TermBlock(path=path, terms=dedup_terms(self.terms(path, content)))

    # -- huge-file splitting --------------------------------------------

    @property
    def boundary_bytes(self) -> frozenset:
        """Bytes a file may be cut at without changing the term stream.

        For run-of-word-bytes tokenizers that is every separator byte:
        cutting at a separator can never land inside a term.
        """
        return frozenset(range(256)) - self.tokenizer.word_bytes

    def splittable(self, path: str, head: bytes = b"") -> bool:
        """Whether this file may be chunk-split for parallel extraction.

        Only true when :meth:`prepare` commutes with chunking.  With a
        format registry that means the detected format must be the
        identity transform (plain text); ``head`` is the leading bytes
        of the file for magic sniffing.  Formats that transform content
        globally (HTML, DocZ) make chunk boundaries meaningless, so
        those files always extract whole.
        """
        if self.registry is None:
            return True
        from repro.formats.plain import PlainTextFormat

        return isinstance(self.registry.detect(path, head), PlainTextFormat)

    def chunk_terms(self, data: bytes) -> List[str]:
        """Terms of one boundary-aligned chunk (see ``extract.split``).

        Splitting is gated on :meth:`prepare` being the identity, so
        the base implementation tokenizes directly — deliberately NOT
        re-running format detection on a mid-file chunk, whose leading
        bytes could sniff as the wrong format.
        """
        return self.tokenize(data)

    # -- worker boundary ------------------------------------------------

    def spec(self) -> ExtractorSpec:
        """The picklable description; ``spec().build()`` round-trips."""
        return ExtractorSpec(
            kind=self.name,
            min_length=self.tokenizer.min_length,
            max_length=self.tokenizer.max_length,
            stopwords=tuple(sorted(self.tokenizer.stopwords)),
            registry=self.registry,
            options=self._options(),
        )

    def _options(self) -> Tuple[Tuple[str, object], ...]:
        """Extractor-specific spec options; subclasses override."""
        return ()

    @classmethod
    def from_spec(cls, spec: ExtractorSpec) -> "Extractor":
        """Construct from a spec (inverse of :meth:`spec`)."""
        return cls(
            tokenizer=cls._tokenizer_class()(
                min_length=spec.min_length,
                max_length=spec.max_length,
                stopwords=spec.stopwords,
            ),
            registry=spec.registry,
        )

    @classmethod
    def _tokenizer_class(cls):
        return Tokenizer

    def __repr__(self) -> str:
        return f"{type(self).__name__}(tokenizer={self.tokenizer!r})"


# Re-exported for TermBlock/dedup symmetry at the package face.
__all__ = ["Extractor", "ExtractorSpec"]
