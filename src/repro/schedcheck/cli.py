"""``repro-schedcheck`` — deterministic schedule exploration CLI.

Examples::

    repro-schedcheck --engine impl2 --threads 4,2,1 --seeds 0:200
    repro-schedcheck --engine impl1 --threads 2,0,0 --seeds 0:50 \
        --strategy pct
    repro-schedcheck --engine impl1 --threads 2,0,0 --replay 17
    repro-schedcheck --engine impl1 --threads 2,0,0 --seeds 0:20 \
        --mutate-lock impl1.index-lock      # must FAIL (self-test)
    repro-schedcheck --lint

Every failure line prints the seed that reproduces it; rerun with
``--replay <seed>`` to get the full schedule and trace tail.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.engine.config import ThreadConfig
from repro.schedcheck import lint as lint_mod
from repro.schedcheck.harness import (
    DEFAULT_CONFIGS,
    ENGINES,
    STRATEGIES,
    UnlockedSyncProvider,
    explore,
    make_corpus,
    parse_seed_range,
    run_schedule,
    sequential_reference,
)


def _parse_threads(text: str) -> tuple:
    parts = [p.strip() for p in text.split(",")]
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"--threads wants x,y,z (e.g. 4,2,1), got {text!r}"
        )
    try:
        return tuple(int(p) for p in parts)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-schedcheck",
        description=(
            "Explore thread schedules of the index-generator engines "
            "deterministically, checking for data races, lock-order "
            "inversions, deadlocks, and divergence from the sequential "
            "index."
        ),
    )
    parser.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default="impl2",
        help="which threaded engine to check (default: impl2)",
    )
    parser.add_argument(
        "--threads",
        type=_parse_threads,
        default=None,
        metavar="X,Y,Z",
        help="extractor,updater,joiner counts (default: per-engine)",
    )
    parser.add_argument(
        "--seeds",
        default="0:50",
        metavar="LO:HI",
        help="half-open seed range to explore (default: 0:50)",
    )
    parser.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default="mixed",
        help=(
            "schedule strategy: random walk, PCT priorities, or mixed "
            "(even seeds random, odd seeds pct; default)"
        ),
    )
    parser.add_argument(
        "--pct-depth",
        type=int,
        default=3,
        help="PCT bug depth d (d-1 priority change points; default 3)",
    )
    parser.add_argument(
        "--files",
        type=int,
        default=10,
        help="corpus size in files (default 10; small is good)",
    )
    parser.add_argument(
        "--max-steps",
        type=int,
        default=200_000,
        help="per-schedule scheduling-decision budget (livelock guard)",
    )
    parser.add_argument(
        "--replay",
        type=int,
        default=None,
        metavar="SEED",
        help="replay one seed verbosely instead of sweeping",
    )
    parser.add_argument(
        "--mutate-lock",
        default=None,
        metavar="SUBSTRING",
        help=(
            "self-test: make every lock whose name contains SUBSTRING a "
            "no-op; the sweep then must FAIL with a detected race"
        ),
    )
    parser.add_argument(
        "--stop-on-failure",
        action="store_true",
        help="stop the sweep at the first failing schedule",
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="run the raw-threading lint over engine code and exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print one line per explored schedule",
    )
    return parser


def _mutated_sweep(args, config: ThreadConfig) -> int:
    """Sweep with a broken lock; success means the checker caught it."""
    fs = make_corpus(file_count=args.files)
    expected = sequential_reference(fs)
    lo, hi = parse_seed_range(args.seeds)
    for seed in range(lo, hi):
        run = run_schedule(
            args.engine,
            config,
            fs,
            seed,
            strategy=args.strategy,
            pct_depth=args.pct_depth,
            expected=expected,
            max_steps=args.max_steps,
            provider_factory=lambda tracer, sched: UnlockedSyncProvider(
                tracer=tracer,
                scheduler=sched,
                break_locks=(args.mutate_lock,),
            ),
        )
        if not run.clean:
            print(run.describe())
            print(
                f"mutation caught: lock(s) matching "
                f"{args.mutate_lock!r} broken, seed {seed} detects it "
                f"(replay with --replay {seed} --mutate-lock "
                f"{args.mutate_lock})"
            )
            return 0
    print(
        f"mutation NOT caught in seeds {args.seeds}: breaking "
        f"{args.mutate_lock!r} went undetected"
    )
    return 1


def _replay(args, config: ThreadConfig) -> int:
    fs = make_corpus(file_count=args.files)
    expected = sequential_reference(fs)
    factory = None
    if args.mutate_lock:
        factory = lambda tracer, sched: UnlockedSyncProvider(  # noqa: E731
            tracer=tracer, scheduler=sched, break_locks=(args.mutate_lock,)
        )
    run = run_schedule(
        args.engine,
        config,
        fs,
        args.replay,
        strategy=args.strategy,
        pct_depth=args.pct_depth,
        expected=expected,
        max_steps=args.max_steps,
        keep_trace=True,
        provider_factory=factory,
    )
    print(run.describe())
    print(f"schedule ({len(run.schedule or [])} decisions): ", end="")
    print(" ".join(run.schedule or []) or "<empty>")
    if run.tracer is not None:
        print("trace tail:")
        for event in run.tracer.trace.tail(40):
            print(f"  {event}")
    return 0 if run.clean else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.lint:
        return lint_mod.main([])

    threads = args.threads or DEFAULT_CONFIGS[args.engine]
    try:
        config = ThreadConfig(*threads)
        config.validate_for(ENGINES[args.engine].implementation)
    except (TypeError, ValueError) as exc:
        print(f"invalid --threads for {args.engine}: {exc}", file=sys.stderr)
        return 2

    if args.replay is not None:
        return _replay(args, config)
    if args.mutate_lock:
        return _mutated_sweep(args, config)

    lo, hi = parse_seed_range(args.seeds)
    report = explore(
        args.engine,
        config,
        range(lo, hi),
        strategy=args.strategy,
        pct_depth=args.pct_depth,
        file_count=args.files,
        max_steps=args.max_steps,
        stop_on_failure=args.stop_on_failure,
    )
    if args.verbose:
        for run in report.runs:
            print(run.describe())
    print(report.summary())
    failures: List = report.failures
    for run in failures[:10]:
        print(run.describe())
        print(f"  replay: repro-schedcheck --engine {args.engine} "
              f"--threads {threads[0]},{threads[1]},{threads[2]} "
              f"--strategy {run.strategy} --replay {run.seed}")
    return 0 if report.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
