"""Happens-before race detection and lock-order-inversion checking.

Both checkers consume the plain data a :class:`~repro.schedcheck.tracer
.Tracer` collected — no live synchronization state is needed, so a
trace can be analysed after the run (or persisted and analysed later).

Race detection uses the epoch shortcut: access *A* by thread *t*
happens before a later access *B* iff ``B.clock[t] >= A.epoch``.  A
per-location frontier of each thread's latest read and latest write is
sufficient: clocks are monotone per thread, so if the latest access is
ordered with *B*, every earlier one is too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.schedcheck.events import Access
from repro.schedcheck.tracer import Tracer


@dataclass(frozen=True)
class Race:
    """Two accesses to the same location, at least one a write, with no
    happens-before order between them."""

    location: str
    first: Access
    second: Access

    def __str__(self) -> str:
        kind = "write/write" if (self.first.write and self.second.write) \
            else "read/write"
        return (
            f"{kind} race on {self.location!r}:\n"
            f"  {self.first}\n"
            f"  {self.second}"
        )


@dataclass(frozen=True)
class LockInversion:
    """Two locks acquired in both nesting orders — a deadlock recipe."""

    first: str
    second: str
    forward_seq: int
    backward_seq: int

    def __str__(self) -> str:
        return (
            f"lock-order inversion: {self.first!r} -> {self.second!r} "
            f"(event #{self.forward_seq}) but also "
            f"{self.second!r} -> {self.first!r} (event #{self.backward_seq})"
        )


def _happens_before(earlier: Access, later: Access) -> bool:
    return later.clock.get(earlier.thread, 0) >= earlier.epoch


def find_races(tracer: Tracer, limit: int = 20) -> List[Race]:
    """All unordered conflicting access pairs, up to ``limit``."""
    races: List[Race] = []
    # location -> thread -> latest (write access, read access)
    frontier: Dict[str, Dict[str, List[Access]]] = {}
    for access in tracer.accesses:
        threads = frontier.setdefault(access.location, {})
        for other_tid, latest in threads.items():
            if other_tid == access.thread:
                continue
            for prev in latest:
                if prev is None:
                    continue
                if not (prev.write or access.write):
                    continue
                if not _happens_before(prev, access):
                    races.append(
                        Race(access.location, prev, access)
                    )
                    if len(races) >= limit:
                        return races
        slot = threads.setdefault(access.thread, [None, None])
        slot[0 if access.write else 1] = access
    return races


def find_lock_inversions(tracer: Tracer) -> List[LockInversion]:
    """Pairs of locks witnessed nested in both orders."""
    edges = tracer.lock_order_edges
    inversions: List[LockInversion] = []
    seen: set = set()
    for (outer, inner), seq in edges.items():
        back = edges.get((inner, outer))
        if back is None:
            continue
        key: Tuple[str, str] = tuple(sorted((outer, inner)))  # type: ignore[assignment]
        if key in seen:
            continue
        seen.add(key)
        inversions.append(
            LockInversion(
                first=outer, second=inner,
                forward_seq=seq, backward_seq=back,
            )
        )
    return inversions


def describe_findings(
    races: Sequence[Race], inversions: Sequence[LockInversion]
) -> str:
    """Human-readable report of whatever the checkers found."""
    parts: List[str] = []
    for race in races:
        parts.append(str(race))
    for inversion in inversions:
        parts.append(str(inversion))
    return "\n".join(parts) if parts else "no findings"
