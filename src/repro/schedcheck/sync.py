"""Instrumented drop-in synchronization primitives.

:class:`InstrumentedSyncProvider` implements the engine's
:class:`~repro.concurrency.provider.SyncProvider` seam in two modes:

* **record mode** (no scheduler): primitives wrap the real ``threading``
  objects and record every acquire/release/wait/notify with vector
  clocks while the OS schedules freely — race detection on whatever
  interleaving actually happened;
* **controlled mode** (with a
  :class:`~repro.schedcheck.scheduler.CooperativeScheduler`): primitives
  never block in the OS at all.  A lock that cannot be taken parks its
  thread with the scheduler; a release re-marks waiters runnable.  The
  scheduler then explores interleavings from a seed, and the same seed
  replays the same schedule event-for-event.

Because :class:`~repro.concurrency.buffers.BoundedBuffer`,
:class:`~repro.concurrency.barrier.ReusableBarrier` and
:class:`~repro.concurrency.sharded.ShardedLock` build their internals
through the provider, the schedule checker exercises the *production*
algorithms of those primitives, not reimplementations.

This module is the instrumented layer itself, so it is the one place
(besides the raw provider) allowed to touch ``threading`` directly.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Tuple

from repro.concurrency.provider import SyncProvider
from repro.schedcheck.scheduler import CooperativeScheduler
from repro.schedcheck.tracer import Tracer


class InstrumentedSyncProvider(SyncProvider):
    """Tracing (and optionally deterministically scheduled) provider."""

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        scheduler: Optional[CooperativeScheduler] = None,
    ) -> None:
        self.tracer = tracer or Tracer()
        self.scheduler = scheduler
        self._names = {}  # record mode: OS thread ident -> tid
        self._name_lock = threading.Lock()
        self._counter = 0

    # -- identity ---------------------------------------------------------

    def _tid(self) -> str:
        if self.scheduler is not None:
            return self.scheduler.current() or "driver"
        ident = threading.get_ident()
        tid = self._names.get(ident)
        if tid is None:
            with self._name_lock:
                tid = self._names.get(ident)
                if tid is None:
                    tid = f"T{self._counter}"
                    self._counter += 1
                    self._names[ident] = tid
        return tid

    def _alloc_record_tid(self) -> str:
        with self._name_lock:
            tid = f"T{self._counter}"
            self._counter += 1
            return tid

    # -- SyncProvider surface ---------------------------------------------

    def lock(self, name: str = "lock"):
        if self.scheduler is not None:
            return _CoopLock(self, name)
        return _RecordLock(self, name)

    def condition(self, lock=None, name: str = "condition"):
        if lock is None:
            lock = self.lock(f"{name}.lock")
        if self.scheduler is not None:
            return _CoopCondition(self, lock, name)
        return _RecordCondition(self, lock, name)

    def thread(
        self,
        target: Callable[..., None],
        args: Tuple = (),
        name: Optional[str] = None,
    ):
        hint = name or "worker"
        if self.scheduler is not None:
            return _CoopThread(self, target, args, hint)
        return _RecordThread(self, target, args, hint)

    def access(self, location: str, write: bool = True) -> None:
        if self.scheduler is not None:
            self.scheduler.yield_point()
        self.tracer.accessed(self._tid(), location, write)

    def run(self, fn: Callable[[], object]):
        """Record mode: call ``fn``.  Controlled mode: run it as the
        root managed thread under the deterministic scheduler."""
        if self.scheduler is None:
            return fn()
        scheduler = self.scheduler

        def body():
            tid = scheduler.current()
            self.tracer.thread_begun(tid)
            try:
                return fn()
            finally:
                self.tracer.thread_finished(tid)

        return scheduler.run(body, hint="build-main")


# -- controlled-mode primitives (never block in the OS) --------------------


class _CoopLock:
    """Mutual exclusion by turn-taking: contenders park in the
    scheduler instead of the kernel."""

    def __init__(self, provider: InstrumentedSyncProvider, name: str) -> None:
        self._provider = provider
        self.name = name
        self._holder: Optional[str] = None

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        scheduler = self._provider.scheduler
        scheduler.yield_point()  # a schedule decision before every acquire
        tid = scheduler.current()
        if tid is None:
            raise RuntimeError(
                f"lock {self.name!r} used from an unmanaged thread under "
                "the cooperative scheduler"
            )
        while self._holder is not None:
            if not blocking:
                return False
            scheduler.block(("lock", self.name))
        self._holder = tid
        self._provider.tracer.acquired(tid, self.name)
        return True

    def release(self) -> None:
        tid = self._provider.scheduler.current()
        if self._holder != tid:
            raise RuntimeError(
                f"lock {self.name!r} released by {tid} but held by "
                f"{self._holder}"
            )
        self._provider.tracer.released(tid, self.name)
        self._holder = None
        self._provider.scheduler.wake(("lock", self.name))

    def locked(self) -> bool:
        return self._holder is not None

    def __enter__(self) -> "_CoopLock":
        self.acquire()
        return self

    def __exit__(self, *_exc) -> None:
        self.release()


class _CoopCondition:
    """Condition variable over a :class:`_CoopLock`."""

    def __init__(
        self, provider: InstrumentedSyncProvider, lock, name: str
    ) -> None:
        self._provider = provider
        self._lock = lock
        self.name = name

    def __enter__(self) -> "_CoopCondition":
        self._lock.acquire()
        return self

    def __exit__(self, *_exc) -> None:
        self._lock.release()

    def wait(self, timeout: Optional[float] = None) -> bool:
        provider = self._provider
        scheduler = provider.scheduler
        tid = scheduler.current()
        if self._lock._holder != tid:
            raise RuntimeError(
                f"condition {self.name!r} waited on without holding its lock"
            )
        provider.tracer.wait_begun(tid, self.name)
        self._lock.release()
        fired = scheduler.block(("cond", self.name), timed=timeout is not None)
        self._lock.acquire()
        if fired:
            provider.tracer.timed_out(tid, self.name)
            return False
        provider.tracer.woken(tid, self.name)
        return True

    def notify(self, n: int = 1) -> None:
        provider = self._provider
        provider.tracer.notified(provider._tid(), self.name, detail=f"n={n}")
        provider.scheduler.wake(("cond", self.name), limit=n)

    def notify_all(self) -> None:
        provider = self._provider
        provider.tracer.notified(provider._tid(), self.name, detail="all")
        provider.scheduler.wake(("cond", self.name))


class _CoopThread:
    """Managed thread: starts parked, runs only when granted the turn."""

    def __init__(
        self,
        provider: InstrumentedSyncProvider,
        target: Callable[..., None],
        args: Tuple,
        hint: str,
    ) -> None:
        self._provider = provider
        self._target = target
        self._args = args
        self._hint = hint
        self._tid: Optional[str] = None

    def start(self) -> None:
        provider = self._provider
        scheduler = provider.scheduler
        parent = scheduler.current()

        def body() -> None:
            tid = scheduler.current()
            provider.tracer.thread_begun(tid)
            try:
                self._target(*self._args)
            finally:
                provider.tracer.thread_finished(tid)

        # The new thread cannot run before this method returns: the
        # caller holds the scheduler turn until its next yield point,
        # so the fork edge below always precedes the child's first op.
        self._tid = scheduler.spawn(body, hint=self._hint)
        provider.tracer.thread_created(parent, self._tid)

    def join(self, timeout: Optional[float] = None) -> None:
        # Cooperative join; the deterministic scheduler has no wall
        # clock, so a join timeout is meaningless and ignored.
        scheduler = self._provider.scheduler
        scheduler.join_thread(self._tid)
        self._provider.tracer.thread_joined(scheduler.current(), self._tid)

    def is_alive(self) -> bool:
        return not self._provider.scheduler.is_finished(self._tid)


# -- record-mode primitives (real threading + tracing) ---------------------


class _RecordLock:
    """A real lock that records acquire/release with vector clocks."""

    def __init__(self, provider: InstrumentedSyncProvider, name: str) -> None:
        self._provider = provider
        self.name = name
        self._lock = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._lock.acquire(blocking, timeout)
        if ok:
            self._provider.tracer.acquired(self._provider._tid(), self.name)
        return ok

    def release(self) -> None:
        # Record before dropping the lock so the release clock is in
        # place when the next holder's acquire joins it.
        self._provider.tracer.released(self._provider._tid(), self.name)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "_RecordLock":
        self.acquire()
        return self

    def __exit__(self, *_exc) -> None:
        self.release()


class _RecordCondition:
    """A real condition over a :class:`_RecordLock`'s inner lock."""

    def __init__(
        self, provider: InstrumentedSyncProvider, lock: _RecordLock, name: str
    ) -> None:
        self._provider = provider
        self._ilock = lock
        self._cond = threading.Condition(lock._lock)
        self.name = name

    def __enter__(self) -> "_RecordCondition":
        self._ilock.acquire()
        return self

    def __exit__(self, *_exc) -> None:
        self._ilock.release()

    def wait(self, timeout: Optional[float] = None) -> bool:
        provider = self._provider
        tid = provider._tid()
        provider.tracer.wait_begun(tid, self.name)
        provider.tracer.released(tid, self._ilock.name)
        ok = self._cond.wait(timeout)
        provider.tracer.acquired(tid, self._ilock.name)
        if ok:
            provider.tracer.woken(tid, self.name)
            return True
        provider.tracer.timed_out(tid, self.name)
        return False

    def notify(self, n: int = 1) -> None:
        self._provider.tracer.notified(
            self._provider._tid(), self.name, detail=f"n={n}"
        )
        self._cond.notify(n)

    def notify_all(self) -> None:
        self._provider.tracer.notified(
            self._provider._tid(), self.name, detail="all"
        )
        self._cond.notify_all()


class _RecordThread:
    """A real thread that records fork/begin/end/join edges."""

    def __init__(
        self,
        provider: InstrumentedSyncProvider,
        target: Callable[..., None],
        args: Tuple,
        hint: str,
    ) -> None:
        self._provider = provider
        self._tid = provider._alloc_record_tid()

        def body() -> None:
            provider._names[threading.get_ident()] = self._tid
            provider.tracer.thread_begun(self._tid)
            try:
                target(*args)
            finally:
                provider.tracer.thread_finished(self._tid)

        self._thread = threading.Thread(
            target=body, name=f"{self._tid}:{hint}", daemon=True
        )

    def start(self) -> None:
        self._provider.tracer.thread_created(
            self._provider._tid(), self._tid
        )
        self._thread.start()

    def join(self, timeout: Optional[float] = None) -> None:
        self._thread.join(timeout)
        if not self._thread.is_alive():
            self._provider.tracer.thread_joined(
                self._provider._tid(), self._tid
            )

    def is_alive(self) -> bool:
        return self._thread.is_alive()
