"""A cooperative deterministic scheduler for the threaded engines.

Managed threads run on real OS threads, but only one holds the *turn*
at any moment: every instrumented sync point hands the turn back to the
driver, which asks a seeded :class:`Strategy` which runnable thread
goes next.  Because every scheduling decision is a pure function of the
seed and the (deterministic) program, a failing schedule is replayed by
rerunning the same seed — the whole point of the subsystem.

Blocking never reaches the OS: an instrumented lock or condition that
cannot proceed parks its thread with :meth:`CooperativeScheduler.block`
and the releaser/notifier re-marks it runnable.  When nothing is
runnable the scheduler either fires a pending *timed* wait (modelling a
timeout deterministically) or reports a :class:`DeadlockError` naming
every parked thread and what it waits for.
"""

from __future__ import annotations

import random
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

BlockReason = Tuple[str, str]  # (kind, resource), e.g. ("lock", "impl1...")


class DeadlockError(RuntimeError):
    """No thread can make progress; carries who waits on what."""

    def __init__(self, blocked: Dict[str, str]) -> None:
        self.blocked = blocked
        lines = ", ".join(f"{t} on {r}" for t, r in sorted(blocked.items()))
        super().__init__(f"deadlock: every live thread is parked ({lines})")


class ScheduleBudgetExceeded(RuntimeError):
    """The schedule ran past ``max_steps`` (livelock guard)."""


class Strategy:
    """Picks the next thread to run among the runnable ones.

    ``runnable`` is presented in thread-creation order, which is itself
    deterministic under the scheduler, so equal seeds yield equal
    schedules.
    """

    name = "strategy"

    def choose(self, runnable: Sequence[str], step: int) -> str:
        raise NotImplementedError


class RandomWalkStrategy(Strategy):
    """Uniformly random runnable thread at every step."""

    name = "random"

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def choose(self, runnable: Sequence[str], step: int) -> str:
        return runnable[self._rng.randrange(len(runnable))]


class PCTStrategy(Strategy):
    """Probabilistic Concurrency Testing (Burckhardt et al.).

    Each thread gets a random priority on first sight; the highest
    runnable priority always runs, except at ``depth - 1`` pre-sampled
    change points where the current leader is demoted below everyone.
    PCT finds bugs of depth *d* with provable probability, and it drives
    threads much deeper into lopsided schedules than a random walk.
    """

    name = "pct"

    def __init__(self, seed: int, depth: int = 3, horizon: int = 4000) -> None:
        self.seed = seed
        self.depth = depth
        self._rng = random.Random((seed << 4) ^ 0x5CEDC0DE)
        self._priorities: Dict[str, float] = {}
        self._demotion = 0.0
        count = max(0, min(depth - 1, horizon))
        self._change_points = frozenset(
            self._rng.sample(range(1, horizon + 1), count)
        )

    def choose(self, runnable: Sequence[str], step: int) -> str:
        for tid in runnable:
            if tid not in self._priorities:
                self._priorities[tid] = 1.0 + self._rng.random()
        pick = max(runnable, key=lambda t: self._priorities[t])
        if step in self._change_points:
            self._demotion -= 1.0
            self._priorities[pick] = self._demotion
        return pick


def make_strategy(name: str, seed: int, pct_depth: int = 3) -> Strategy:
    """Strategy factory used by the harness and CLI."""
    if name == "random":
        return RandomWalkStrategy(seed)
    if name == "pct":
        return PCTStrategy(seed, depth=pct_depth)
    raise ValueError(f"unknown schedule strategy {name!r}")


class _Managed:
    """Book-keeping for one managed thread."""

    __slots__ = ("tid", "hint", "semaphore", "state", "reason", "timed")

    def __init__(self, tid: str, hint: str) -> None:
        self.tid = tid
        self.hint = hint
        self.semaphore = threading.Semaphore(0)
        self.state = "runnable"  # runnable | blocked | finished
        self.reason: Optional[BlockReason] = None
        self.timed = False


class CooperativeScheduler:
    """Serializes managed threads and explores interleavings by seed."""

    def __init__(self, strategy: Strategy, max_steps: int = 400_000) -> None:
        self.strategy = strategy
        self.max_steps = max_steps
        self.steps = 0
        self.schedule_log: List[str] = []
        self._threads: Dict[str, _Managed] = {}
        self._order: List[str] = []
        self._idents: Dict[int, str] = {}
        self._driver = threading.Semaphore(0)
        self._results: Dict[str, Any] = {}
        self._errors: List[Tuple[str, BaseException]] = []
        self._timeout_fired: set = set()
        self._spawned = 0

    # -- identity ---------------------------------------------------------

    def current(self) -> Optional[str]:
        """The managed tid of the calling thread, if managed."""
        return self._idents.get(threading.get_ident())

    def _require_current(self) -> str:
        tid = self.current()
        if tid is None:
            raise RuntimeError(
                "instrumented primitive used from a thread the cooperative "
                "scheduler does not manage; create threads through the "
                "instrumented SyncProvider"
            )
        return tid

    def hint_for(self, tid: str) -> str:
        managed = self._threads.get(tid)
        return managed.hint if managed else tid

    # -- spawning ---------------------------------------------------------

    def spawn(self, fn: Callable[[], Any], hint: str = "") -> str:
        """Create a managed thread; it runs only when granted the turn."""
        tid = f"T{self._spawned}"
        self._spawned += 1
        managed = _Managed(tid, hint or tid)
        self._threads[tid] = managed
        self._order.append(tid)

        def body() -> None:
            self._idents[threading.get_ident()] = tid
            managed.semaphore.acquire()
            try:
                self._results[tid] = fn()
            except BaseException as exc:  # noqa: BLE001 - reported to driver
                self._errors.append((tid, exc))
            finally:
                self._finish(tid)

        thread = threading.Thread(target=body, name=tid, daemon=True)
        thread.start()
        return tid

    def _finish(self, tid: str) -> None:
        self._threads[tid].state = "finished"
        self._wake(("join", tid))
        self._driver.release()

    # -- managed-thread side ----------------------------------------------

    def yield_point(self) -> None:
        """Hand the turn back to the driver; resume when granted again."""
        tid = self.current()
        if tid is None:
            return  # unmanaged caller (record mode): nothing to do
        managed = self._threads[tid]
        self._driver.release()
        managed.semaphore.acquire()

    def block(self, reason: BlockReason, timed: bool = False) -> bool:
        """Park the calling thread until :meth:`_wake` (or a fired
        timeout) re-marks it runnable.  Returns True when woken by the
        deterministic timeout machinery."""
        tid = self._require_current()
        managed = self._threads[tid]
        managed.state = "blocked"
        managed.reason = reason
        managed.timed = timed
        self._driver.release()
        managed.semaphore.acquire()
        fired = tid in self._timeout_fired
        self._timeout_fired.discard(tid)
        return fired

    def _wake(self, reason: BlockReason, limit: Optional[int] = None) -> int:
        woken = 0
        for tid in self._order:
            if limit is not None and woken >= limit:
                break
            managed = self._threads[tid]
            if managed.state == "blocked" and managed.reason == reason:
                managed.state = "runnable"
                managed.reason = None
                managed.timed = False
                woken += 1
        return woken

    def wake(self, reason: BlockReason, limit: Optional[int] = None) -> int:
        """Re-mark threads parked on ``reason`` runnable (all, or the
        first ``limit`` in creation order).  Called by the running
        thread from instrumented release/notify paths."""
        return self._wake(reason, limit)

    def join_thread(self, target: str) -> None:
        """Cooperative join: park until ``target`` finishes."""
        while self._threads[target].state != "finished":
            self.block(("join", target))

    def is_finished(self, tid: str) -> bool:
        return self._threads[tid].state == "finished"

    # -- driver side -------------------------------------------------------

    def run(self, fn: Callable[[], Any], hint: str = "main") -> Any:
        """Run ``fn`` as the root managed thread, driving the schedule
        from the calling (unmanaged) thread until every managed thread
        finishes.  Re-raises the first managed-thread exception."""
        root = self.spawn(fn, hint)
        while True:
            live = [
                t for t in self._order
                if self._threads[t].state != "finished"
            ]
            if not live:
                break
            runnable = [
                t for t in live if self._threads[t].state == "runnable"
            ]
            if not runnable:
                timed = [t for t in live if self._threads[t].timed]
                if timed:
                    # Nothing can move: deterministically fire one timed
                    # wait (the strategy picks whose timeout expires).
                    victim = (
                        timed[0] if len(timed) == 1
                        else self.strategy.choose(timed, self.steps)
                    )
                    self._timeout_fired.add(victim)
                    self._wake(self._threads[victim].reason)  # type: ignore[arg-type]
                    continue
                raise DeadlockError(
                    {
                        t: (
                            f"{self._threads[t].reason} "
                            f"[{self._threads[t].hint}]"
                        )
                        for t in live
                    }
                )
            self.steps += 1
            if self.steps > self.max_steps:
                raise ScheduleBudgetExceeded(
                    f"schedule exceeded {self.max_steps} steps"
                )
            pick = (
                runnable[0] if len(runnable) == 1
                else self.strategy.choose(runnable, self.steps)
            )
            self.schedule_log.append(pick)
            self._threads[pick].semaphore.release()
            self._driver.acquire()
        if self._errors:
            _tid, error = self._errors[0]
            raise error
        return self._results.get(root)
