"""Raw-threading lint for engine code.

The schedule checker only sees synchronization that flows through the
:class:`~repro.concurrency.provider.SyncProvider` seam.  A raw
``threading.Lock()`` in engine code is invisible to it — silently
un-checked concurrency — so this lint fails the build when engine
modules construct threading primitives directly instead of asking their
provider.  Wired into CI next to the test run; also exposed as
``python -m repro.schedcheck.lint [paths...]``.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Sequence

# Constructors that create synchronization state behind the provider's
# back.  threading.current_thread / get_ident etc. are read-only and fine.
BANNED_CONSTRUCTS = frozenset(
    {
        "Lock",
        "RLock",
        "Condition",
        "Semaphore",
        "BoundedSemaphore",
        "Event",
        "Barrier",
        "Thread",
    }
)

# Engine modules must route ALL sync through self.sync.  The process
# backend is exempt: multiprocessing primitives are out of schedcheck's
# scope (separate address spaces, no shared memory to race on).
DEFAULT_TARGETS = (
    Path(__file__).resolve().parents[1] / "engine",
    Path(__file__).resolve().parents[1] / "concurrency",
)
EXEMPT_NAMES = frozenset({"procbackend.py", "pool.py", "provider.py"})


@dataclass(frozen=True)
class LintFinding:
    """One raw threading-primitive construction in checked code."""

    path: Path
    line: int
    construct: str

    def __str__(self) -> str:
        return (
            f"{self.path}:{self.line}: raw threading.{self.construct} — "
            "obtain it from the SyncProvider (self.sync) so schedcheck "
            "can instrument it"
        )


class _RawThreadingVisitor(ast.NodeVisitor):
    def __init__(self, path: Path) -> None:
        self.path = path
        self.findings: List[LintFinding] = []
        # Names that alias the threading module in this file.
        self._module_aliases = {"threading"}
        # Banned names imported directly (from threading import Lock).
        self._direct_names: dict = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "threading":
                self._module_aliases.add(alias.asname or "threading")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "threading":
            for alias in node.names:
                if alias.name in BANNED_CONSTRUCTS:
                    self._direct_names[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self._module_aliases
            and func.attr in BANNED_CONSTRUCTS
        ):
            self.findings.append(
                LintFinding(self.path, node.lineno, func.attr)
            )
        elif isinstance(func, ast.Name) and func.id in self._direct_names:
            self.findings.append(
                LintFinding(
                    self.path, node.lineno, self._direct_names[func.id]
                )
            )
        self.generic_visit(node)


def lint_file(path: Path) -> List[LintFinding]:
    """All raw threading constructions in one source file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    visitor = _RawThreadingVisitor(path)
    visitor.visit(tree)
    return visitor.findings


def lint_paths(paths: Iterable[Path]) -> List[LintFinding]:
    """Lint every ``.py`` under the given files/directories."""
    findings: List[LintFinding] = []
    for target in paths:
        if target.is_dir():
            files = sorted(target.rglob("*.py"))
        else:
            files = [target]
        for file in files:
            if file.name in EXEMPT_NAMES:
                continue
            findings.extend(lint_file(file))
    return findings


def main(argv: Sequence[str] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    targets = [Path(a) for a in args] if args else list(DEFAULT_TARGETS)
    findings = lint_paths(targets)
    for finding in findings:
        print(finding)
    if findings:
        print(f"raw-threading lint: {len(findings)} finding(s)")
        return 1
    checked = ", ".join(str(t) for t in targets)
    print(f"raw-threading lint: clean ({checked})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
