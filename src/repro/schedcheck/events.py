"""Trace vocabulary: synchronization events and shared-memory accesses.

Every instrumented operation appends one :class:`SyncEvent` to the
run's :class:`Trace`; engine ``sync.access(...)`` calls additionally
produce an :class:`Access` record carrying the clock snapshot the race
detector consumes.  Traces are plain data — replaying a seed produces
an event-for-event identical trace, which is what the determinism tests
assert.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple


class EventKind(enum.Enum):
    """What an instrumented operation did."""

    SPAWN = "spawn"          # parent created a worker thread
    BEGIN = "begin"          # thread body started
    END = "end"              # thread body finished
    JOIN = "join"            # joiner observed a thread's completion
    ACQUIRE = "acquire"      # lock (or condition lock) acquired
    RELEASE = "release"      # lock released
    WAIT = "wait"            # condition wait entered (lock dropped)
    WAKE = "wake"            # condition wait satisfied (lock retaken)
    NOTIFY = "notify"        # condition notified
    TIMEOUT = "timeout"      # timed condition wait expired
    ACCESS = "access"        # declared shared-memory access


@dataclass(frozen=True)
class SyncEvent:
    """One instrumented operation, stamped with the acting thread's
    vector clock *after* the operation's tick."""

    seq: int
    thread: str
    kind: EventKind
    resource: str
    clock: Dict[str, int]
    detail: str = ""

    def __str__(self) -> str:
        extra = f" ({self.detail})" if self.detail else ""
        return (
            f"#{self.seq:<5} {self.thread:<4} "
            f"{self.kind.value:<8} {self.resource}{extra}"
        )


@dataclass(frozen=True)
class Access:
    """One declared access to a shared location.

    ``epoch`` is the acting thread's own clock component at the access:
    a later access *B* saw this one happen-before it iff B's clock has
    ``B.clock[thread] >= epoch`` (the standard epoch shortcut).
    """

    seq: int
    thread: str
    location: str
    write: bool
    epoch: int
    clock: Dict[str, int]
    locks: FrozenSet[str]

    def __str__(self) -> str:
        mode = "write" if self.write else "read"
        held = ", ".join(sorted(self.locks)) or "no locks"
        return (
            f"#{self.seq} {self.thread} {mode} {self.location} "
            f"holding [{held}]"
        )


@dataclass
class Trace:
    """Append-only event log for one schedule/run."""

    events: List[SyncEvent] = field(default_factory=list)

    def add(
        self,
        thread: str,
        kind: EventKind,
        resource: str,
        clock: Dict[str, int],
        detail: str = "",
    ) -> SyncEvent:
        event = SyncEvent(
            seq=len(self.events),
            thread=thread,
            kind=kind,
            resource=resource,
            clock=clock,
            detail=detail,
        )
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def tail(self, n: int = 30) -> List[SyncEvent]:
        """The last ``n`` events (for failure reports)."""
        return self.events[-n:]

    def signature(self) -> List[Tuple[str, str, str]]:
        """The schedule-identity projection (thread, kind, resource) —
        two runs of the same seed must produce equal signatures."""
        return [
            (e.thread, e.kind.value, e.resource) for e in self.events
        ]
