"""``python -m repro.schedcheck`` == the ``repro-schedcheck`` CLI."""

from repro.schedcheck.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
