"""Schedule exploration harness for the threaded engines.

Glues the pieces together: build a small deterministic corpus, run an
engine under the cooperative scheduler with a seeded strategy, run the
race/inversion detectors over the trace, and compare the finished index
byte-for-byte against the sequential build (RIDX1 is canonical, so the
differential oracle is plain ``bytes.__eq__``).

:func:`explore` sweeps a seed range; :func:`run_schedule` runs (or
replays) exactly one seed.  :class:`UnlockedSyncProvider` is the
built-in mutation: it hands selected locks out as no-ops, which the
race detector must then catch — the self-test that the checker checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.corpus.generator import CorpusGenerator
from repro.corpus.profiles import CorpusProfile
from repro.engine.config import ThreadConfig
from repro.engine.impl1 import SharedLockedIndexer
from repro.engine.impl1_sharded import ShardedLockedIndexer
from repro.engine.impl2 import ReplicatedJoinedIndexer
from repro.engine.impl3 import ReplicatedUnjoinedIndexer
from repro.engine.sequential import SequentialIndexer
from repro.index.inverted import InvertedIndex
from repro.index.merge import join_indices
from repro.index.multi import MultiIndex
from repro.index.serialize import index_to_bytes
from repro.index.sharded import ShardedInvertedIndex
from repro.schedcheck.detector import (
    LockInversion,
    Race,
    find_lock_inversions,
    find_races,
)
from repro.schedcheck.scheduler import (
    CooperativeScheduler,
    DeadlockError,
    ScheduleBudgetExceeded,
    make_strategy,
)
from repro.schedcheck.sync import InstrumentedSyncProvider
from repro.schedcheck.tracer import Tracer

ENGINES = {
    "impl1": SharedLockedIndexer,
    "impl1s": ShardedLockedIndexer,
    "impl2": ReplicatedJoinedIndexer,
    "impl3": ReplicatedUnjoinedIndexer,
}

# Sensible (x, y, z) defaults per engine for CLI runs.
DEFAULT_CONFIGS = {
    "impl1": (3, 1, 0),
    "impl1s": (3, 1, 0),
    "impl2": (3, 2, 1),
    "impl3": (3, 2, 0),
}

STRATEGIES = ("random", "pct", "mixed")


def make_corpus(file_count: int = 10, seed: int = 7):
    """A small deterministic virtual corpus for schedule exploration.

    Schedule count beats corpus size for finding interleaving bugs, so
    the default is tiny: every extra file multiplies the sync events in
    *every* explored schedule.
    """
    profile = CorpusProfile(
        name="schedcheck",
        file_count=file_count,
        total_bytes=max(400 * file_count, 2_000),
        large_file_count=2,
        directory_fanout=3,
        files_per_directory=4,
        vocabulary_size=150,
        seed=seed,
    )
    return CorpusGenerator(profile).generate().fs


def flatten_index(index) -> InvertedIndex:
    """Any engine's output as one plain :class:`InvertedIndex`."""
    if isinstance(index, MultiIndex):
        return join_indices(index.replicas)
    if isinstance(index, ShardedInvertedIndex):
        return index.to_inverted_index()
    return index


def canonical_bytes(index) -> bytes:
    """The canonical RIDX1 encoding of any engine's output."""
    return index_to_bytes(flatten_index(index))


def sequential_reference(fs) -> bytes:
    """The oracle: the sequential (en-bloc) build, canonically encoded."""
    report = SequentialIndexer(fs, naive=False).build()
    return canonical_bytes(report.index)


class UnlockedSyncProvider(InstrumentedSyncProvider):
    """Mutation provider: selected locks become no-ops.

    A broken lock records *no* tracer events — real lock events would
    add happens-before edges and mask the very race the mutation is
    meant to expose.  It still yields at each acquire so the scheduler
    can interleave the now-unprotected critical sections.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        scheduler: Optional[CooperativeScheduler] = None,
        break_locks: Sequence[str] = (),
    ) -> None:
        super().__init__(tracer=tracer, scheduler=scheduler)
        self.break_locks = tuple(break_locks)

    def lock(self, name: str = "lock"):
        if any(pattern in name for pattern in self.break_locks):
            return _BrokenLock(self, name)
        return super().lock(name)


class _BrokenLock:
    """Grants every acquire immediately and forgets every release."""

    def __init__(self, provider: InstrumentedSyncProvider, name: str) -> None:
        self._provider = provider
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if self._provider.scheduler is not None:
            self._provider.scheduler.yield_point()
        return True

    def release(self) -> None:
        pass

    def locked(self) -> bool:
        return False

    def __enter__(self) -> "_BrokenLock":
        self.acquire()
        return self

    def __exit__(self, *_exc) -> None:
        pass


@dataclass
class ScheduleRun:
    """The outcome of one engine build under one explored schedule."""

    engine: str
    config: ThreadConfig
    seed: int
    strategy: str
    ok: bool
    error: Optional[str]
    races: List[Race]
    inversions: List[LockInversion]
    matches_reference: Optional[bool]
    steps: int
    event_count: int
    digest: Optional[bytes] = None
    tracer: Optional[Tracer] = None
    schedule: Optional[List[str]] = None

    @property
    def clean(self) -> bool:
        """Build finished, no races, no inversions, index matches."""
        return (
            self.ok
            and not self.races
            and not self.inversions
            and self.matches_reference is not False
        )

    def describe(self) -> str:
        verdict = "clean" if self.clean else "FAIL"
        parts = [
            f"{self.engine} {self.config} seed={self.seed} "
            f"strategy={self.strategy}: {verdict} "
            f"({self.steps} steps, {self.event_count} events)"
        ]
        if self.error:
            parts.append(f"  error: {self.error}")
        for race in self.races:
            parts.append("  " + str(race).replace("\n", "\n  "))
        for inversion in self.inversions:
            parts.append(f"  {inversion}")
        if self.matches_reference is False:
            parts.append("  index differs from the sequential reference")
        return "\n".join(parts)


def strategy_for(seed: int, strategy: str) -> str:
    """Resolve ``mixed`` to a concrete per-seed strategy."""
    if strategy == "mixed":
        return "random" if seed % 2 == 0 else "pct"
    return strategy


def run_schedule(
    engine: str,
    config: ThreadConfig,
    fs,
    seed: int,
    strategy: str = "random",
    pct_depth: int = 3,
    expected: Optional[bytes] = None,
    max_steps: int = 200_000,
    keep_trace: bool = False,
    provider_factory: Optional[
        Callable[[Tracer, CooperativeScheduler], InstrumentedSyncProvider]
    ] = None,
) -> ScheduleRun:
    """Build once under the deterministic schedule derived from ``seed``.

    Rerunning with identical arguments replays the identical schedule —
    this function *is* the replay mechanism.
    """
    concrete = strategy_for(seed, strategy)
    tracer = Tracer()
    scheduler = CooperativeScheduler(
        make_strategy(concrete, seed, pct_depth=pct_depth),
        max_steps=max_steps,
    )
    if provider_factory is None:
        provider = InstrumentedSyncProvider(tracer=tracer, scheduler=scheduler)
    else:
        provider = provider_factory(tracer, scheduler)
    indexer = ENGINES[engine](fs, sync=provider)

    ok, error, digest, matches = True, None, None, None
    try:
        report = provider.run(lambda: indexer.build(config))
    except (DeadlockError, ScheduleBudgetExceeded) as exc:
        ok, error = False, f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # noqa: BLE001 - schedule outcome, not a crash
        ok, error = False, f"{type(exc).__name__}: {exc}"
    else:
        digest = canonical_bytes(report.index)
        if expected is not None:
            matches = digest == expected

    races = find_races(tracer)
    inversions = find_lock_inversions(tracer)
    return ScheduleRun(
        engine=engine,
        config=config,
        seed=seed,
        strategy=concrete,
        ok=ok,
        error=error,
        races=races,
        inversions=inversions,
        matches_reference=matches,
        steps=scheduler.steps,
        event_count=len(tracer.trace),
        digest=digest,
        tracer=tracer if keep_trace else None,
        schedule=list(scheduler.schedule_log) if keep_trace else None,
    )


@dataclass
class ExplorationReport:
    """Aggregate outcome of a seed sweep."""

    engine: str
    config: ThreadConfig
    strategy: str
    runs: List[ScheduleRun] = field(default_factory=list)

    @property
    def failures(self) -> List[ScheduleRun]:
        return [run for run in self.runs if not run.clean]

    @property
    def clean(self) -> bool:
        return not self.failures

    @property
    def total_steps(self) -> int:
        return sum(run.steps for run in self.runs)

    def summary(self) -> str:
        status = "clean" if self.clean else f"{len(self.failures)} FAILING"
        return (
            f"{self.engine} {self.config}: {len(self.runs)} schedules "
            f"({self.strategy}), {self.total_steps} scheduling decisions, "
            f"{status}"
        )


def explore(
    engine: str,
    config: ThreadConfig,
    seeds: Sequence[int],
    fs=None,
    strategy: str = "mixed",
    pct_depth: int = 3,
    file_count: int = 10,
    max_steps: int = 200_000,
    stop_on_failure: bool = False,
) -> ExplorationReport:
    """Run one engine/config under every seed and check each outcome."""
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; choose from {sorted(ENGINES)}"
        )
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {STRATEGIES}"
        )
    if fs is None:
        fs = make_corpus(file_count=file_count)
    expected = sequential_reference(fs)
    report = ExplorationReport(engine=engine, config=config, strategy=strategy)
    for seed in seeds:
        run = run_schedule(
            engine,
            config,
            fs,
            seed,
            strategy=strategy,
            pct_depth=pct_depth,
            expected=expected,
            max_steps=max_steps,
        )
        report.runs.append(run)
        if stop_on_failure and not run.clean:
            break
    return report


def parse_seed_range(text: str) -> Tuple[int, int]:
    """``"0:200"`` -> (0, 200); a bare ``"7"`` means the single seed 7."""
    if ":" in text:
        lo_text, hi_text = text.split(":", 1)
        lo, hi = int(lo_text), int(hi_text)
    else:
        lo = int(text)
        hi = lo + 1
    if hi <= lo:
        raise ValueError(f"empty seed range {text!r}")
    return lo, hi
