"""Vector-clocked bookkeeping behind the instrumented sync layer.

The tracer owns, per run:

* one vector clock per thread, advanced on every instrumented op;
* per-lock "last release" clocks — an acquire joins the previous
  release, which is exactly the happens-before edge locking creates;
* per-condition "notify" clocks — a woken waiter joins the accumulated
  notifier clock (a sound over-approximation: it can only create extra
  happens-before edges, so it never fabricates a race);
* thread fork/finish/join edges;
* the :class:`~repro.schedcheck.events.Trace` of events, the list of
  :class:`~repro.schedcheck.events.Access` records, and the lock-order
  edges the inversion checker consumes.

All mutation happens under one internal mutex, so the same tracer works
in record mode (free-running OS threads) and in controlled mode (where
the cooperative scheduler serializes callers anyway).  This module is
part of the instrumented layer itself and therefore uses ``threading``
directly.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set, Tuple

from repro.schedcheck.events import Access, EventKind, Trace
from repro.schedcheck.vectorclock import VectorClock


class Tracer:
    """Happens-before bookkeeping for one schedule/run."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self.trace = Trace()
        self.accesses: List[Access] = []
        self._clocks: Dict[str, VectorClock] = {}
        self._release_clocks: Dict[str, VectorClock] = {}
        self._notify_clocks: Dict[str, VectorClock] = {}
        self._finish_clocks: Dict[str, VectorClock] = {}
        # Locks currently held per thread, in acquisition order.
        self._held: Dict[str, List[str]] = {}
        # (outer lock, inner lock) -> first witnessing event seq.
        self.lock_order_edges: Dict[Tuple[str, str], int] = {}

    # -- clock plumbing --------------------------------------------------

    def _clock(self, tid: str) -> VectorClock:
        clock = self._clocks.get(tid)
        if clock is None:
            clock = VectorClock()
            clock.tick(tid)
            self._clocks[tid] = clock
        return clock

    def _event(
        self, tid: str, kind: EventKind, resource: str, detail: str = ""
    ) -> None:
        self.trace.add(
            tid, kind, resource, self._clock(tid).as_dict(), detail
        )

    # -- thread lifecycle ------------------------------------------------

    def thread_created(self, parent: Optional[str], child: str) -> None:
        """Fork edge: the child starts with the parent's knowledge."""
        with self._mutex:
            child_clock = VectorClock()
            if parent is not None:
                parent_clock = self._clock(parent)
                parent_clock.tick(parent)
                child_clock.join(parent_clock)
            child_clock.tick(child)
            self._clocks[child] = child_clock
            self._held.setdefault(child, [])
            if parent is not None:
                self._event(parent, EventKind.SPAWN, child)

    def thread_begun(self, tid: str) -> None:
        with self._mutex:
            self._event(tid, EventKind.BEGIN, tid)

    def thread_finished(self, tid: str) -> None:
        with self._mutex:
            clock = self._clock(tid)
            clock.tick(tid)
            self._finish_clocks[tid] = clock.copy()
            self._event(tid, EventKind.END, tid)

    def thread_joined(self, joiner: str, target: str) -> None:
        """Join edge: the joiner learns everything the target did."""
        with self._mutex:
            clock = self._clock(joiner)
            clock.join(self._finish_clocks.get(target))
            clock.tick(joiner)
            self._event(joiner, EventKind.JOIN, target)

    # -- locks -----------------------------------------------------------

    def acquired(self, tid: str, resource: str) -> None:
        with self._mutex:
            clock = self._clock(tid)
            clock.join(self._release_clocks.get(resource))
            clock.tick(tid)
            held = self._held.setdefault(tid, [])
            for outer in held:
                if outer != resource:
                    self.lock_order_edges.setdefault(
                        (outer, resource), len(self.trace)
                    )
            held.append(resource)
            self._event(tid, EventKind.ACQUIRE, resource)

    def released(self, tid: str, resource: str) -> None:
        with self._mutex:
            clock = self._clock(tid)
            clock.tick(tid)
            self._release_clocks[resource] = clock.copy()
            held = self._held.setdefault(tid, [])
            if resource in held:
                held.remove(resource)
            self._event(tid, EventKind.RELEASE, resource)

    # -- condition variables ---------------------------------------------

    def wait_begun(self, tid: str, resource: str) -> None:
        with self._mutex:
            clock = self._clock(tid)
            clock.tick(tid)
            self._event(tid, EventKind.WAIT, resource)

    def notified(self, tid: str, resource: str, detail: str = "") -> None:
        with self._mutex:
            clock = self._clock(tid)
            clock.tick(tid)
            accumulated = self._notify_clocks.setdefault(
                resource, VectorClock()
            )
            accumulated.join(clock)
            self._event(tid, EventKind.NOTIFY, resource, detail)

    def woken(self, tid: str, resource: str) -> None:
        with self._mutex:
            clock = self._clock(tid)
            clock.join(self._notify_clocks.get(resource))
            clock.tick(tid)
            self._event(tid, EventKind.WAKE, resource)

    def timed_out(self, tid: str, resource: str) -> None:
        with self._mutex:
            clock = self._clock(tid)
            clock.tick(tid)
            self._event(tid, EventKind.TIMEOUT, resource)

    # -- shared-memory accesses -------------------------------------------

    def accessed(self, tid: str, location: str, write: bool) -> None:
        with self._mutex:
            clock = self._clock(tid)
            clock.tick(tid)
            access = Access(
                seq=len(self.trace),
                thread=tid,
                location=location,
                write=write,
                epoch=clock.get(tid),
                clock=clock.as_dict(),
                locks=frozenset(self._held.get(tid, ())),
            )
            self.accesses.append(access)
            self._event(
                tid,
                EventKind.ACCESS,
                location,
                detail="write" if write else "read",
            )

    # -- introspection ----------------------------------------------------

    def threads(self) -> Set[str]:
        with self._mutex:
            return set(self._clocks)
