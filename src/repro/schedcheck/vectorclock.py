"""Vector clocks over string thread ids.

The tracer stamps every synchronization event and shared-memory access
with the acting thread's vector clock; the race detector then decides
"did A happen before B?" with a component comparison instead of
replaying the schedule.  Clocks are sparse dicts — most builds involve
a handful of threads, and a missing component means 0.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional


class VectorClock:
    """A sparse ``thread id -> logical time`` mapping."""

    __slots__ = ("_clock",)

    def __init__(self, clock: Optional[Mapping[str, int]] = None) -> None:
        self._clock: Dict[str, int] = dict(clock or {})

    def tick(self, tid: str) -> None:
        """Advance ``tid``'s own component by one."""
        self._clock[tid] = self._clock.get(tid, 0) + 1

    def join(self, other: Optional["VectorClock"]) -> None:
        """Component-wise maximum (in place); ``None`` is a no-op."""
        if other is None:
            return
        for tid, value in other._clock.items():
            if value > self._clock.get(tid, 0):
                self._clock[tid] = value

    def get(self, tid: str) -> int:
        """The component for ``tid`` (0 if never seen)."""
        return self._clock.get(tid, 0)

    def copy(self) -> "VectorClock":
        return VectorClock(self._clock)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._clock)

    def dominates(self, other: "VectorClock") -> bool:
        """True when every component of ``other`` is <= this clock —
        i.e. ``other`` happened before (or equals) this clock."""
        return all(
            value <= self._clock.get(tid, 0)
            for tid, value in other._clock.items()
        )

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither clock dominates the other."""
        return not self.dominates(other) and not other.dominates(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self.dominates(other) and other.dominates(self)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{tid}:{v}" for tid, v in sorted(self._clock.items())
        )
        return f"VC({inner})"
