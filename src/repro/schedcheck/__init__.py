"""Deterministic schedule exploration and race checking.

The threaded engines (:mod:`repro.engine`) obtain every lock,
condition, buffer, barrier and worker thread from a
:class:`~repro.concurrency.provider.SyncProvider`.  This package
substitutes an instrumented provider to

* record every synchronization operation with vector clocks,
* detect data races (happens-before) and lock-order inversions,
* serialize the build under a cooperative scheduler that explores
  interleavings from a seed (random walks and PCT priorities) and
  replays any seed exactly, and
* assert that every explored schedule produces an index byte-identical
  to the sequential build.

Entry points: the ``repro-schedcheck`` CLI (:mod:`repro.schedcheck.cli`)
and :func:`repro.schedcheck.harness.explore`.
"""

from repro.schedcheck.detector import (
    LockInversion,
    Race,
    find_lock_inversions,
    find_races,
)
from repro.schedcheck.harness import (
    DEFAULT_CONFIGS,
    ENGINES,
    ExplorationReport,
    ScheduleRun,
    UnlockedSyncProvider,
    explore,
    make_corpus,
    run_schedule,
    sequential_reference,
)
from repro.schedcheck.scheduler import (
    CooperativeScheduler,
    DeadlockError,
    PCTStrategy,
    RandomWalkStrategy,
    ScheduleBudgetExceeded,
    make_strategy,
)
from repro.schedcheck.sync import InstrumentedSyncProvider
from repro.schedcheck.tracer import Tracer
from repro.schedcheck.vectorclock import VectorClock

__all__ = [
    "CooperativeScheduler",
    "DEFAULT_CONFIGS",
    "DeadlockError",
    "ENGINES",
    "ExplorationReport",
    "InstrumentedSyncProvider",
    "LockInversion",
    "PCTStrategy",
    "Race",
    "RandomWalkStrategy",
    "ScheduleBudgetExceeded",
    "ScheduleRun",
    "Tracer",
    "UnlockedSyncProvider",
    "VectorClock",
    "explore",
    "find_lock_inversions",
    "find_races",
    "make_corpus",
    "make_strategy",
    "run_schedule",
    "sequential_reference",
]
