"""The unified public API: one ``Search`` session end to end.

Historically this package grew one entry point per subsystem: engines
behind :class:`~repro.engine.runner.IndexGenerator`, persistence split
across four save/load functions, querying split between
:class:`~repro.query.evaluator.QueryEngine`,
:class:`~repro.query.cache.CachingQueryEngine` and
:class:`~repro.index.incremental.IncrementalIndexer`.  :class:`Search`
folds that into a single session object::

    from repro import Search

    session = Search.build("~/documents", config=ThreadConfig(3, 2, 0))
    hits = session.query("cat AND dog")         # typed QueryResult
    session.refresh()                           # incremental delta
    session.save("documents.ridx")              # format sniffed back on open
    service = session.serve(workers=4)          # long-running SearchService

Every knob is a keyword on one constructor:
:class:`~repro.engine.config.ThreadConfig` picks the engine and
backend, :class:`~repro.engine.faults.FaultPolicy` the error/retry
behaviour, ``cache`` the LRU result-cache capacity.  The historical
entry points keep working (the top-level legacy names re-export with a
``DeprecationWarning``; see ``docs/api.md`` for the migration table).

Sessions are single-writer: ``query`` may race against ``refresh``
only through :meth:`Search.serve`, whose
:class:`~repro.service.service.SearchService` isolates readers on
immutable snapshots.
"""

from __future__ import annotations

import os
import time
from typing import List, Optional, Union

from repro.engine.config import Implementation, ThreadConfig
from repro.engine.faults import FaultPolicy
from repro.engine.results import BuildReport
from repro.engine.runner import IndexGenerator
from repro.engine.sequential import SequentialIndexer
from repro.fsmodel.realfs import OsFileSystem
from repro.index.incremental import (
    ChangeReport,
    IncrementalIndex,
    IncrementalIndexer,
    Snapshot,
    take_snapshot,
)
from repro.index.inverted import InvertedIndex
from repro.index.merge import join_indices
from repro.index.multi import MultiIndex
from repro.index.serialize import load_index, load_multi_index, save_index
from repro.query.cache import QueryCache, cache_key
from repro.query.evaluator import QueryEngine
from repro.query.optimizer import optimize
from repro.query.parser import parse_query
from repro.service.service import SearchService
from repro.service.snapshot import IndexSnapshot, QueryResult


def _flatten(index: Union[InvertedIndex, MultiIndex]) -> InvertedIndex:
    """Any engine's output as one single index (joins replicas)."""
    if isinstance(index, MultiIndex):
        return join_indices(index.replicas)
    if hasattr(index, "to_inverted_index"):
        return index.to_inverted_index()
    return index


def _as_filesystem(source):
    """A path becomes an :class:`~repro.fsmodel.realfs.OsFileSystem`;
    anything implementing ``list_files``/``read_file`` passes through."""
    if isinstance(source, (str, os.PathLike)):
        return OsFileSystem(os.fspath(source))
    return source


class Search:
    """One desktop-search session: build, query, refresh, save, serve.

    Construct through :meth:`build` (index a filesystem) or
    :meth:`open` (load a saved index).  The session keeps a single
    flattened :class:`~repro.index.inverted.InvertedIndex` plus the
    per-document store that makes incremental refresh possible, a
    result cache, and a generation counter that bumps on every index
    change.
    """

    def __init__(
        self,
        incremental: IncrementalIndex,
        *,
        fs=None,
        root: str = "",
        fingerprint: Optional[Snapshot] = None,
        generation: int = 0,
        provenance: str = "build",
        report: Optional[BuildReport] = None,
        implementation: Optional[Implementation] = None,
        config: Optional[ThreadConfig] = None,
        fault: Optional[FaultPolicy] = None,
        cache: int = 128,
        tokenizer=None,
        registry=None,
        sync=None,
    ) -> None:
        self._incremental = incremental
        self._fs = fs
        self._root = root
        self._fingerprint: Snapshot = dict(fingerprint or {})
        self._generation = generation
        self._provenance = provenance
        self._report = report
        self._implementation = implementation
        self._config = config
        self._fault = fault or FaultPolicy()
        self._tokenizer = tokenizer
        self._registry = registry
        self._sync = sync
        self._cache = QueryCache(cache, sync=sync) if cache else None
        self._engine = self._make_engine()

    # -- constructors -----------------------------------------------------

    @classmethod
    def build(
        cls,
        source,
        *,
        implementation: Optional[Implementation] = None,
        config: Optional[ThreadConfig] = None,
        fault: Optional[FaultPolicy] = None,
        cache: int = 128,
        tokenizer=None,
        registry=None,
        root: str = "",
        sync=None,
    ) -> "Search":
        """Index ``source`` (a directory path or a filesystem object).

        ``config=None`` runs the sequential en-bloc build; otherwise
        ``config.backend`` and ``implementation`` select any of the
        threaded or multiprocessing engines (defaults: Implementation 3
        on threads, Implementation 2 on the process backend).
        ``fault`` applies the per-file error policy and, for the
        process backend, the retry/timeout ladder.
        """
        fs = _as_filesystem(source)
        fault = fault or FaultPolicy()
        # Fingerprint first: a file modified while the build runs is
        # then seen as changed by the next refresh, never silently lost.
        fingerprint = take_snapshot(fs, root)
        if config is None:
            report = SequentialIndexer(
                fs,
                tokenizer=tokenizer,
                naive=False,
                registry=registry,
                on_error=fault.on_error,
            ).build(root)
        else:
            if implementation is None:
                implementation = (
                    Implementation.REPLICATED_JOINED
                    if config.backend == "process"
                    else Implementation.REPLICATED_UNJOINED
                )
            config.validate_for(implementation)
            report = IndexGenerator(
                fs,
                tokenizer=tokenizer,
                registry=registry,
                on_error=fault.on_error,
                max_retries=fault.max_retries,
                batch_timeout=fault.batch_timeout,
                sync=sync,
            ).build(implementation, config, root)
        incremental = IncrementalIndex.from_inverted(_flatten(report.index))
        return cls(
            incremental,
            fs=fs,
            root=root,
            fingerprint=fingerprint,
            provenance="build",
            report=report,
            implementation=implementation,
            config=config,
            fault=fault,
            cache=cache,
            tokenizer=tokenizer,
            registry=registry,
            sync=sync,
        )

    @classmethod
    def open(
        cls,
        path: str,
        *,
        source=None,
        cache: int = 128,
        tokenizer=None,
        registry=None,
        root: str = "",
        sync=None,
    ) -> "Search":
        """Load a saved index (any format, sniffed; replica directories
        join).  Pass ``source`` — the indexed directory or filesystem —
        to re-enable :meth:`refresh`; the first refresh reconciles the
        index against the live filesystem state.
        """
        if os.path.isdir(path):
            index = _flatten(load_multi_index(path))
        else:
            index = load_index(path)
        incremental = IncrementalIndex.from_inverted(index)
        return cls(
            incremental,
            fs=_as_filesystem(source) if source is not None else None,
            root=root,
            provenance="open",
            cache=cache,
            tokenizer=tokenizer,
            registry=registry,
            sync=sync,
        )

    # -- reading ----------------------------------------------------------

    @property
    def index(self) -> InvertedIndex:
        """The session's current (flattened) index.  Treat as frozen:
        refresh and rebuild replace it rather than mutate it."""
        return self._incremental.index

    @property
    def generation(self) -> int:
        """Bumps by one on every refresh/rebuild."""
        return self._generation

    @property
    def report(self) -> Optional[BuildReport]:
        """The build report behind the current index (None after open)."""
        return self._report

    @property
    def universe(self) -> List[str]:
        """All indexed paths."""
        return self._incremental.document_paths()

    def __len__(self) -> int:
        return len(self._incremental)

    def query(self, query_text: str, parallel: bool = False) -> QueryResult:
        """Evaluate a boolean/wildcard/phrase query; memoized in the
        session's LRU cache (normalized on the optimized AST)."""
        started = time.perf_counter()
        if self._cache is not None:
            key = cache_key(self._normalize(query_text), parallel)
            hit = self._cache.get(key)
            if hit is not None:
                return QueryResult(
                    paths=hit,
                    generation=self._generation,
                    elapsed_s=time.perf_counter() - started,
                    cached=True,
                )
        paths = self._engine.search(query_text, parallel=parallel)
        if self._cache is not None:
            self._cache.put(key, paths)
        return QueryResult(
            paths=paths,
            generation=self._generation,
            elapsed_s=time.perf_counter() - started,
        )

    # -- updating ---------------------------------------------------------

    def refresh(self) -> ChangeReport:
        """Apply the filesystem delta; returns what changed.

        The update runs on a *clone* of the index and the session flips
        to the clone when it is complete, so a previously served
        snapshot (see :meth:`serve`) never observes a half-applied
        delta.  A session opened from disk reconciles on first refresh:
        the saved index is diffed against the live filesystem.
        """
        fs = self._require_fs("refresh")
        clone = self._incremental.clone()
        if not self._fingerprint and len(clone):
            change, fingerprint = self._reconcile(clone)
        else:
            indexer = IncrementalIndexer(
                fs,
                tokenizer=self._tokenizer,
                registry=self._registry,
                root=self._root,
                index=clone,
                snapshot=self._fingerprint,
            )
            change = indexer.refresh()
            fingerprint = indexer.snapshot
        if change.total == 0:
            # Nothing changed: keep the published index and the warm
            # cache; just remember the fingerprint (it is freshly
            # verified, and the reconcile path starts with none).
            self._fingerprint = dict(fingerprint)
            return change
        self._adopt(clone, fingerprint, "refresh")
        return change

    def rebuild(self) -> BuildReport:
        """Re-run the original full build against the live filesystem.

        The alternative update path to :meth:`refresh` for when the
        corpus changed wholesale; uses the engine, config and fault
        policy the session was built with.
        """
        fs = self._require_fs("rebuild")
        rebuilt = Search.build(
            fs,
            implementation=self._implementation,
            config=self._config,
            fault=self._fault,
            cache=0,
            tokenizer=self._tokenizer,
            registry=self._registry,
            root=self._root,
            sync=self._sync,
        )
        self._report = rebuilt.report
        self._adopt(rebuilt._incremental, rebuilt._fingerprint, "rebuild")
        return rebuilt.report

    def save(self, path: str, format: str = "auto") -> int:
        """Persist the index; returns bytes written.  ``format="auto"``
        writes binary for ``.ridx``/``.bin`` paths, JSON-lines else."""
        return save_index(self._incremental.index, path, format=format)

    # -- serving ----------------------------------------------------------

    def snapshot(self) -> IndexSnapshot:
        """The session's current state as an immutable snapshot."""
        return IndexSnapshot(
            index=self._incremental.index,
            generation=self._generation,
            provenance=self._provenance,
            universe=frozenset(self._incremental.document_paths()),
            report=self._report,
        )

    def serve(
        self,
        workers: int = 2,
        max_inflight: int = 32,
        shed: str = "reject",
        sync=None,
    ) -> SearchService:
        """A :class:`~repro.service.service.SearchService` over this
        session.  The service's refresher runs :meth:`refresh` and
        publishes the resulting index, so ``service.refresh()`` (or
        ``--watch``) updates readers with one atomic swap."""
        refresher = None
        if self._fs is not None:

            def refresher():
                change = self.refresh()
                return (
                    self._incremental.index,
                    frozenset(self._incremental.document_paths()),
                    self._report,
                    change,
                )

        return SearchService(
            self.snapshot(),
            refresher=refresher,
            workers=workers,
            max_inflight=max_inflight,
            shed=shed,
            sync=sync if sync is not None else self._sync,
        )

    # -- internals --------------------------------------------------------

    def _make_engine(self) -> QueryEngine:
        return QueryEngine(
            self._incremental.index,
            universe=self._incremental.document_paths(),
        )

    def _adopt(
        self, incremental: IncrementalIndex, fingerprint: Snapshot, why: str
    ) -> None:
        """Flip the session to a fully constructed replacement index."""
        self._incremental = incremental
        self._fingerprint = dict(fingerprint)
        self._generation += 1
        self._provenance = why
        self._engine = self._make_engine()
        if self._cache is not None:
            self._cache.clear()

    def _reconcile(self, clone: IncrementalIndex):
        """First refresh after :meth:`open`: diff index vs filesystem.

        There is no stored fingerprint to diff against, so every live
        file is re-extracted and compared against the per-document
        store; files on disk but not in the index are added, indexed
        paths gone from disk are removed, and documents whose term set
        changed are updated.
        """
        fs = self._fs
        fingerprint = take_snapshot(fs, self._root)
        helper = IncrementalIndexer(
            fs,
            tokenizer=self._tokenizer,
            registry=self._registry,
            root=self._root,
            index=clone,
        )
        change = ChangeReport()
        indexed = set(clone.document_paths())
        for path in sorted(fingerprint):
            block = helper._extract(path)
            if path in indexed:
                old = clone._documents.get(path)
                if set(old.terms) != set(block.terms):
                    clone.update(block)
                    change.modified.append(path)
            else:
                clone.add(block)
                change.added.append(path)
        for path in sorted(indexed - set(fingerprint)):
            clone.remove(path)
            change.removed.append(path)
        return change, fingerprint

    def _require_fs(self, operation: str):
        if self._fs is None:
            raise ValueError(
                f"this session cannot {operation}: it was opened from a "
                "saved index without source=; pass Search.open(path, "
                "source=directory) to re-attach the filesystem"
            )
        return self._fs

    @staticmethod
    def _normalize(query_text: str) -> str:
        """Canonical cache key: the optimized AST, stringified."""
        return str(optimize(parse_query(query_text)))

    def __repr__(self) -> str:
        return (
            f"Search(files={len(self)}, generation={self._generation}, "
            f"provenance={self._provenance!r})"
        )
