"""The unified public API: one ``Search`` session end to end.

Historically this package grew one entry point per subsystem: engines
behind :class:`~repro.engine.runner.IndexGenerator`, persistence split
across four save/load functions, querying split between
:class:`~repro.query.evaluator.QueryEngine`,
:class:`~repro.query.cache.CachingQueryEngine` and
:class:`~repro.index.incremental.IncrementalIndexer`.  :class:`Search`
folds that into a single session object::

    from repro import Search

    session = Search.build("~/documents", config=ThreadConfig(3, 2, 0))
    hits = session.query("cat AND dog")         # typed QueryResult
    session.refresh()                           # incremental delta
    session.compact()                           # fold segments back to one
    session.save("documents.ridx")              # format sniffed back on open
    service = session.serve(workers=4)          # long-running SearchService
    frontend = session.serve_async(workers=4)   # batched/coalescing front end

Every knob is a keyword on one constructor:
:class:`~repro.engine.config.ThreadConfig` picks the engine and
backend, :class:`~repro.engine.faults.FaultPolicy` the error/retry
behaviour, ``cache`` the LRU result-cache capacity.  The historical
entry points keep working (the top-level legacy names re-export with a
``DeprecationWarning``; see ``docs/api.md`` for the migration table).

Since the segmented-index rework the session's source of truth is an
immutable :class:`~repro.index.segments.SegmentManifest` maintained by
a :class:`~repro.index.segments.SegmentedIndexer`: ``refresh()`` seals
the filesystem delta into a new segment (reading only changed files),
deletions become tombstones, and :meth:`compact` (or a
:meth:`start_compactor` background thread) folds segments back down
with layered k-way merges.  Queries evaluate directly over the
manifest; :attr:`index` materializes a flat
:class:`~repro.index.inverted.InvertedIndex` on demand (cached per
generation) for persistence and legacy callers.

Sessions allow one writer at a time: ``refresh``/``rebuild``/``compact``
serialize on an internal lock (so a background compactor never races a
refresh), and ``query`` may race against ``refresh`` only through
:meth:`Search.serve`, whose
:class:`~repro.service.service.SearchService` isolates readers on
immutable snapshots.
"""

from __future__ import annotations

import os
import time
from typing import List, Optional, Union

from repro.engine.config import Implementation, ThreadConfig
from repro.engine.faults import FaultPolicy
from repro.engine.results import BuildReport
from repro.engine.runner import IndexGenerator
from repro.engine.sequential import SequentialIndexer
from repro.extract.registry import resolve_extractor
from repro.fsmodel.realfs import OsFileSystem
from repro.index.incremental import ChangeReport
from repro.index.inverted import InvertedIndex
from repro.index.merge import join_indices
from repro.index.multi import MultiIndex
from repro.index.segments import (
    BackgroundCompactor,
    CompactionPolicy,
    SegmentedIndexer,
    SegmentManifest,
)
from repro.index.serialize import load_index, load_multi_index, save_index
from repro.query.cache import QueryCache, cache_key, normalize_query
from repro.query.evaluator import QueryEngine
from repro.service.frontend import AsyncSearchFrontend
from repro.service.service import SearchService
from repro.service.snapshot import IndexSnapshot, QueryResult


def _flatten(index: Union[InvertedIndex, MultiIndex]) -> InvertedIndex:
    """Any engine's output as one single index (joins replicas)."""
    if isinstance(index, MultiIndex):
        return join_indices(index.replicas)
    if hasattr(index, "to_inverted_index"):
        return index.to_inverted_index()
    return index


def _as_filesystem(source):
    """A path becomes an :class:`~repro.fsmodel.realfs.OsFileSystem`;
    anything implementing ``list_files``/``read_file`` passes through."""
    if isinstance(source, (str, os.PathLike)):
        return OsFileSystem(os.fspath(source))
    return source


class Search:
    """One desktop-search session: build, query, refresh, compact, serve.

    Construct through :meth:`build` (index a filesystem) or
    :meth:`open` (load a saved index).  The session keeps a segmented
    index manifest plus the fingerprint map that makes incremental
    refresh O(delta), a result cache, and a generation counter that
    bumps on every index change.
    """

    def __init__(
        self,
        segmented: SegmentedIndexer,
        *,
        fs=None,
        root: str = "",
        generation: int = 0,
        provenance: str = "build",
        report: Optional[BuildReport] = None,
        implementation: Optional[Implementation] = None,
        config: Optional[ThreadConfig] = None,
        fault: Optional[FaultPolicy] = None,
        cache: int = 128,
        tokenizer=None,
        registry=None,
        sync=None,
        extractor=None,
        split_threshold: Optional[int] = None,
    ) -> None:
        self._segmented = segmented
        self._fs = fs
        self._root = root
        self._generation = generation
        self._provenance = provenance
        self._report = report
        self._implementation = implementation
        self._config = config
        self._fault = fault or FaultPolicy()
        # One extraction seam (see repro.extract): the session resolves
        # extractor=/tokenizer=/registry= once and hands the Extractor
        # to every engine it constructs, so the deprecated kwargs keep
        # working here without tripping the engines' warnings.
        self._extractor = resolve_extractor(extractor, tokenizer, registry)
        self._tokenizer = self._extractor.tokenizer
        self._registry = self._extractor.registry
        self._split_threshold = split_threshold
        self._sync = sync
        if sync is None:
            from repro.concurrency.provider import THREADING_SYNC

            sync_provider = THREADING_SYNC
        else:
            sync_provider = sync
        self._write_lock = sync_provider.lock("search.write-lock")
        self._cache = QueryCache(cache, sync=sync) if cache else None
        self._index_cache: Optional[InvertedIndex] = None
        self._index_cache_generation = -1
        self._engine = self._make_engine()

    # -- constructors -----------------------------------------------------

    @classmethod
    def build(
        cls,
        source,
        *,
        implementation: Optional[Implementation] = None,
        config: Optional[ThreadConfig] = None,
        fault: Optional[FaultPolicy] = None,
        cache: int = 128,
        tokenizer=None,
        registry=None,
        root: str = "",
        segment_dir: Optional[str] = None,
        sync=None,
        extractor=None,
        split_threshold: Optional[int] = None,
    ) -> "Search":
        """Index ``source`` (a directory path or a filesystem object).

        ``config=None`` runs the sequential en-bloc build; otherwise
        ``config.backend`` and ``implementation`` select any of the
        threaded or multiprocessing engines (defaults: Implementation 3
        on threads, Implementation 2 on the process backend).
        ``fault`` applies the per-file error policy and, for the
        process backend, the retry/timeout ladder.  ``segment_dir``
        makes compaction write its product as an RIDX2 file served off
        mmap instead of keeping it in memory.  ``extractor`` picks the
        extraction pipeline — an :class:`~repro.extract.Extractor`
        instance or a registered name (``"ascii"``, ``"code"``,
        ``"tsv"``); ``split_threshold`` makes parallel builds chunk
        files larger than that many bytes across workers (see
        ``docs/extraction.md``).
        """
        fs = _as_filesystem(source)
        fault = fault or FaultPolicy()
        extractor = resolve_extractor(extractor, tokenizer, registry)
        segmented = SegmentedIndexer(
            fs,
            extractor=extractor,
            root=root,
            segment_dir=segment_dir,
        )
        # Fingerprint first: a file modified while the build runs is
        # then seen as changed by the next refresh, never silently lost.
        fingerprints = segmented.fingerprint_corpus()
        if config is None:
            report = SequentialIndexer(
                fs,
                naive=False,
                on_error=fault.on_error,
                extractor=extractor,
            ).build(root)
        else:
            if implementation is None:
                implementation = (
                    Implementation.REPLICATED_JOINED
                    if config.backend == "process"
                    else Implementation.REPLICATED_UNJOINED
                )
            config.validate_for(implementation)
            report = IndexGenerator(
                fs,
                on_error=fault.on_error,
                max_retries=fault.max_retries,
                batch_timeout=fault.batch_timeout,
                sync=sync,
                extractor=extractor,
                split_threshold=split_threshold,
            ).build(implementation, config, root)
        segmented.adopt(_flatten(report.index), fingerprints)
        return cls(
            segmented,
            fs=fs,
            root=root,
            provenance="build",
            report=report,
            implementation=implementation,
            config=config,
            fault=fault,
            cache=cache,
            sync=sync,
            extractor=extractor,
            split_threshold=split_threshold,
        )

    @classmethod
    def open(
        cls,
        path: str,
        *,
        source=None,
        cache: int = 128,
        tokenizer=None,
        registry=None,
        root: str = "",
        segment_dir: Optional[str] = None,
        sync=None,
        extractor=None,
        split_threshold: Optional[int] = None,
    ) -> "Search":
        """Load a saved index (any format, sniffed; replica directories
        join).  Pass ``source`` — the indexed directory or filesystem —
        to re-enable :meth:`refresh`; the first refresh reconciles the
        index against the live filesystem state.
        """
        if os.path.isdir(path):
            index = _flatten(load_multi_index(path))
        else:
            index = load_index(path)
        fs = _as_filesystem(source) if source is not None else None
        extractor = resolve_extractor(extractor, tokenizer, registry)
        segmented = SegmentedIndexer(
            fs,
            extractor=extractor,
            root=root,
            segment_dir=segment_dir,
        )
        segmented.adopt(index, {})
        return cls(
            segmented,
            fs=fs,
            root=root,
            provenance="open",
            cache=cache,
            sync=sync,
            extractor=extractor,
            split_threshold=split_threshold,
        )

    # -- reading ----------------------------------------------------------

    @property
    def manifest(self) -> SegmentManifest:
        """The immutable segment manifest behind the session."""
        return self._segmented.manifest

    @property
    def index(self) -> InvertedIndex:
        """The session's current state, flattened into one index.

        Materialized from the manifest on demand and cached until the
        next index change.  Treat as frozen: refresh, rebuild and
        compact replace it rather than mutate it.
        """
        if self._index_cache_generation != self._generation:
            self._index_cache = self._segmented.manifest.materialize()
            self._index_cache_generation = self._generation
        return self._index_cache

    @property
    def generation(self) -> int:
        """Bumps by one on every refresh/rebuild/compaction."""
        return self._generation

    @property
    def report(self) -> Optional[BuildReport]:
        """The build report behind the current index (None after open)."""
        return self._report

    @property
    def universe(self) -> List[str]:
        """All indexed paths."""
        return self._segmented.manifest.document_paths()

    def __len__(self) -> int:
        return len(self._segmented.manifest)

    def query(self, query_text: str, parallel: bool = False) -> QueryResult:
        """Evaluate a boolean/wildcard/phrase query; memoized in the
        session's LRU cache (normalized on the optimized AST)."""
        started = time.perf_counter()
        if self._cache is not None:
            key = cache_key(self._normalize(query_text), parallel)
            hit = self._cache.get(key)
            if hit is not None:
                return QueryResult(
                    paths=hit,
                    generation=self._generation,
                    elapsed_s=time.perf_counter() - started,
                    cached=True,
                )
        paths = self._engine.search(query_text, parallel=parallel)
        if self._cache is not None:
            self._cache.put(key, paths)
        return QueryResult(
            paths=paths,
            generation=self._generation,
            elapsed_s=time.perf_counter() - started,
        )

    # -- updating ---------------------------------------------------------

    def refresh(self) -> ChangeReport:
        """Apply the filesystem delta; returns what changed.

        The scan stats only changed files (unchanged size+mtime files
        are never opened), seals the delta into a new immutable segment
        and tombstones removals — the manifest swap is the last step,
        so a previously served snapshot (see :meth:`serve`) never
        observes a half-applied delta and a crashed refresh replays
        cleanly.  A session opened from disk reconciles on first
        refresh: the saved index is diffed against the live filesystem.
        """
        self._require_fs("refresh")
        with self._write_lock:
            segmented = self._segmented
            if not segmented.fingerprints and len(segmented.manifest):
                change = segmented.reconcile()
            else:
                change = segmented.refresh()
            if change.total == 0:
                # Nothing changed: keep the published view and the warm
                # cache; the freshly verified fingerprints are already
                # recorded by the indexer.
                return change
            self._bump("refresh")
        return change

    def rebuild(self) -> BuildReport:
        """Re-run the original full build against the live filesystem.

        The alternative update path to :meth:`refresh` for when the
        corpus changed wholesale; uses the engine, config and fault
        policy the session was built with.
        """
        fs = self._require_fs("rebuild")
        rebuilt = Search.build(
            fs,
            implementation=self._implementation,
            config=self._config,
            fault=self._fault,
            cache=0,
            extractor=self._extractor,
            split_threshold=self._split_threshold,
            root=self._root,
            segment_dir=self._segmented.segment_dir,
            sync=self._sync,
        )
        with self._write_lock:
            self._report = rebuilt.report
            self._segmented = rebuilt._segmented
            self._bump("rebuild")
        return rebuilt.report

    def compact(
        self,
        policy: Optional[CompactionPolicy] = None,
        workers: int = 0,
        force: bool = True,
    ) -> bool:
        """Fold the manifest's segments back down with k-way merges.

        ``workers > 0`` runs the merge groups on the fault-tolerant
        process pool (:class:`~repro.engine.procbackend.
        CompactionExecutor`); otherwise they run in-process.  With
        ``force=False`` the ``policy`` decides whether compaction is
        due (the background-compactor mode).  Returns whether a
        compaction ran.  Queries are unaffected either way: the live
        view of a compacted manifest is identical, only its shape
        changes.
        """
        executor = None
        if workers:
            from repro.engine.procbackend import CompactionExecutor

            executor = CompactionExecutor(max_workers=workers)
        with self._write_lock:
            ran = self._segmented.compact(
                policy=policy, executor=executor, force=force
            )
            if ran:
                self._bump("compact")
        return ran

    def start_compactor(
        self,
        interval_s: float = 5.0,
        policy: Optional[CompactionPolicy] = None,
        workers: int = 0,
        sync=None,
    ) -> BackgroundCompactor:
        """Run :meth:`compact` periodically on a background thread.

        The compactor checks ``policy`` every ``interval_s`` seconds
        and compacts only when due; it shares the session's write lock
        with :meth:`refresh`, so the two writers serialize.  Call
        ``stop()`` on the returned handle to shut it down.
        """
        policy = policy or CompactionPolicy()
        compactor = BackgroundCompactor(
            lambda: self.compact(policy=policy, workers=workers, force=False),
            interval_s=interval_s,
            sync=sync if sync is not None else self._sync,
        )
        return compactor.start()

    def save(self, path: str, format: str = "auto") -> int:
        """Persist the index; returns bytes written.  ``format="auto"``
        writes binary for ``.ridx``/``.bin`` paths, JSON-lines else."""
        return save_index(self.index, path, format=format)

    # -- serving ----------------------------------------------------------

    def snapshot(self) -> IndexSnapshot:
        """The session's current state as an immutable snapshot.

        The snapshot wraps the segment manifest directly — manifests
        are immutable, so snapshot isolation needs no copying at all.
        """
        manifest = self._segmented.manifest
        return IndexSnapshot(
            index=manifest,
            generation=self._generation,
            provenance=self._provenance,
            universe=manifest.live_paths(),
            report=self._report,
        )

    def serve(
        self,
        workers: int = 2,
        max_inflight: int = 32,
        shed: str = "reject",
        sync=None,
    ) -> SearchService:
        """A :class:`~repro.service.service.SearchService` over this
        session.  The service's refresher runs :meth:`refresh` and
        publishes the resulting manifest, so ``service.refresh()`` (or
        ``--watch``) updates readers with one atomic pointer swap."""
        refresher = None
        if self._fs is not None:

            def refresher():
                change = self.refresh()
                manifest = self._segmented.manifest
                return (
                    manifest,
                    manifest.live_paths(),
                    self._report,
                    change,
                )

        return SearchService(
            self.snapshot(),
            refresher=refresher,
            workers=workers,
            max_inflight=max_inflight,
            shed=shed,
            sync=sync if sync is not None else self._sync,
        )

    def serve_async(
        self,
        workers: int = 2,
        max_inflight: int = 32,
        batch_window: float = 0.0,
        single_flight: bool = True,
        stage_workers: int = 1,
        sync=None,
    ) -> AsyncSearchFrontend:
        """An :class:`~repro.service.frontend.AsyncSearchFrontend` over
        this session: single-flight coalescing of duplicate in-flight
        queries, batched admission (one snapshot load per burst), and
        pipelined parse → plan → evaluate stages, with an awaitable
        ``query_async`` face.  The frontend owns its backing
        :class:`~repro.service.service.SearchService` (built via
        :meth:`serve`), so one ``close()`` — or leaving the context
        manager — shuts both down.  ``workers`` are the evaluation
        threads; admission happens at the frontend, so the service
        keeps one worker only for direct ``service.query`` callers.
        """
        service = self.serve(
            workers=1, max_inflight=max_inflight, sync=sync
        )
        return AsyncSearchFrontend(
            service,
            batch_window=batch_window,
            single_flight=single_flight,
            workers=workers,
            stage_workers=stage_workers,
            max_inflight=max_inflight,
            own_service=True,
            sync=sync if sync is not None else self._sync,
        )

    def serve_sharded(
        self,
        shards: int = 2,
        replicas: int = 1,
        strategy: str = "roundrobin",
        partial: str = "degrade",
        workers: int = 1,
        max_inflight: int = 32,
        shed: str = "reject",
        bm25: bool = False,
        backend: str = "local",
        ridx2_dir: Optional[str] = None,
        sync=None,
    ):
        """Document-partitioned serving: N shards behind a
        scatter-gather broker.

        The corpus is partitioned by document (``strategy`` picks the
        ``distribute/`` partitioner: ``"roundrobin"`` or
        ``"sizebalanced"``), each shard serves its slice from its own
        :class:`~repro.service.service.SearchService` (× ``replicas``
        for failover/throughput), and the returned
        :class:`~repro.service.sharded.ScatterGatherBroker` fans every
        query out and merges: boolean results byte-identical to the
        unsharded engine, BM25 a heap-merge over shard-local statistics
        (``docs/sharded.md`` has the scoring contract).  ``partial``
        picks the dead-shard policy (``"degrade"`` answers from live
        shards with a ``shards_ok/shards_total`` health tuple;
        ``"fail"`` raises).  ``bm25=True`` builds the per-shard
        frequency sidecars (needs the session's filesystem) so
        ``rank="bm25"`` works.  ``backend="process"`` spawns one OS
        process per replica serving RIDX2 off mmap (``ridx2_dir``
        defaults to a temp directory); ``backend="local"`` keeps shards
        in-process (in-memory, or off mmap when ``ridx2_dir`` is set).

        The sharded topology is immutable — built from this session's
        current state; rebuild and re-serve to pick up changes.  For
        coalescing *before* fan-out, seat a frontend on the broker:
        ``AsyncSearchFrontend(broker, own_service=True)``.
        """
        from repro.query.ranking import FrequencyIndex
        from repro.service.sharded import build_sharded_service

        frequencies = None
        if bm25:
            fs = self._require_fs("serve sharded BM25 (frequency sidecar)")
            frequencies = FrequencyIndex.from_fs(
                fs,
                extractor=self._extractor,
                root=self._root,
            )
        if backend == "process" and ridx2_dir is None:
            import tempfile

            ridx2_dir = tempfile.mkdtemp(prefix="repro-shards-")
        return build_sharded_service(
            self.index,
            self._segmented.manifest.live_paths(),
            shards=shards,
            replicas=replicas,
            strategy=strategy,
            partial=partial,
            frequencies=frequencies,
            workers=workers,
            max_inflight=max_inflight,
            shed=shed,
            sync=sync if sync is not None else self._sync,
            generation=self._generation,
            ridx2_dir=ridx2_dir,
            backend=backend,
        )

    # -- internals --------------------------------------------------------

    def _make_engine(self) -> QueryEngine:
        manifest = self._segmented.manifest
        return QueryEngine(manifest, universe=manifest.document_paths())

    def _bump(self, why: str) -> None:
        """Advance the session past an index change (caller holds the
        write lock)."""
        self._generation += 1
        self._provenance = why
        self._engine = self._make_engine()
        if self._cache is not None:
            self._cache.clear()

    def _require_fs(self, operation: str):
        if self._fs is None:
            raise ValueError(
                f"this session cannot {operation}: it was opened from a "
                "saved index without source=; pass Search.open(path, "
                "source=directory) to re-attach the filesystem"
            )
        return self._fs

    @staticmethod
    def _normalize(query_text: str) -> str:
        """Canonical cache key: the optimized AST, stringified."""
        return normalize_query(query_text)

    def __repr__(self) -> str:
        return (
            f"Search(files={len(self)}, generation={self._generation}, "
            f"provenance={self._provenance!r}, "
            f"segments={self._segmented.manifest.segment_count})"
        )
