"""Immutable index snapshots and typed query results.

A :class:`IndexSnapshot` freezes everything a query needs — the index,
the universe of indexed paths (for ``NOT``), the generation number and
the provenance of the build — behind one object that is never mutated
after construction.  :class:`~repro.service.service.SearchService`
publishes a *new* snapshot for every update and swaps one reference;
queries in flight keep the snapshot they started with, which is the
whole snapshot-isolation story.

The index behind a snapshot need not live in memory:
:meth:`IndexSnapshot.from_ondisk` wraps an
:class:`~repro.index.ondisk.MmapPostingsReader` with a
:class:`~repro.query.daat.DaatQueryEngine`, so a service can serve the
same query language straight off an mmap'd RIDX2 file.  An mmap'd file
is immutable by construction, which is snapshot isolation for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Union

from repro.index.inverted import InvertedIndex
from repro.index.multi import MultiIndex
from repro.query.evaluator import QueryEngine

AnyIndex = Union[InvertedIndex, MultiIndex]


def universe_of(index: AnyIndex) -> FrozenSet[str]:
    """Every indexed path, collected by transposing the postings."""
    paths = set()
    replicas = index.replicas if isinstance(index, MultiIndex) else [index]
    for replica in replicas:
        for _term, postings in replica.items():
            paths.update(postings)
    return frozenset(paths)


@dataclass(frozen=True)
class IndexSnapshot:
    """One immutable published state of the index.

    ``generation`` increases by exactly one per publish; ``provenance``
    says where the snapshot came from (``"build"``, ``"refresh"``,
    ``"open"``, ...).  ``report`` optionally carries the
    :class:`~repro.engine.results.BuildReport` that produced the index.
    The snapshot owns its :class:`~repro.query.evaluator.QueryEngine`;
    callers must treat the index as frozen once it is wrapped here.
    """

    index: AnyIndex
    generation: int = 0
    provenance: str = "build"
    universe: Optional[FrozenSet[str]] = None
    report: object = None
    engine: QueryEngine = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.universe is None:
            object.__setattr__(self, "universe", universe_of(self.index))
        if self.engine is None:
            object.__setattr__(
                self, "engine", QueryEngine(self.index, universe=self.universe)
            )

    @classmethod
    def from_ondisk(
        cls,
        reader,
        generation: int = 0,
        provenance: str = "ondisk",
    ) -> "IndexSnapshot":
        """A snapshot served straight off an mmap'd RIDX2 file.

        ``reader`` is an :class:`~repro.index.ondisk.MmapPostingsReader`;
        the snapshot's engine is a DAAT evaluator over its block
        cursors, so queries never materialize postings.  The reader
        doubles as the ``index`` (it speaks ``lookup``/``terms``); the
        universe comes from the file's doc table, giving ``NOT`` the
        same complement the in-memory engine would compute.
        """
        from repro.query.daat import DaatQueryEngine

        return cls(
            index=reader,
            generation=generation,
            provenance=provenance,
            universe=frozenset(reader.doc_paths()),
            engine=DaatQueryEngine(reader),
        )

    def search(self, query_text: str, parallel: bool = False) -> List[str]:
        """Evaluate ``query_text`` against this snapshot only."""
        return self.engine.search(query_text, parallel=parallel)

    def search_bm25(self, query_text: str, topk: int = 10) -> list:
        """BM25 top-``topk`` against this snapshot; needs a scoring
        engine (the on-disk DAAT path, or any engine exposing
        ``search_bm25``)."""
        if not hasattr(self.engine, "search_bm25"):
            raise ValueError(
                "this snapshot's engine cannot rank; open the index "
                "on-disk (IndexSnapshot.from_ondisk) for BM25"
            )
        return self.engine.search_bm25(query_text, topk=topk)

    def next(
        self,
        index: AnyIndex,
        provenance: str,
        universe: Optional[FrozenSet[str]] = None,
        report: object = None,
    ) -> "IndexSnapshot":
        """The successor snapshot (generation + 1) holding ``index``."""
        return IndexSnapshot(
            index=index,
            generation=self.generation + 1,
            provenance=provenance,
            universe=universe,
            report=report,
        )

    def describe(self) -> str:
        return (
            f"generation {self.generation} ({self.provenance}): "
            f"{len(self.universe)} files"
        )


@dataclass(frozen=True)
class QueryResult:
    """What a query returns: the hits plus where and when they came from.

    ``generation`` names the exact snapshot the query was evaluated
    against — concurrent updates never mix into a result, so callers
    can assert every result matches exactly one generation.  Ranked
    queries additionally carry their scored ``hits``
    (:class:`~repro.query.ranking.RankedHit` entries, score-descending);
    ``paths`` then lists the same documents in hit order.

    ``coalesced`` marks a result delivered by single-flight coalescing
    (:class:`~repro.service.frontend.AsyncSearchFrontend`): the paths,
    hits and generation are the leader's evaluation, but ``elapsed_s``
    is this caller's own wait.

    ``shards_ok``/``shards_total`` are the health tuple of a
    scatter-gathered result
    (:class:`~repro.service.sharded.ScatterGatherBroker`): how many
    shards answered out of how many exist.  ``shards_ok <
    shards_total`` marks a *degraded* result — correct over the live
    shards' documents, silent about the dead ones' (``partial=
    "degrade"``).  Both are ``None`` for unsharded results.
    """

    paths: List[str]
    generation: int
    elapsed_s: float = 0.0
    cached: bool = False
    hits: Optional[list] = None
    coalesced: bool = False
    shards_ok: Optional[int] = None
    shards_total: Optional[int] = None

    @property
    def degraded(self) -> bool:
        """True when some shards were dead at evaluation time."""
        return (
            self.shards_ok is not None
            and self.shards_total is not None
            and self.shards_ok < self.shards_total
        )

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self):
        return iter(self.paths)

    def __contains__(self, path: str) -> bool:
        return path in self.paths
