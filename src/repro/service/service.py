"""The always-on query service: thread pool, atomic swap, admission.

:class:`SearchService` is the broker between query traffic and index
maintenance:

* **readers never block on writers** — a query loads the current
  :class:`~repro.service.snapshot.IndexSnapshot` reference under a
  short snapshot lock and then evaluates entirely against that object;
  an update builds the next snapshot off to the side and publishes it
  with one reference assignment under the same lock.  Both sides go
  through the :class:`~repro.concurrency.provider.SyncProvider` seam
  and declare their accesses, so the schedule checker can sweep the
  swap/read interleavings and the race detector watches the swap;
* **admission control** — at most ``max_inflight`` queries may be
  queued or executing.  Beyond that the service sheds
  (:class:`ServiceOverloadedError`, policy ``"reject"``, the default)
  or makes the caller wait for a slot (policy ``"block"``).  The queue
  depth and in-flight count are published as gauges;
* **graceful shutdown** — :meth:`SearchService.close` stops admission,
  lets the workers drain every accepted query, then joins them.

Updates arrive either through :meth:`SearchService.publish` (hand in a
freshly built index) or :meth:`SearchService.refresh` (invoke the
configured refresher, e.g. an incremental delta computed by
:meth:`repro.api.Search.refresh`); ``start_watch`` runs refresh on a
period in a background thread, which is what ``repro-cli serve
--watch`` drives.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, FrozenSet, List, Optional, Tuple

from repro.obs import recorder as obsrec
from repro.service.snapshot import AnyIndex, IndexSnapshot, QueryResult

SHED_POLICIES: Tuple[str, ...] = ("reject", "block")


class ServiceOverloadedError(RuntimeError):
    """The in-flight bound is reached and the policy is ``"reject"``."""


class ServiceClosedError(RuntimeError):
    """The service no longer admits queries (shutdown has begun)."""


@dataclass(frozen=True)
class RefreshOutcome:
    """What one service refresh published."""

    generation: int
    change: object = None

    def __str__(self) -> str:
        text = f"published generation {self.generation}"
        if self.change is not None:
            text += f" ({self.change})"
        return text


class _Job:
    """One admitted query waiting for a worker."""

    __slots__ = ("text", "parallel", "rank", "topk", "done", "result", "error")

    def __init__(
        self, text: str, parallel: bool, rank: str = "bool", topk: int = 10
    ) -> None:
        self.text = text
        self.parallel = parallel
        self.rank = rank
        self.topk = topk
        self.done = False
        self.result: Optional[QueryResult] = None
        self.error: Optional[BaseException] = None


class SearchService:
    """Serves concurrent queries from a pool against the live snapshot.

    ``refresher`` is an optional zero-argument callable that computes
    the next index off-line and returns it — either a bare index or a
    ``(index, universe, report)`` tuple (trailing elements optional).
    :meth:`refresh` invokes it and publishes the outcome atomically.
    """

    def __init__(
        self,
        snapshot: IndexSnapshot,
        refresher: Optional[Callable[[], object]] = None,
        workers: int = 2,
        max_inflight: int = 32,
        shed: str = "reject",
        sync=None,
        name: str = "service",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be at least 1, got {max_inflight}"
            )
        if shed not in SHED_POLICIES:
            raise ValueError(
                f"shed must be one of {SHED_POLICIES}, got {shed!r}"
            )
        if sync is None:
            from repro.concurrency.provider import THREADING_SYNC

            sync = THREADING_SYNC
        self.name = name
        self.max_inflight = max_inflight
        self.shed = shed
        self._sync = sync
        self._refresher = refresher

        # The swap seam: one lock guards exactly one reference.  Readers
        # hold it for a pointer load, the publisher for a pointer store;
        # query evaluation happens entirely outside it.
        self._snap_lock = sync.lock(f"{name}.snapshot-lock")
        self._snapshot = snapshot

        # Admission state: queue + in-flight budget under one lock.
        self._lock = sync.lock(f"{name}.state-lock")
        self._work = sync.condition(self._lock, f"{name}.work-cond")
        self._done = sync.condition(self._lock, f"{name}.done-cond")
        self._queue: Deque[_Job] = deque()
        self._inflight = 0
        self._closing = False
        self._served = 0
        self._shed_count = 0

        # One refresh at a time, and one snapshot succession at a time:
        # without the publish lock two concurrent publishers could both
        # read generation N and fight over who becomes N + 1.
        self._refresh_lock = sync.lock(f"{name}.refresh-lock")
        self._publish_lock = sync.lock(f"{name}.publish-lock")

        self._watch_cond = sync.condition(self._lock, f"{name}.watch-cond")
        self._watch_stop = False
        self._watch_thread = None

        obsrec.metrics().gauge(f"{name}.generation").set(snapshot.generation)
        self._workers = [
            sync.thread(self._worker_loop, name=f"{name}-worker-{i}")
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- the read side ----------------------------------------------------

    @property
    def snapshot(self) -> IndexSnapshot:
        """The currently published snapshot (atomic reference load)."""
        with self._snap_lock:
            self._sync.access(f"{self.name}.snapshot", write=False)
            return self._snapshot

    @property
    def generation(self) -> int:
        return self.snapshot.generation

    def query(
        self,
        query_text: str,
        parallel: bool = False,
        rank: str = "bool",
        topk: int = 10,
    ) -> QueryResult:
        """Admit, enqueue and wait for one query; returns typed hits.

        ``rank="bm25"`` asks the snapshot for BM25 top-``topk`` instead
        of the plain boolean match (the result then carries scored
        ``hits``); it needs a ranking-capable snapshot, e.g. one opened
        via :meth:`IndexSnapshot.from_ondisk`.  Raises
        :class:`ServiceOverloadedError` when the in-flight bound is hit
        under the ``"reject"`` policy and :class:`ServiceClosedError`
        once shutdown has begun.
        """
        if rank not in ("bool", "bm25"):
            raise ValueError(f"rank must be 'bool' or 'bm25', got {rank!r}")
        metrics = obsrec.metrics()
        with self._lock:
            if self._closing:
                raise ServiceClosedError(f"{self.name} is shut down")
            if self._inflight >= self.max_inflight:
                if self.shed == "reject":
                    self._shed_count += 1
                    metrics.counter(f"{self.name}.shed").inc()
                    raise ServiceOverloadedError(
                        f"{self.name}: {self._inflight} queries in flight "
                        f"(bound {self.max_inflight})"
                    )
                while self._inflight >= self.max_inflight:
                    if self._closing:
                        raise ServiceClosedError(f"{self.name} is shut down")
                    self._done.wait()
                # Re-check after the slot wait: close() may have begun
                # while we were blocked, and the workers only drain jobs
                # enqueued *before* shutdown.  Enqueueing now would hang
                # this caller forever (nothing would ever run the job).
                # A blocked-then-admitted (or blocked-then-closed) query
                # is never counted as shed: it was never rejected.
                if self._closing:
                    raise ServiceClosedError(f"{self.name} is shut down")
            job = _Job(query_text, parallel, rank=rank, topk=topk)
            self._queue.append(job)
            self._inflight += 1
            metrics.counter(f"{self.name}.queries").inc()
            metrics.gauge(f"{self.name}.queue_depth").set(len(self._queue))
            metrics.gauge(f"{self.name}.inflight").set(self._inflight)
            self._work.notify()
            while not job.done:
                self._done.wait()
        if job.error is not None:
            raise job.error
        return job.result

    # -- the write side ---------------------------------------------------

    def publish(
        self,
        index: AnyIndex,
        provenance: str = "publish",
        universe: Optional[FrozenSet[str]] = None,
        report: object = None,
    ) -> IndexSnapshot:
        """Build the successor snapshot and swap it in atomically.

        The (potentially expensive) snapshot construction — universe
        transposition, engine setup — happens before the lock; the
        critical section is one reference store.
        """
        with obsrec.span(f"{self.name}.publish", provenance=provenance):
            with self._publish_lock:
                with self._snap_lock:
                    self._sync.access(f"{self.name}.snapshot", write=False)
                    current = self._snapshot
                successor = current.next(
                    index, provenance, universe=universe, report=report
                )
                with self._snap_lock:
                    self._sync.access(f"{self.name}.snapshot", write=True)
                    self._snapshot = successor
        obsrec.metrics().gauge(f"{self.name}.generation").set(
            successor.generation
        )
        return successor

    def refresh(self) -> RefreshOutcome:
        """Compute the next index via the refresher and publish it.

        Runs in the calling thread (or the watch thread); queries keep
        being served from the old snapshot the whole time.
        """
        if self._refresher is None:
            raise ValueError(
                f"{self.name} has no refresher configured; use publish() "
                "or construct the service via Search.serve()"
            )
        with obsrec.span(f"{self.name}.refresh"):
            with self._refresh_lock:
                payload = self._refresher()
                index, universe, report, change = _unpack_refresh(payload)
                snapshot = self.publish(
                    index, "refresh", universe=universe, report=report
                )
        obsrec.metrics().counter(f"{self.name}.refreshes").inc()
        return RefreshOutcome(generation=snapshot.generation, change=change)

    def start_watch(self, interval_s: float) -> None:
        """Refresh on a period in a background thread until close()."""
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        if self._refresher is None:
            raise ValueError(f"{self.name} has no refresher to watch with")
        if self._watch_thread is not None:
            raise RuntimeError(f"{self.name} is already watching")

        def loop() -> None:
            while True:
                with self._lock:
                    if self._watch_stop or self._closing:
                        return
                    # Interruptible sleep: close() notifies this
                    # condition, so shutdown never waits out an interval.
                    self._watch_cond.wait(timeout=interval_s)
                    if self._watch_stop or self._closing:
                        return
                self.refresh()

        self._watch_thread = self._sync.thread(
            loop, name=f"{self.name}-watch"
        )
        self._watch_thread.start()

    # -- lifecycle --------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Graceful shutdown: stop admission, settle the queue, join.

        ``drain=True`` (default) lets the workers finish every accepted
        query.  ``drain=False`` shortcuts the queue: accepted jobs that
        no worker has started yet are settled immediately with
        :class:`ServiceOverloadedError` (each counted on the shed
        counter exactly once); jobs already executing still complete.
        Either way callers blocked on admission (``shed="block"``) are
        woken and raise :class:`ServiceClosedError` — close never
        leaves a waiter hanging.
        """
        metrics = obsrec.metrics()
        with self._lock:
            if self._closing:
                return
            self._closing = True
            self._watch_stop = True
            if not drain:
                while self._queue:
                    job = self._queue.popleft()
                    job.error = ServiceOverloadedError(
                        f"{self.name}: shed at close(drain=False)"
                    )
                    job.done = True
                    self._inflight -= 1
                    self._shed_count += 1
                    metrics.counter(f"{self.name}.shed").inc()
                metrics.gauge(f"{self.name}.queue_depth").set(0)
                metrics.gauge(f"{self.name}.inflight").set(self._inflight)
            self._work.notify_all()
            self._done.notify_all()
            self._watch_cond.notify_all()
        if self._watch_thread is not None:
            self._watch_thread.join()
        for worker in self._workers:
            worker.join()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closing

    def __enter__(self) -> "SearchService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def stats(self) -> Dict[str, float]:
        """A point-in-time digest of the service counters."""
        with self._lock:
            queued = len(self._queue)
            inflight = self._inflight
            served = self._served
            shed = self._shed_count
        return {
            "service.generation": float(self.generation),
            "service.queue_depth": float(queued),
            "service.inflight": float(inflight),
            "service.served": float(served),
            "service.shed": float(shed),
        }

    # -- internals --------------------------------------------------------

    def _worker_loop(self) -> None:
        metrics = obsrec.metrics()
        while True:
            with self._lock:
                while not self._queue and not self._closing:
                    self._work.wait()
                if not self._queue:
                    return  # closing and fully drained
                job = self._queue.popleft()
                metrics.gauge(f"{self.name}.queue_depth").set(
                    len(self._queue)
                )
            snapshot = self.snapshot
            started = time.perf_counter()
            with obsrec.span(
                f"{self.name}.query", generation=snapshot.generation
            ):
                try:
                    if job.rank == "bm25":
                        hits = snapshot.search_bm25(job.text, topk=job.topk)
                        job.result = QueryResult(
                            paths=[hit.path for hit in hits],
                            generation=snapshot.generation,
                            elapsed_s=time.perf_counter() - started,
                            hits=hits,
                        )
                    else:
                        paths = snapshot.search(
                            job.text, parallel=job.parallel
                        )
                        job.result = QueryResult(
                            paths=paths,
                            generation=snapshot.generation,
                            elapsed_s=time.perf_counter() - started,
                        )
                except BaseException as exc:  # propagate to the caller
                    job.error = exc
                    metrics.counter(f"{self.name}.errors").inc()
            with self._lock:
                job.done = True
                self._inflight -= 1
                self._served += 1
                metrics.gauge(f"{self.name}.inflight").set(self._inflight)
                self._done.notify_all()


def _unpack_refresh(payload: object):
    """Normalize a refresher's return value.

    Accepts a bare index, ``(index,)``, ``(index, universe)``,
    ``(index, universe, report)`` or ``(index, universe, report,
    change)``; missing positions default to None.
    """
    if isinstance(payload, tuple):
        parts: List[object] = list(payload) + [None, None, None, None]
        return parts[0], parts[1], parts[2], parts[3]
    return payload, None, None, None
