"""Document-partitioned sharded serving: the scatter-gather broker.

The "millions of users" architecture from *Design of a Parallel and
Distributed Web Search Engine*: the corpus is partitioned **by
document** across N shards, each shard runs today's
:class:`~repro.service.service.SearchService` over its *own*
:class:`~repro.service.snapshot.IndexSnapshot` (in-memory, or RIDX2
served off mmap, or a whole separate OS process —
:mod:`repro.service.shardproc`), and a :class:`ScatterGatherBroker`
fans each query out to every shard, gathers the per-shard answers and
merges them into one result.

Merging — the scoring contract
------------------------------

* **Boolean** queries merge by *sorted set-union*.  Because evaluation
  is per-document and the shard universes are disjoint, every operator
  the query language has — ``AND``/``OR``/``NOT``/wildcards — commutes
  with document partitioning: a shard evaluates ``NOT t`` against its
  own universe, and the union over shards equals the global complement.
  The merged result is therefore **byte-identical** to the unsharded
  engine's (the differential gate in ``tests/test_sharded_service.py``
  asserts exactly this).
* **BM25** top-K merges by a global heap-merge of the per-shard top-K
  lists under the tie-break ``(score desc, path asc)`` — the same
  ordering both the in-memory ranker and the on-disk DAAT scorer
  already guarantee.  Scores are computed with **shard-local
  statistics**: each shard's ``idf`` uses its own ``N`` and ``df``,
  its length normalization its own ``avgdl``.  That is the standard
  distributed-IR trade-off (global-statistics exchange costs a round
  trip); it means a sharded score is *not* comparable to an unsharded
  score, which is why the topology scope is part of
  :func:`~repro.query.cache.cache_key` and results can never be served
  across topologies.  What *is* guaranteed: the merge is a
  permutation-stable prefix — the merged top-K is exactly the first K
  of the concatenated per-shard hits under the documented tie-break.

Partial results — dead shards
-----------------------------

Each shard may run R replicas; a query walks the shard's replicas from
a rotating cursor and fails over on death (the serving analogue of the
process-pool recovery ladder in :mod:`repro.engine.procbackend`:
retry-on-another-replica, then degrade, then fail).  When a whole
shard is dead the broker's ``partial`` policy decides:

* ``partial="degrade"`` (default): answer from the live shards and
  mark the result with the health tuple
  ``QueryResult.shards_ok/shards_total`` (``shards_ok < shards_total``
  ⇒ ``result.degraded``).  A degraded result is *correct over the live
  shards' documents* and silent about the dead ones'.
* ``partial="fail"``: raise :class:`ShardDeadError` — a typed error,
  never a hang — as soon as any shard cannot answer.

Either way every in-flight query terminates: local replicas settle
their queues on kill, process replicas are detected by liveness checks
and bounded waits.

The broker wears the service's face (``query``/``snapshot``/``stats``/
``close``/``max_inflight``), so the PR-8 pieces compose unchanged: the
open-loop load generator drives it directly, and
:class:`~repro.service.frontend.AsyncSearchFrontend` seats on top so
single-flight coalescing happens *before* fan-out (one popular query
costs one scatter, not one per duplicate).  Admission control stays
per-shard — each replica's ``SearchService`` keeps its own
``max_inflight`` budget — exactly the paper's broker/worker split.

Front doors: :meth:`repro.api.Search.serve_sharded` and ``repro-cli
serve --shards N``.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.distribute import RoundRobinStrategy, SizeBalancedStrategy
from repro.fsmodel.nodes import FileRef
from repro.index.inverted import InvertedIndex
from repro.obs import recorder as obsrec
from repro.query.evaluator import QueryEngine
from repro.query.ranking import BM25Ranker, FrequencyIndex
from repro.query.ranking import search_bm25 as _ranked_search_bm25
from repro.service.service import (
    SearchService,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.service.snapshot import IndexSnapshot, QueryResult

#: Broker behaviour when a shard cannot answer.
PARTIAL_POLICIES: Tuple[str, ...] = ("fail", "degrade")

#: Document-to-shard assignment strategies (reusing ``distribute/``).
SHARD_STRATEGIES: Tuple[str, ...] = ("roundrobin", "sizebalanced")


class ShardDeadError(RuntimeError):
    """A shard (all of its replicas) cannot answer.

    Raised per-shard inside the scatter, and from the broker itself
    when the ``partial="fail"`` policy forbids a degraded answer or no
    shard at all is left alive.
    """


# -- partitioning ---------------------------------------------------------


def partition_paths(
    paths: Iterable[str],
    shards: int,
    strategy: str = "roundrobin",
    sizes: Optional[Dict[str, int]] = None,
) -> List[List[str]]:
    """Assign documents to ``shards`` buckets, deterministically.

    Reuses the stage-1 work-distribution strategies: ``"roundrobin"``
    deals the (sorted) paths out like cards, ``"sizebalanced"`` runs
    the LPT greedy on ``sizes`` (bytes, term counts — any load proxy;
    missing entries weigh 1).  Paths are sorted first so the
    partition is a pure function of the document set, not of traversal
    order — the differential gate depends on that reproducibility.
    """
    if shards < 1:
        raise ValueError(f"shards must be at least 1, got {shards}")
    if strategy not in SHARD_STRATEGIES:
        raise ValueError(
            f"strategy must be one of {SHARD_STRATEGIES}, got {strategy!r}"
        )
    sizes = sizes or {}
    refs = [FileRef(path, int(sizes.get(path, 1))) for path in sorted(paths)]
    chooser = (
        RoundRobinStrategy()
        if strategy == "roundrobin"
        else SizeBalancedStrategy()
    )
    distribution = chooser.distribute(refs, shards)
    return [
        [ref.path for ref in bucket] for bucket in distribution.assignments
    ]


class RankedQueryEngine(QueryEngine):
    """A boolean engine plus a BM25 ranker over the same documents.

    Gives an *in-memory* shard snapshot the ``search_bm25`` face the
    on-disk DAAT engine has, scoring with the shard's own
    :class:`~repro.query.ranking.FrequencyIndex` — i.e. shard-local
    statistics, per the scoring contract above.
    """

    def __init__(
        self, index, universe=None, positions=None, frequencies=None
    ) -> None:
        if frequencies is None:
            raise ValueError("RankedQueryEngine needs a FrequencyIndex")
        super().__init__(index, universe=universe, positions=positions)
        self.ranker = BM25Ranker(frequencies)

    def search_bm25(self, query_text: str, topk: int = 10) -> list:
        return _ranked_search_bm25(self, self.ranker, query_text, topk=topk)


def shard_snapshots(
    index: InvertedIndex,
    universe: Iterable[str],
    shards: int,
    strategy: str = "roundrobin",
    frequencies: Optional[FrequencyIndex] = None,
    generation: int = 0,
) -> List[IndexSnapshot]:
    """Split one flat index into per-shard in-memory snapshots.

    Each shard gets the full index restricted to its documents
    (:meth:`~repro.index.inverted.InvertedIndex.subset`) and its slice
    of the universe (so per-shard ``NOT`` complements compose to the
    global one).  With ``frequencies``, each shard also gets the exact
    per-document slice of the frequency sidecar and a
    :class:`RankedQueryEngine`, enabling sharded BM25.  Size-balanced
    partitioning weighs documents by their term-occurrence length when
    frequencies are available.
    """
    universe = list(universe)
    sizes = None
    if frequencies is not None:
        sizes = {
            path: max(1, frequencies.document_length(path))
            for path in universe
        }
    parts = partition_paths(universe, shards, strategy, sizes=sizes)
    snapshots = []
    for part in parts:
        keep: FrozenSet[str] = frozenset(part)
        sub = index.subset(keep)
        engine = None
        if frequencies is not None:
            engine = RankedQueryEngine(
                sub, universe=keep, frequencies=frequencies.subset(keep)
            )
        snapshots.append(
            IndexSnapshot(
                index=sub,
                generation=generation,
                provenance="shard",
                universe=keep,
                engine=engine,
            )
        )
    return snapshots


# -- shard replicas and groups --------------------------------------------


class LocalShardReplica:
    """One in-process shard replica: a ``SearchService`` over its
    snapshot.

    The cheapest shard backend — threads in this process — and the one
    the deterministic schedule checker can sweep.  :meth:`kill` is the
    fault-injection hook: it marks the replica dead and settles the
    service without draining, so queries queued behind the crash get a
    typed error, executing ones finish, and nothing ever hangs.
    """

    kind = "local"

    def __init__(
        self,
        shard_id: int,
        replica_id: int,
        snapshot: IndexSnapshot,
        workers: int = 1,
        max_inflight: int = 32,
        shed: str = "reject",
        sync=None,
    ) -> None:
        if sync is None:
            from repro.concurrency.provider import THREADING_SYNC

            sync = THREADING_SYNC
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.name = f"shard{shard_id}.replica{replica_id}"
        self._sync = sync
        self._lock = sync.lock(f"{self.name}.dead-lock")
        self._dead = False
        self.service = SearchService(
            snapshot,
            workers=workers,
            max_inflight=max_inflight,
            shed=shed,
            sync=sync,
            name=self.name,
        )
        self.max_inflight = max_inflight

    @property
    def alive(self) -> bool:
        with self._lock:
            return not self._dead

    def query(
        self,
        query_text: str,
        parallel: bool = False,
        rank: str = "bool",
        topk: int = 10,
    ) -> QueryResult:
        if not self.alive:
            raise ShardDeadError(f"{self.name} is dead")
        try:
            return self.service.query(
                query_text, parallel=parallel, rank=rank, topk=topk
            )
        except ServiceClosedError as exc:
            # The service closed under us: from the broker's seat that
            # is a dead replica, not a client error.
            raise ShardDeadError(f"{self.name} is closed") from exc
        except ServiceOverloadedError:
            if not self.alive:
                # Shed by kill()'s drain=False settle, not by load.
                raise ShardDeadError(f"{self.name} died mid-query")
            raise

    def kill(self) -> None:
        """Fault injection: this replica stops answering, immediately."""
        with self._lock:
            if self._dead:
                return
            self._dead = True
        self.service.close(drain=False)

    def close(self) -> None:
        self.service.close()


class ShardGroup:
    """One shard's replica set plus the failover ladder.

    A query walks the replicas from a rotating cursor (spreading load
    across replicas — the throughput point of R > 1): a dead replica
    is skipped and the next one tried (the procbackend ladder's
    "retry" rung); a replica that sheds for *load* is also retried on
    the next replica, and the overload only propagates if every live
    replica sheds.  Only when no replica can answer does the group
    raise :class:`ShardDeadError`, and the broker's ``partial`` policy
    takes over (the ladder's "degrade" rung).
    """

    def __init__(
        self, shard_id: int, replicas: Sequence, sync=None, name: str = "broker"
    ) -> None:
        if not replicas:
            raise ValueError(f"shard {shard_id} needs at least one replica")
        if sync is None:
            from repro.concurrency.provider import THREADING_SYNC

            sync = THREADING_SYNC
        self.shard_id = shard_id
        self.replicas = list(replicas)
        self._lock = sync.lock(f"{name}.shard{shard_id}.cursor-lock")
        self._cursor = 0

    def _rotation(self) -> List:
        with self._lock:
            start = self._cursor
            self._cursor = (self._cursor + 1) % len(self.replicas)
        count = len(self.replicas)
        return [self.replicas[(start + i) % count] for i in range(count)]

    @property
    def alive(self) -> bool:
        return any(replica.alive for replica in self.replicas)

    def query(
        self,
        query_text: str,
        parallel: bool = False,
        rank: str = "bool",
        topk: int = 10,
    ) -> QueryResult:
        metrics = obsrec.metrics()
        last_overload: Optional[ServiceOverloadedError] = None
        with obsrec.span("shard.query", shard=self.shard_id, rank=rank):
            for replica in self._rotation():
                if not replica.alive:
                    continue
                try:
                    return replica.query(
                        query_text, parallel=parallel, rank=rank, topk=topk
                    )
                except ShardDeadError:
                    metrics.counter("broker.failovers").inc()
                    continue
                except ServiceOverloadedError as exc:
                    last_overload = exc
                    continue
        if last_overload is not None:
            raise last_overload
        raise ShardDeadError(
            f"shard {self.shard_id}: all {len(self.replicas)} replicas dead"
        )

    def kill(self) -> None:
        for replica in self.replicas:
            replica.kill()

    def close(self) -> None:
        for replica in self.replicas:
            replica.close()


# -- gathered results -----------------------------------------------------


class GatheredPaths(list):
    """A merged boolean result list carrying the shard health tuple."""

    def __init__(self, paths, shards_ok: int, shards_total: int) -> None:
        super().__init__(paths)
        self.shards_ok = shards_ok
        self.shards_total = shards_total


class GatheredHits(list):
    """A merged BM25 hit list carrying the shard health tuple."""

    def __init__(self, hits, shards_ok: int, shards_total: int) -> None:
        super().__init__(hits)
        self.shards_ok = shards_ok
        self.shards_total = shards_total


class ShardedSnapshot:
    """The broker's immutable topology view, wearing the snapshot face.

    Exposes ``generation`` / ``search`` / ``search_bm25`` like an
    :class:`~repro.service.snapshot.IndexSnapshot`, which is exactly
    what lets :class:`~repro.service.frontend.AsyncSearchFrontend`
    seat on a broker with zero changes to its batch/eval machinery:
    the frontend loads one snapshot pointer per admitted batch and
    evaluates against it; here "evaluating" is the scatter-gather.

    The object itself is immutable (the shard set is fixed at
    construction); *health* is read live from the shard groups at
    query time, so a snapshot loaded before a shard died still answers
    — degraded or failing per ``partial`` — without a republish.
    """

    def __init__(
        self,
        groups: Sequence[ShardGroup],
        generation: int,
        partial: str,
        sync,
        name: str = "broker",
    ) -> None:
        self.groups = list(groups)
        self.generation = generation
        self.partial = partial
        self.name = name
        self._sync = sync

    @property
    def shards_total(self) -> int:
        return len(self.groups)

    def shards_ok(self) -> int:
        return sum(1 for group in self.groups if group.alive)

    def _scatter(self, probe: Callable[[ShardGroup], QueryResult]):
        """Fan ``probe`` out to every shard; gather and classify.

        Returns ``(per_shard_results, shards_ok)`` over the shards
        that answered.  :class:`ShardDeadError` from a shard is
        absorbed per the ``partial`` policy; any *other* error
        (overload with every replica saturated, a parse error — which
        every shard would raise identically) is re-raised: those are
        per-query failures, not topology damage, and masking them as
        "partial" would lie about the data.
        """
        groups = self.groups
        results: List[Optional[QueryResult]] = [None] * len(groups)
        errors: List[Optional[BaseException]] = [None] * len(groups)

        def run(i: int, group: ShardGroup) -> None:
            try:
                results[i] = probe(group)
            except BaseException as exc:  # classified in the gather
                errors[i] = exc

        with obsrec.span(f"{self.name}.scatter", shards=len(groups)):
            threads = []
            if len(groups) == 1:
                run(0, groups[0])
            else:
                threads = [
                    self._sync.thread(
                        lambda i=i, group=group: run(i, group),
                        name=f"{self.name}-scatter-{i}",
                    )
                    for i, group in enumerate(groups)
                ]
                for thread in threads:
                    thread.start()
        with obsrec.span(f"{self.name}.gather", shards=len(groups)):
            for thread in threads:
                thread.join()
            answered: List[QueryResult] = []
            dead = 0
            fatal: Optional[BaseException] = None
            for result, error in zip(results, errors):
                if error is None:
                    answered.append(result)
                elif isinstance(error, ShardDeadError):
                    dead += 1
                elif fatal is None:
                    fatal = error
            if fatal is not None:
                raise fatal
            if dead and self.partial == "fail":
                raise ShardDeadError(
                    f"{self.name}: {dead}/{len(groups)} shards dead "
                    "(partial='fail' forbids a degraded answer)"
                )
            if not answered:
                raise ShardDeadError(
                    f"{self.name}: all {len(groups)} shards dead"
                )
            return answered, len(groups) - dead

    def search(self, query_text: str, parallel: bool = False) -> GatheredPaths:
        """Scatter a boolean query; merge by sorted set-union."""
        answered, shards_ok = self._scatter(
            lambda group: group.query(query_text, parallel=parallel)
        )
        merged = set()
        for result in answered:
            merged.update(result.paths)
        return GatheredPaths(sorted(merged), shards_ok, self.shards_total)

    def search_bm25(self, query_text: str, topk: int = 10) -> GatheredHits:
        """Scatter a BM25 query; heap-merge the per-shard top-K.

        Each shard returns its local top-``topk`` ordered by
        ``(score desc, path asc)``; the global answer is the first
        ``topk`` of the k-way merge under the same ordering — the
        documented permutation-stable prefix.
        """
        answered, shards_ok = self._scatter(
            lambda group: group.query(query_text, rank="bm25", topk=topk)
        )
        merged = heapq.merge(
            *[result.hits for result in answered],
            key=lambda hit: (-hit.score, hit.path),
        )
        return GatheredHits(
            itertools.islice(merged, topk), shards_ok, self.shards_total
        )


# -- the broker -----------------------------------------------------------


class ScatterGatherBroker:
    """N shard groups behind one service-shaped face.

    ``query``/``snapshot``/``stats``/``close`` mirror
    :class:`~repro.service.service.SearchService`, so every existing
    consumer — the open-loop load generator, the async frontend, the
    CLI serve loop — drives a broker exactly like a single service.
    ``max_inflight`` defaults to the *weakest* shard's total replica
    budget: every query touches every shard, so global concurrency is
    bounded by the smallest shard's capacity.

    Spans: each query records ``<name>.query`` wrapping one
    ``<name>.scatter`` (fan-out) and one ``<name>.gather``
    (join + merge), with per-shard ``shard.query`` spans inside the
    scatter.  Gauges ``<name>.shards_ok``/``<name>.shards_total``
    publish topology health; counters count served, degraded, shed
    and failed queries plus replica failovers.
    """

    def __init__(
        self,
        groups: Sequence[ShardGroup],
        partial: str = "degrade",
        max_inflight: Optional[int] = None,
        sync=None,
        name: str = "broker",
        generation: int = 0,
    ) -> None:
        if not groups:
            raise ValueError("a broker needs at least one shard group")
        if partial not in PARTIAL_POLICIES:
            raise ValueError(
                f"partial must be one of {PARTIAL_POLICIES}, got {partial!r}"
            )
        if sync is None:
            from repro.concurrency.provider import THREADING_SYNC

            sync = THREADING_SYNC
        self.name = name
        self.partial = partial
        self.groups = list(groups)
        self._sync = sync
        self._snapshot = ShardedSnapshot(
            self.groups, generation, partial, sync, name=name
        )
        if max_inflight is None:
            max_inflight = min(
                sum(replica.max_inflight for replica in group.replicas)
                for group in self.groups
            )
        self.max_inflight = max_inflight
        self._lock = sync.lock(f"{name}.stats-lock")
        self._closing = False
        self._served = 0
        self._degraded = 0
        self._shed = 0
        self._failed = 0
        metrics = obsrec.metrics()
        metrics.gauge(f"{name}.shards_total").set(len(self.groups))
        metrics.gauge(f"{name}.shards_ok").set(self._snapshot.shards_ok())

    # -- the service face --------------------------------------------------

    @property
    def snapshot(self) -> ShardedSnapshot:
        """The topology view (one pointer load, like a service's)."""
        return self._snapshot

    @property
    def generation(self) -> int:
        return self._snapshot.generation

    @property
    def cache_scope(self) -> str:
        """The topology component of the cache key.

        Folding ``shards=N`` into
        :func:`~repro.query.cache.cache_key` guarantees a sharded BM25
        entry (shard-local statistics!) can never satisfy an unsharded
        waiter or one behind a different shard count.
        """
        return f"shards={len(self.groups)}"

    def query(
        self,
        query_text: str,
        parallel: bool = False,
        rank: str = "bool",
        topk: int = 10,
    ) -> QueryResult:
        """Scatter one query, gather, merge; returns typed hits.

        The result carries the ``shards_ok/shards_total`` health tuple.
        Raises :class:`ShardDeadError` under ``partial="fail"`` (or
        when no shard is left), :class:`ServiceOverloadedError` when a
        shard's admission control sheds on every replica, and
        :class:`ServiceClosedError` after :meth:`close`.
        """
        if rank not in ("bool", "bm25"):
            raise ValueError(f"rank must be 'bool' or 'bm25', got {rank!r}")
        with self._lock:
            if self._closing:
                raise ServiceClosedError(f"{self.name} is shut down")
        metrics = obsrec.metrics()
        metrics.counter(f"{self.name}.queries").inc()
        snapshot = self.snapshot
        started = time.perf_counter()
        try:
            with obsrec.span(
                f"{self.name}.query", rank=rank, shards=len(self.groups)
            ):
                if rank == "bm25":
                    hits = snapshot.search_bm25(query_text, topk=topk)
                    result = QueryResult(
                        paths=[hit.path for hit in hits],
                        generation=snapshot.generation,
                        elapsed_s=time.perf_counter() - started,
                        hits=list(hits),
                        shards_ok=hits.shards_ok,
                        shards_total=hits.shards_total,
                    )
                else:
                    paths = snapshot.search(query_text, parallel=parallel)
                    result = QueryResult(
                        paths=list(paths),
                        generation=snapshot.generation,
                        elapsed_s=time.perf_counter() - started,
                        shards_ok=paths.shards_ok,
                        shards_total=paths.shards_total,
                    )
        except ServiceOverloadedError:
            with self._lock:
                self._shed += 1
            metrics.counter(f"{self.name}.shed").inc()
            raise
        except ShardDeadError:
            with self._lock:
                self._failed += 1
            metrics.counter(f"{self.name}.failed").inc()
            self._refresh_health_gauges(metrics)
            raise
        with self._lock:
            self._served += 1
            if result.degraded:
                self._degraded += 1
        if result.degraded:
            metrics.counter(f"{self.name}.degraded").inc()
        self._refresh_health_gauges(metrics)
        return result

    # -- health and lifecycle ---------------------------------------------

    def _refresh_health_gauges(self, metrics=None) -> None:
        metrics = metrics or obsrec.metrics()
        metrics.gauge(f"{self.name}.shards_ok").set(self._snapshot.shards_ok())
        metrics.gauge(f"{self.name}.shards_total").set(len(self.groups))

    def kill_shard(self, shard_id: int) -> None:
        """Fault injection: every replica of one shard dies, now."""
        self.groups[shard_id].kill()
        self._refresh_health_gauges()

    def stats(self) -> Dict[str, float]:
        """A point-in-time digest of the broker counters."""
        with self._lock:
            served = self._served
            degraded = self._degraded
            shed = self._shed
            failed = self._failed
        return {
            "broker.shards_total": float(len(self.groups)),
            "broker.shards_ok": float(self._snapshot.shards_ok()),
            "broker.served": float(served),
            "broker.degraded": float(degraded),
            "broker.shed": float(shed),
            "broker.failed": float(failed),
        }

    def close(self) -> None:
        """Stop admission, then close every replica of every shard."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
        for group in self.groups:
            group.close()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closing

    def __enter__(self) -> "ScatterGatherBroker":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


# -- builders -------------------------------------------------------------


def local_broker(
    snapshots: Sequence[IndexSnapshot],
    replicas: int = 1,
    partial: str = "degrade",
    workers: int = 1,
    max_inflight: int = 32,
    shed: str = "reject",
    sync=None,
    name: str = "broker",
    generation: int = 0,
) -> ScatterGatherBroker:
    """A broker over in-process shard replicas, one group per snapshot.

    Replicas of a shard share the (immutable) snapshot object; each
    gets its own ``SearchService`` thread pool and admission budget.
    """
    if replicas < 1:
        raise ValueError(f"replicas must be at least 1, got {replicas}")
    groups = []
    for shard_id, snapshot in enumerate(snapshots):
        group_replicas = [
            LocalShardReplica(
                shard_id,
                replica_id,
                snapshot,
                workers=workers,
                max_inflight=max_inflight,
                shed=shed,
                sync=sync,
            )
            for replica_id in range(replicas)
        ]
        groups.append(ShardGroup(shard_id, group_replicas, sync, name=name))
    return ScatterGatherBroker(
        groups, partial=partial, sync=sync, name=name, generation=generation
    )


def build_sharded_service(
    index: InvertedIndex,
    universe: Iterable[str],
    shards: int = 2,
    replicas: int = 1,
    strategy: str = "roundrobin",
    partial: str = "degrade",
    frequencies: Optional[FrequencyIndex] = None,
    workers: int = 1,
    max_inflight: int = 32,
    shed: str = "reject",
    sync=None,
    name: str = "broker",
    generation: int = 0,
    ridx2_dir: Optional[str] = None,
    backend: str = "local",
) -> ScatterGatherBroker:
    """Partition ``index`` and stand up a serving broker over it.

    ``backend="local"`` serves each shard from an in-process
    ``SearchService`` (in-memory subset index, or — with ``ridx2_dir``
    — an RIDX2 file served off mmap).  ``backend="process"`` writes
    per-shard RIDX2 files and spawns one OS process per replica
    (:class:`~repro.service.shardproc.ProcessShardReplica`), the real
    escape from the GIL.  BM25 needs ``frequencies`` (sliced exactly
    per shard) for either backend.
    """
    if backend not in ("local", "process"):
        raise ValueError(
            f"backend must be 'local' or 'process', got {backend!r}"
        )
    if backend == "process" and ridx2_dir is None:
        raise ValueError("backend='process' needs ridx2_dir for shard files")
    parts_snapshots = shard_snapshots(
        index,
        universe,
        shards,
        strategy=strategy,
        frequencies=frequencies,
        generation=generation,
    )
    if ridx2_dir is None:
        return local_broker(
            parts_snapshots,
            replicas=replicas,
            partial=partial,
            workers=workers,
            max_inflight=max_inflight,
            shed=shed,
            sync=sync,
            name=name,
            generation=generation,
        )
    import os

    from repro.index.serialize import save_index

    os.makedirs(ridx2_dir, exist_ok=True)
    shard_paths = []
    for shard_id, snapshot in enumerate(parts_snapshots):
        path = os.path.join(ridx2_dir, f"shard-{shard_id:04d}.ridx2")
        shard_frequencies = None
        if frequencies is not None:
            shard_frequencies = frequencies.subset(snapshot.universe)
        save_index(
            snapshot.index, path, format="ridx2",
            frequencies=shard_frequencies,
        )
        shard_paths.append(path)
    if backend == "process":
        from repro.service.shardproc import ProcessShardReplica

        groups = []
        for shard_id, path in enumerate(shard_paths):
            group_replicas = [
                ProcessShardReplica(
                    shard_id,
                    replica_id,
                    path,
                    max_inflight=max_inflight,
                    sync=sync,
                )
                for replica_id in range(replicas)
            ]
            groups.append(ShardGroup(shard_id, group_replicas, sync, name=name))
        return ScatterGatherBroker(
            groups, partial=partial, sync=sync, name=name,
            generation=generation,
        )
    from repro.index.ondisk import MmapPostingsReader

    ondisk_snapshots = [
        IndexSnapshot.from_ondisk(
            MmapPostingsReader(path), generation=generation,
            provenance="shard-ondisk",
        )
        for path in shard_paths
    ]
    return local_broker(
        ondisk_snapshots,
        replicas=replicas,
        partial=partial,
        workers=workers,
        max_inflight=max_inflight,
        shed=shed,
        sync=sync,
        name=name,
        generation=generation,
    )
