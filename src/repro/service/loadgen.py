"""Open-loop load generation and tail-latency measurement.

A *closed-loop* driver (each client waits for its previous answer
before asking again) hides overload: when the server slows down the
clients slow down with it, offered load collapses, and the measured
tail looks rosy — the classic *coordinated omission* trap.  This
module drives the serving stack *open-loop* instead: arrivals follow a
seeded Poisson process at a configured offered rate and every query's
latency is measured from its **scheduled arrival time**, not from
whenever the harness got around to issuing it.  A query that had to
queue behind a saturated pool pays that delay in its own number.

Two drivers share one schedule:

* :meth:`OpenLoopLoadGenerator.run_frontend` — the
  :class:`~repro.service.frontend.AsyncSearchFrontend` path.  Because
  ``submit()`` only enqueues, one dispatcher thread keeps perfect
  arrival times at any offered load; completions arrive by done
  callback;
* :meth:`OpenLoopLoadGenerator.run_service` — the plain
  :class:`~repro.service.service.SearchService` baseline.  ``query()``
  blocks, so a pool of issuer threads pulls arrivals from the shared
  schedule; when the pool is saturated, arrivals go out late and the
  lateness is *counted* (latency is measured from the scheduled time).

Every completion is recorded as a ``loadgen.query`` span on the global
:mod:`repro.obs` recorder (scheduled start, sojourn duration, shed /
coalesced / measured attributes), and :meth:`LoadRunResult` percentiles
are computed back *from those spans* — the same channel the frontend's
own ``frontend.query`` spans ride on.  Arrivals inside the warmup
window are issued but excluded from the percentiles.

The benchmark driver (``benchmarks/test_extension_serving_latency.py``)
sweeps offered load over both drivers and emits
``BENCH_serving_latency.json``; ``examples/serving_latency_smoke.py``
is the CI-sized version.
"""

from __future__ import annotations

import itertools
import math
import threading
import time
from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional, Sequence

from repro.obs import recorder as obsrec
from repro.service.frontend import AsyncSearchFrontend, QueryTicket
from repro.service.service import (
    SearchService,
    ServiceClosedError,
    ServiceOverloadedError,
)

SPAN_NAME = "loadgen.query"

_RUN_IDS = itertools.count(1)


@dataclass(frozen=True)
class QuerySpec:
    """One query the workload can issue."""

    text: str
    rank: str = "bool"
    topk: int = 10
    parallel: bool = False


@dataclass(frozen=True)
class Arrival:
    """One scheduled arrival: *when* (offset from run start) and *what*."""

    at: float
    spec: QuerySpec


def percentile(values: Sequence[float], q: float) -> float:
    """Exact percentile with linear interpolation; NaN when empty."""
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


@dataclass
class LoadRunResult:
    """What one open-loop run measured.

    Percentiles cover *measured* completions only (scheduled after the
    warmup window) and include shed queries — a rejection is an answer
    the caller waited for.  ``max_queue_depth`` is the queue-depth
    gauge's high-water mark over the run (requires a fresh metrics
    registry per run to be per-run exact).
    """

    label: str
    offered_qps: float
    duration_s: float
    warmup_s: float
    issued: int = 0
    measured: int = 0
    completed: int = 0
    shed: int = 0
    errors: int = 0
    coalesced: int = 0
    p50_ms: float = float("nan")
    p95_ms: float = float("nan")
    p99_ms: float = float("nan")
    mean_ms: float = float("nan")
    max_ms: float = float("nan")
    shed_rate: float = 0.0
    throughput_qps: float = 0.0
    max_queue_depth: float = 0.0
    latencies_ms: List[float] = field(default_factory=list, repr=False)

    def require_measured(self, minimum: int = 1) -> "LoadRunResult":
        """Fail loudly when the run measured too few completions.

        An empty latency set turns every percentile NaN;
        ``round(nan)`` then writes literal ``NaN`` tokens into a
        ``BENCH_*.json`` digest — which is not JSON, and silently
        poisons any downstream comparison.  Benchmark and smoke drivers
        call this before serializing so a misconfigured run (warmup
        longer than the duration, a service shedding 100 %, a wedged
        frontend) aborts with a message instead.  Returns ``self`` for
        chaining.
        """
        if self.measured < minimum:
            raise ValueError(
                f"{self.label}: only {self.measured} measured "
                f"completions (need >= {minimum}); issued={self.issued} "
                f"shed={self.shed} errors={self.errors} — percentiles "
                "would be NaN"
            )
        return self

    def to_dict(self) -> Dict[str, float]:
        """The JSON-ready digest (raw samples excluded).

        Latency fields that were never measured (NaN) are emitted as
        ``None`` — JSON's ``null`` — never as a bare ``NaN`` token,
        which ``json.dumps`` would happily produce and no strict parser
        would accept.
        """

        def _ms(value: float, digits: int) -> Optional[float]:
            return None if math.isnan(value) else round(value, digits)

        return {
            "label": self.label,
            "offered_qps": round(self.offered_qps, 3),
            "duration_s": round(self.duration_s, 3),
            "warmup_s": round(self.warmup_s, 3),
            "issued": self.issued,
            "measured": self.measured,
            "completed": self.completed,
            "shed": self.shed,
            "errors": self.errors,
            "coalesced": self.coalesced,
            "p50_ms": _ms(self.p50_ms, 4),
            "p95_ms": _ms(self.p95_ms, 4),
            "p99_ms": _ms(self.p99_ms, 4),
            "mean_ms": _ms(self.mean_ms, 4),
            "max_ms": _ms(self.max_ms, 4),
            "shed_rate": round(self.shed_rate, 4),
            "throughput_qps": round(self.throughput_qps, 3),
            "max_queue_depth": self.max_queue_depth,
        }


class _Completion:
    """Mutable per-arrival completion slot filled by the drivers."""

    __slots__ = ("latency_s", "shed", "error", "coalesced", "measured")

    def __init__(self) -> None:
        self.latency_s = float("nan")
        self.shed = False
        self.error = False
        self.coalesced = False
        self.measured = False


class OpenLoopLoadGenerator:
    """A seeded Poisson arrival schedule plus two drivers over it.

    The schedule is generated once in the constructor (exponential
    inter-arrival gaps at ``offered_qps``, query specs sampled
    uniformly from ``specs``), so the frontend run and the baseline run
    replay the *same* arrivals — same times, same texts — and their
    tails are directly comparable.  Workload mix (duplicate fraction,
    rank mix) is controlled by the composition of ``specs``.
    """

    def __init__(
        self,
        specs: Sequence[QuerySpec],
        offered_qps: float,
        duration_s: float,
        warmup_s: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not specs:
            raise ValueError("need at least one QuerySpec")
        if offered_qps <= 0:
            raise ValueError(f"offered_qps must be positive, got {offered_qps}")
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        if not 0 <= warmup_s < duration_s:
            raise ValueError(
                f"warmup_s must be in [0, duration_s), got {warmup_s}"
            )
        self.specs = list(specs)
        self.offered_qps = offered_qps
        self.duration_s = duration_s
        self.warmup_s = warmup_s
        self.seed = seed
        rng = Random(seed)
        arrivals: List[Arrival] = []
        at = rng.expovariate(offered_qps)
        while at < duration_s:
            arrivals.append(Arrival(at=at, spec=rng.choice(self.specs)))
            at += rng.expovariate(offered_qps)
        self.arrivals = arrivals

    # -- drivers -----------------------------------------------------------

    def run_frontend(
        self,
        frontend: AsyncSearchFrontend,
        label: str = "frontend",
        depth_gauge: Optional[str] = None,
    ) -> LoadRunResult:
        """Drive the frontend open-loop; submission never blocks."""
        run_id = next(_RUN_IDS)
        slots = [_Completion() for _ in self.arrivals]
        outstanding = len(slots)
        lock = threading.Lock()
        all_done = threading.Event()
        if not slots:
            all_done.set()
        origin = time.perf_counter()

        def finish(index: int, due: float, ticket: QueryTicket) -> None:
            nonlocal outstanding
            self._complete(
                label, run_id, slots[index], self.arrivals[index], due,
                error=ticket.error,
                coalesced=(
                    ticket.value is not None and ticket.value.coalesced
                ),
            )
            with lock:
                outstanding -= 1
                if outstanding == 0:
                    all_done.set()

        for index, arrival in enumerate(self.arrivals):
            due = origin + arrival.at
            delay = due - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            spec = arrival.spec
            try:
                ticket = frontend.submit(
                    spec.text,
                    parallel=spec.parallel,
                    rank=spec.rank,
                    topk=spec.topk,
                )
            except (ServiceClosedError, ServiceOverloadedError) as exc:
                self._complete(
                    label, run_id, slots[index], arrival, due,
                    error=exc, coalesced=False,
                )
                with lock:
                    outstanding -= 1
                    if outstanding == 0:
                        all_done.set()
                continue
            ticket.add_done_callback(
                lambda resolved, index=index, due=due: finish(
                    index, due, resolved
                )
            )
        # Every accepted ticket resolves (close() guarantees it), so
        # this only times out if the frontend itself is wedged.
        if not all_done.wait(timeout=max(60.0, 10 * self.duration_s)):
            raise TimeoutError(
                f"{label}: load run did not drain; frontend wedged?"
            )
        return self._summarize(
            label, slots, origin,
            depth_gauge or f"{frontend.name}.queue_depth",
        )

    def run_service(
        self,
        service: SearchService,
        workers: int = 8,
        label: str = "service",
        depth_gauge: Optional[str] = None,
    ) -> LoadRunResult:
        """Drive a plain service with a pool of blocking issuers.

        ``workers`` bounds issue concurrency; beyond it arrivals go out
        late and the lateness lands in their measured latency — the
        open-loop accounting, not a flattering closed-loop one.
        """
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        run_id = next(_RUN_IDS)
        slots = [_Completion() for _ in self.arrivals]
        cursor = itertools.count()
        origin = time.perf_counter()

        def issuer() -> None:
            while True:
                index = next(cursor)
                if index >= len(self.arrivals):
                    return
                arrival = self.arrivals[index]
                due = origin + arrival.at
                delay = due - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                spec = arrival.spec
                error: Optional[BaseException] = None
                try:
                    service.query(
                        spec.text,
                        parallel=spec.parallel,
                        rank=spec.rank,
                        topk=spec.topk,
                    )
                except Exception as exc:
                    error = exc
                self._complete(
                    label, run_id, slots[index], arrival, due,
                    error=error, coalesced=False,
                )

        threads = [
            threading.Thread(
                target=issuer, name=f"loadgen-{label}-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return self._summarize(
            label, slots, origin, depth_gauge or f"{service.name}.queue_depth"
        )

    # -- accounting --------------------------------------------------------

    def _complete(
        self,
        label: str,
        run_id: int,
        slot: _Completion,
        arrival: Arrival,
        due: float,
        error: Optional[BaseException],
        coalesced: bool,
    ) -> None:
        now = time.perf_counter()
        slot.latency_s = now - due
        slot.shed = isinstance(error, ServiceOverloadedError)
        slot.error = error is not None and not slot.shed
        slot.coalesced = coalesced
        slot.measured = arrival.at >= self.warmup_s
        recorder = obsrec.get_recorder()
        if recorder.enabled:
            recorder.record_span(
                SPAN_NAME,
                start=due,
                duration=slot.latency_s,
                label=label,
                run_id=run_id,
                measured=slot.measured,
                shed=slot.shed,
                error=slot.error,
                coalesced=slot.coalesced,
                rank=arrival.spec.rank,
            )

    def _summarize(
        self,
        label: str,
        slots: List[_Completion],
        origin: float,
        depth_gauge: str,
    ) -> LoadRunResult:
        elapsed = time.perf_counter() - origin
        result = LoadRunResult(
            label=label,
            offered_qps=self.offered_qps,
            duration_s=self.duration_s,
            warmup_s=self.warmup_s,
            issued=len(slots),
        )
        latencies: List[float] = []
        for slot in slots:
            if slot.shed:
                result.shed += 1
            elif slot.error:
                result.errors += 1
            else:
                result.completed += 1
            if slot.coalesced:
                result.coalesced += 1
            if slot.measured and not math.isnan(slot.latency_s):
                result.measured += 1
                latencies.append(slot.latency_s * 1000.0)
        result.latencies_ms = latencies
        if latencies:
            result.p50_ms = percentile(latencies, 50)
            result.p95_ms = percentile(latencies, 95)
            result.p99_ms = percentile(latencies, 99)
            result.mean_ms = sum(latencies) / len(latencies)
            result.max_ms = max(latencies)
        if result.issued:
            result.shed_rate = result.shed / result.issued
        if elapsed > 0:
            result.throughput_qps = result.completed / elapsed
        gauge = obsrec.metrics().get(depth_gauge)
        if gauge is not None and hasattr(gauge, "max"):
            result.max_queue_depth = gauge.max
        return result


def format_ms(value: float) -> str:
    """A latency for a human footer: ``"n/a"`` when nothing was
    measured, never the string ``"nan"``."""
    return "n/a" if math.isnan(value) else f"{value:.2f}"


def summarize_spans(
    spans, label: Optional[str] = None, run_id: Optional[int] = None
) -> Dict[str, float]:
    """Percentiles recomputed from recorded ``loadgen.query`` spans.

    The cross-check channel: the drivers return a
    :class:`LoadRunResult` from their own slots, and this reads the
    *spans* back from an :class:`~repro.obs.recorder.Recorder` and must
    agree.  Only measured (post-warmup) spans count.
    """
    durations = [
        span.duration * 1000.0
        for span in spans
        if span.name == SPAN_NAME
        and span.attrs.get("measured")
        and (label is None or span.attrs.get("label") == label)
        and (run_id is None or span.attrs.get("run_id") == run_id)
    ]
    return {
        "count": float(len(durations)),
        "p50_ms": percentile(durations, 50),
        "p95_ms": percentile(durations, 95),
        "p99_ms": percentile(durations, 99),
    }
