"""Long-running query serving over immutable index snapshots.

The paper stops once the index is built; a deployed desktop search is a
*service*: queries keep arriving while the filesystem underneath keeps
changing.  This package is that layer, in the mould of the query-broker
/ background-builder split of parallel web search engines:

* :class:`~repro.service.snapshot.IndexSnapshot` — an immutable
  (index, generation, provenance) triple with its own query engine.
  Readers evaluate entirely against one snapshot, so an update can
  never tear a result;
* :class:`~repro.service.service.SearchService` — a thread pool of
  query workers in front of the current snapshot.  Updates (full
  rebuilds or :class:`~repro.index.incremental.IncrementalIndexer`
  deltas) are computed in the background and published with a single
  atomic reference swap through the
  :class:`~repro.concurrency.provider.SyncProvider` seam, so the
  schedule checker can sweep the swap/read interleavings;
* admission control — a bounded in-flight budget with a queue-depth
  gauge; at the bound the service either sheds
  (:class:`~repro.service.service.ServiceOverloadedError`) or blocks,
  per policy;
* graceful shutdown — :meth:`~repro.service.service.SearchService.close`
  drains every accepted query before the workers exit;
* :class:`~repro.service.frontend.AsyncSearchFrontend` — the batched,
  single-flight, stage-pipelined front end over a service: duplicate
  in-flight queries coalesce onto one evaluation, bursts are admitted
  with one snapshot load and one queue transaction, and an asyncio
  face keeps thousands of queries in flight from one event loop.  The
  open-loop load harness in :mod:`repro.service.loadgen` measures its
  tail latency (``BENCH_serving_latency.json``);
* :class:`~repro.service.sharded.ScatterGatherBroker` — document-
  partitioned scaling: N shards (each a ``SearchService`` over its own
  per-shard snapshot, in-process or one OS process each via
  :mod:`repro.service.shardproc`) behind a broker that scatters every
  query, gathers, and merges — sorted set-union for boolean results, a
  shard-local-statistics BM25 heap-merge for ranked ones — with
  replica failover and ``partial=fail|degrade`` dead-shard policies
  (``docs/sharded.md``).

The one-liner front doors are :meth:`repro.api.Search.serve`,
:meth:`repro.api.Search.serve_async` and
:meth:`repro.api.Search.serve_sharded`.
"""

from repro.service.snapshot import IndexSnapshot, QueryResult
from repro.service.service import (
    SHED_POLICIES,
    RefreshOutcome,
    SearchService,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.service.frontend import AsyncSearchFrontend, QueryTicket
from repro.service.loadgen import (
    LoadRunResult,
    OpenLoopLoadGenerator,
    QuerySpec,
)
from repro.service.sharded import (
    PARTIAL_POLICIES,
    SHARD_STRATEGIES,
    ScatterGatherBroker,
    ShardDeadError,
    ShardGroup,
    build_sharded_service,
    local_broker,
    shard_snapshots,
)

__all__ = [
    "AsyncSearchFrontend",
    "IndexSnapshot",
    "LoadRunResult",
    "OpenLoopLoadGenerator",
    "PARTIAL_POLICIES",
    "QueryResult",
    "QuerySpec",
    "QueryTicket",
    "RefreshOutcome",
    "SHARD_STRATEGIES",
    "SHED_POLICIES",
    "ScatterGatherBroker",
    "SearchService",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "ShardDeadError",
    "ShardGroup",
    "build_sharded_service",
    "local_broker",
    "shard_snapshots",
]
