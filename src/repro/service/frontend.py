"""The batched, coalescing, pipelined query front end.

:class:`~repro.service.service.SearchService` answers one query per
caller thread: each ``query()`` pays its own snapshot pointer load, its
own admission transaction, and its own parse — and two callers asking
the *same* question evaluate it twice.  Under open-loop traffic those
per-query costs dominate the tail.  :class:`AsyncSearchFrontend` is the
serving-side analogue of what the build side got from batching and
pipelining:

* **single-flight coalescing** — duplicate in-flight queries share one
  evaluation.  The key is the ranking-aware
  :func:`~repro.query.cache.cache_key` (normalized query, parallel
  flag, ranking mode, top-K), so ``a AND a`` coalesces onto ``a`` but a
  BM25 query can never satisfy a boolean waiter.  Followers get their
  *own* :class:`~repro.service.snapshot.QueryResult` — same paths/hits/
  generation, their own ``elapsed_s`` (time *they* waited, not the
  leader's evaluation time), and ``coalesced=True``;
* **batched admission** — planned queries park in a batch queue; the
  batcher thread flushes a whole burst with **one** snapshot pointer
  load and **one** queue transaction, instead of one of each per query.
  ``batch_window`` > 0 holds the flush open briefly so a burst
  accumulates; 0 flushes as soon as the batcher wakes.  Admission
  control happens at the flush: leaders beyond the in-flight budget are
  shed (:class:`~repro.service.service.ServiceOverloadedError`) along
  with their followers, each affected caller counted exactly once;
* **pipelined stages** — ``submit()`` only enqueues; dedicated stage
  workers run parse → plan (normalize + single-flight registration) and
  evaluation workers run evaluate, so independent stages of *distinct*
  queries overlap: one query's parse proceeds while another's
  evaluation runs.  Each stage is a span (``frontend.parse``,
  ``frontend.plan``, ``frontend.evaluate``) and every caller's full
  sojourn is recorded as a ``frontend.query`` span, which is what the
  load harness reads its percentiles from;
* **deterministic shutdown** — :meth:`close` stops intake
  (:class:`~repro.service.service.ServiceClosedError` for late
  submitters), then either drains (default: every accepted ticket
  completes) or sheds the not-yet-admitted remainder
  (``drain=False`` → ``ServiceOverloadedError``).  Either way every
  ticket resolves; nothing hangs and no future is dropped.

Every lock, condition and thread comes from the
:class:`~repro.concurrency.provider.SyncProvider` seam and the shared
state (the coalescing map, the batch queue) is declared via
``sync.access``, so the schedule checker can sweep the coalesce /
flush / swap interleavings exactly like it sweeps the service's
snapshot swap (``tests/test_frontend_concurrency.py``).

The asyncio face is :meth:`AsyncSearchFrontend.query_async`: submission
is non-blocking, resolution is delivered onto the caller's event loop,
so one loop can keep thousands of queries in flight against the
thread-pool back end.  ``repro-cli serve --async`` and
:meth:`repro.api.Search.serve_async` are the front doors.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.obs import recorder as obsrec
from repro.query.cache import CacheKey, cache_key, normalize_query
from repro.service.service import (
    SearchService,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.service.snapshot import IndexSnapshot, QueryResult


class QueryTicket:
    """One submitted query: resolves to a result or an error.

    Hand-rolled future on the provider seam (so the schedule checker
    can drive waiters deterministically) with an
    :meth:`add_done_callback` hook for the asyncio bridge.
    """

    __slots__ = (
        "text", "parallel", "rank", "topk", "submitted",
        "key", "snapshot", "followers", "done", "value", "error",
        "_frontend", "_callbacks",
    )

    def __init__(
        self,
        frontend: "AsyncSearchFrontend",
        text: str,
        parallel: bool,
        rank: str,
        topk: int,
    ) -> None:
        self.text = text
        self.parallel = parallel
        self.rank = rank
        self.topk = topk
        self.submitted = time.perf_counter()
        self.key: Optional[CacheKey] = None
        self.snapshot: Optional[IndexSnapshot] = None
        self.followers: List["QueryTicket"] = []
        self.done = False
        self.value: Optional[QueryResult] = None
        self.error: Optional[BaseException] = None
        self._frontend = frontend
        self._callbacks: List[Callable[["QueryTicket"], None]] = []

    def result(self, timeout: Optional[float] = None) -> QueryResult:
        """Block until resolution; returns the result or raises."""
        frontend = self._frontend
        with frontend._lock:
            while not self.done:
                if not frontend._done.wait(timeout=timeout):
                    raise TimeoutError(
                        f"query {self.text!r} unresolved after {timeout}s"
                    )
        if self.error is not None:
            raise self.error
        return self.value

    def add_done_callback(
        self, callback: Callable[["QueryTicket"], None]
    ) -> None:
        """Run ``callback(ticket)`` once resolved (immediately if it
        already is).  Called outside the frontend's locks."""
        with self._frontend._lock:
            if not self.done:
                self._callbacks.append(callback)
                return
        callback(self)


class AsyncSearchFrontend:
    """Single-flight, batch-admitted, stage-pipelined serving front end.

    Sits in front of a :class:`~repro.service.service.SearchService`
    and evaluates directly against its published snapshots (one pointer
    load per admitted *batch*).  ``workers`` evaluation threads and
    ``stage_workers`` parse/plan threads plus one batcher thread come
    from the ``sync`` provider.  ``max_inflight`` bounds admitted,
    unresolved leaders (coalesced followers ride free — that is the
    point); beyond it the flush sheds.  ``own_service=True`` makes
    :meth:`close` also close the wrapped service.
    """

    def __init__(
        self,
        service: SearchService,
        batch_window: float = 0.0,
        single_flight: bool = True,
        workers: int = 2,
        stage_workers: int = 1,
        max_inflight: Optional[int] = None,
        own_service: bool = False,
        sync=None,
        name: str = "frontend",
    ) -> None:
        if workers < 1 or stage_workers < 1:
            raise ValueError(
                f"workers and stage_workers must be at least 1, got "
                f"{workers} and {stage_workers}"
            )
        if batch_window < 0:
            raise ValueError(
                f"batch_window must be non-negative, got {batch_window}"
            )
        if max_inflight is None:
            max_inflight = service.max_inflight
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be at least 1, got {max_inflight}"
            )
        if sync is None:
            from repro.concurrency.provider import THREADING_SYNC

            sync = THREADING_SYNC
        self.name = name
        self.service = service
        self.batch_window = batch_window
        self.single_flight = single_flight
        self.max_inflight = max_inflight
        self._own_service = own_service
        self._sync = sync

        # One lock guards all frontend state; three conditions fan the
        # wakeups out by role (stage workers / batcher / result waiters).
        self._lock = sync.lock(f"{name}.state-lock")
        self._stage_work = sync.condition(self._lock, f"{name}.stage-cond")
        self._flush = sync.condition(self._lock, f"{name}.flush-cond")
        self._eval_work = sync.condition(self._lock, f"{name}.eval-cond")
        self._done = sync.condition(self._lock, f"{name}.done-cond")

        self._stageq: Deque[QueryTicket] = deque()   # awaiting parse/plan
        self._pending: List[QueryTicket] = []        # planned, awaiting flush
        self._evalq: Deque[QueryTicket] = deque()    # admitted, awaiting eval
        self._inflight_map: Dict[CacheKey, QueryTicket] = {}
        self._inflight = 0            # admitted, unresolved leaders
        self._staging = 0             # popped from _stageq, not yet planned
        self._closing = False
        self._drain_on_close = True
        self._batcher_done = False

        self._submitted = 0
        self._served = 0
        self._coalesced = 0
        self._shed = 0
        self._batches = 0
        self._evaluations = 0

        self._threads = [
            sync.thread(self._stage_loop, name=f"{name}-stage-{i}")
            for i in range(stage_workers)
        ]
        self._threads.append(
            sync.thread(self._batcher_loop, name=f"{name}-batcher")
        )
        self._threads.extend(
            sync.thread(self._eval_loop, name=f"{name}-eval-{i}")
            for i in range(workers)
        )
        for thread in self._threads:
            thread.start()

    # -- submission -------------------------------------------------------

    def submit(
        self,
        query_text: str,
        parallel: bool = False,
        rank: str = "bool",
        topk: int = 10,
    ) -> QueryTicket:
        """Enqueue one query; returns immediately with its ticket.

        Raises :class:`~repro.service.service.ServiceClosedError` if
        shutdown has begun.  Parse errors are *not* raised here — they
        travel on the ticket, like any other per-query failure, so a
        bad query in a burst never blocks the submitter.
        """
        if rank not in ("bool", "bm25"):
            raise ValueError(f"rank must be 'bool' or 'bm25', got {rank!r}")
        ticket = QueryTicket(self, query_text, parallel, rank, topk)
        metrics = obsrec.metrics()
        with self._lock:
            if self._closing:
                raise ServiceClosedError(f"{self.name} is shut down")
            self._submitted += 1
            self._sync.access(f"{self.name}.batch-queue", write=True)
            self._stageq.append(ticket)
            metrics.counter(f"{self.name}.queries").inc()
            self._set_depth_gauge_locked(metrics)
            self._stage_work.notify()
        return ticket

    def query(
        self,
        query_text: str,
        parallel: bool = False,
        rank: str = "bool",
        topk: int = 10,
    ) -> QueryResult:
        """Submit and wait — the drop-in synchronous convenience."""
        return self.submit(
            query_text, parallel=parallel, rank=rank, topk=topk
        ).result()

    async def query_async(
        self,
        query_text: str,
        parallel: bool = False,
        rank: str = "bool",
        topk: int = 10,
    ) -> QueryResult:
        """The asyncio face: await one query without blocking the loop.

        Submission happens inline (it only enqueues); resolution is
        delivered back onto the *calling* event loop, so one loop can
        hold arbitrarily many queries in flight.
        """
        import asyncio

        loop = asyncio.get_running_loop()
        future: "asyncio.Future[QueryResult]" = loop.create_future()
        ticket = self.submit(
            query_text, parallel=parallel, rank=rank, topk=topk
        )

        def deliver(resolved: QueryTicket) -> None:
            def transfer() -> None:
                if future.cancelled():
                    return
                if resolved.error is not None:
                    future.set_exception(resolved.error)
                else:
                    future.set_result(resolved.value)

            loop.call_soon_threadsafe(transfer)

        ticket.add_done_callback(deliver)
        return await future

    # -- lifecycle --------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Stop intake, resolve every outstanding ticket, join threads.

        ``drain=True`` (default) admits and completes everything
        already accepted.  ``drain=False`` completes what is admitted
        (mid-batch work) but sheds the not-yet-admitted remainder —
        queued and coalesced waiters then raise
        :class:`~repro.service.service.ServiceOverloadedError`.  Either
        way the outcome set is deterministic: complete or overloaded,
        never a hang, never an unresolved ticket.
        """
        with self._lock:
            if self._closing:
                return
            self._closing = True
            self._drain_on_close = drain
            self._stage_work.notify_all()
            self._flush.notify_all()
            self._eval_work.notify_all()
            self._done.notify_all()
        for thread in self._threads:
            thread.join()
        if self._own_service:
            self.service.close()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closing

    def __enter__(self) -> "AsyncSearchFrontend":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def stats(self) -> Dict[str, float]:
        """A point-in-time digest of the frontend counters."""
        with self._lock:
            snapshot = {
                "frontend.submitted": float(self._submitted),
                "frontend.served": float(self._served),
                "frontend.coalesced": float(self._coalesced),
                "frontend.shed": float(self._shed),
                "frontend.batches": float(self._batches),
                "frontend.evaluations": float(self._evaluations),
                "frontend.inflight": float(self._inflight),
                "frontend.queue_depth": float(
                    len(self._stageq) + len(self._pending) + len(self._evalq)
                ),
            }
        submitted = snapshot["frontend.submitted"]
        snapshot["frontend.shed_rate"] = (
            snapshot["frontend.shed"] / submitted if submitted else 0.0
        )
        return snapshot

    # -- stage 1+2: parse and plan ---------------------------------------

    def _stage_loop(self) -> None:
        metrics = obsrec.metrics()
        while True:
            with self._lock:
                while not self._stageq and not self._closing:
                    self._stage_work.wait()
                if not self._stageq:
                    # Closing and nothing left to plan: tell the batcher
                    # the stage pipeline cannot produce more work.
                    self._flush.notify_all()
                    return
                self._sync.access(f"{self.name}.batch-queue", write=True)
                ticket = self._stageq.popleft()
                self._staging += 1
            try:
                with obsrec.span(f"{self.name}.parse"):
                    normalized = normalize_query(ticket.text)
                with obsrec.span(f"{self.name}.plan"):
                    # The topology scope keeps keys from crossing
                    # serving topologies: a sharded BM25 result (scored
                    # with shard-local statistics) must never satisfy an
                    # unsharded waiter or one from a different shard
                    # count.  Unsharded services expose no scope (None).
                    ticket.key = cache_key(
                        normalized,
                        ticket.parallel,
                        ticket.rank,
                        ticket.topk if ticket.rank == "bm25" else None,
                        getattr(self.service, "cache_scope", None),
                    )
            except Exception as exc:  # ParseError etc. → the caller
                with self._lock:
                    self._staging -= 1
                    self._flush.notify_all()
                self._resolve(ticket, error=exc)
                continue
            with self._lock:
                self._staging -= 1
                if self.single_flight:
                    self._sync.access(f"{self.name}.inflight-map",
                                      write=False)
                    leader = self._inflight_map.get(ticket.key)
                    if leader is not None:
                        self._sync.access(f"{self.name}.inflight-map",
                                          write=True)
                        leader.followers.append(ticket)
                        self._coalesced += 1
                        metrics.counter(f"{self.name}.coalesced").inc()
                        continue
                    self._sync.access(f"{self.name}.inflight-map",
                                      write=True)
                    self._inflight_map[ticket.key] = ticket
                self._sync.access(f"{self.name}.batch-queue", write=True)
                self._pending.append(ticket)
                self._set_depth_gauge_locked(metrics)
                self._flush.notify()

    # -- stage 3: batched admission ---------------------------------------

    def _batcher_loop(self) -> None:
        metrics = obsrec.metrics()
        while True:
            with self._lock:
                while not self._pending and not self._closing:
                    self._flush.wait()
                if self._closing and not self._pending:
                    if self._stageq or self._staging:
                        # Stage workers are still planning accepted
                        # tickets; wait for them to land in _pending.
                        self._flush.wait()
                        continue
                    self._batcher_done = True
                    self._eval_work.notify_all()
                    return
                if self.batch_window > 0 and not self._closing:
                    # Hold the flush open so a burst accumulates into
                    # one admission transaction.
                    self._flush.wait(timeout=self.batch_window)
                self._sync.access(f"{self.name}.batch-queue", write=True)
                batch = self._pending
                self._pending = []
                # Admission for the whole batch in one transaction:
                # whatever fits the in-flight budget is admitted against
                # ONE snapshot pointer load; the excess is shed.  A
                # draining close admits everything it accepted; a
                # non-draining close sheds everything not yet admitted.
                if self._closing:
                    admit_count = len(batch) if self._drain_on_close else 0
                    shed_reason = f"{self.name}: closed before admission"
                else:
                    admit_count = max(
                        0, min(len(batch),
                               self.max_inflight - self._inflight)
                    )
                    shed_reason = (
                        f"{self.name}: admission batch over the "
                        f"in-flight bound {self.max_inflight}"
                    )
                admitted = batch[:admit_count]
                shed = batch[admit_count:]
                if admitted:
                    snapshot = self.service.snapshot  # one pointer load
                    for ticket in admitted:
                        ticket.snapshot = snapshot
                    self._evalq.extend(admitted)
                    self._inflight += len(admitted)
                    self._batches += 1
                    metrics.counter(f"{self.name}.batches").inc()
                    metrics.gauge(f"{self.name}.batch_size").set(
                        len(admitted)
                    )
                    metrics.gauge(f"{self.name}.inflight").set(
                        self._inflight
                    )
                    self._set_depth_gauge_locked(metrics)
                    self._eval_work.notify_all()
            for ticket in shed:
                self._resolve(ticket,
                              error=ServiceOverloadedError(shed_reason))

    # -- stage 4: evaluate -------------------------------------------------

    def _eval_loop(self) -> None:
        metrics = obsrec.metrics()
        while True:
            with self._lock:
                while not self._evalq and not (
                    self._closing and self._batcher_done
                ):
                    self._eval_work.wait()
                if not self._evalq:
                    return  # closing, batcher finished, fully drained
                self._sync.access(f"{self.name}.batch-queue", write=True)
                ticket = self._evalq.popleft()
                self._set_depth_gauge_locked(metrics)
            snapshot = ticket.snapshot
            started = time.perf_counter()
            try:
                with obsrec.span(
                    f"{self.name}.evaluate",
                    generation=snapshot.generation,
                    rank=ticket.rank,
                ):
                    if ticket.rank == "bm25":
                        hits = snapshot.search_bm25(
                            ticket.text, topk=ticket.topk
                        )
                        result = QueryResult(
                            paths=[hit.path for hit in hits],
                            generation=snapshot.generation,
                            elapsed_s=time.perf_counter() - started,
                            hits=hits,
                            shards_ok=getattr(hits, "shards_ok", None),
                            shards_total=getattr(
                                hits, "shards_total", None
                            ),
                        )
                    else:
                        paths = snapshot.search(
                            ticket.text, parallel=ticket.parallel
                        )
                        result = QueryResult(
                            paths=paths,
                            generation=snapshot.generation,
                            elapsed_s=time.perf_counter() - started,
                            shards_ok=getattr(paths, "shards_ok", None),
                            shards_total=getattr(
                                paths, "shards_total", None
                            ),
                        )
            except BaseException as exc:
                metrics.counter(f"{self.name}.errors").inc()
                self._resolve(ticket, error=exc, admitted=True)
            else:
                self._resolve(ticket, value=result, admitted=True)
            with self._lock:
                self._evaluations += 1

    # -- resolution --------------------------------------------------------

    def _resolve(
        self,
        ticket: QueryTicket,
        value: Optional[QueryResult] = None,
        error: Optional[BaseException] = None,
        admitted: bool = False,
    ) -> None:
        """Settle a leader and all its followers, exactly once each.

        A follower's :class:`QueryResult` is its own: same paths, hits
        and generation as the leader's, but ``elapsed_s`` measured from
        the *follower's* submission and ``coalesced=True``.  Shed
        resolution (``error`` without ``admitted``) counts each caller
        on the shed counter exactly once — a ticket that passed
        single-flight and was then rejected at batch admission has
        never been counted before this point.
        """
        now = time.perf_counter()
        metrics = obsrec.metrics()
        callbacks: List[tuple] = []
        with self._lock:
            if ticket.key is not None and self.single_flight:
                self._sync.access(f"{self.name}.inflight-map", write=True)
                if self._inflight_map.get(ticket.key) is ticket:
                    del self._inflight_map[ticket.key]
            party = [ticket] + ticket.followers
            for waiter in party:
                if waiter.done:  # pragma: no cover - defensive
                    continue
                if error is not None:
                    waiter.error = error
                    if isinstance(error, ServiceOverloadedError):
                        self._shed += 1
                        metrics.counter(f"{self.name}.shed").inc()
                elif waiter is ticket:
                    waiter.value = value
                else:
                    waiter.value = QueryResult(
                        paths=list(value.paths),
                        generation=value.generation,
                        elapsed_s=now - waiter.submitted,
                        hits=value.hits,
                        coalesced=True,
                        shards_ok=value.shards_ok,
                        shards_total=value.shards_total,
                    )
                waiter.done = True
                self._served += 1
                callbacks.extend(
                    (callback, waiter) for callback in waiter._callbacks
                )
                waiter._callbacks = []
                self._record_sojourn(waiter, now)
            if admitted:
                self._inflight -= 1
                metrics.gauge(f"{self.name}.inflight").set(self._inflight)
            self._done.notify_all()
        for callback, waiter in callbacks:
            callback(waiter)

    def _record_sojourn(self, waiter: QueryTicket, now: float) -> None:
        """Absorb the caller-visible latency as a ``frontend.query``
        span, which is what the load harness reads percentiles from."""
        recorder = obsrec.get_recorder()
        if not recorder.enabled:
            return
        recorder.record_span(
            f"{self.name}.query",
            start=waiter.submitted,
            duration=now - waiter.submitted,
            rank=waiter.rank,
            coalesced=waiter.value is not None and waiter.value.coalesced,
            shed=isinstance(waiter.error, ServiceOverloadedError),
        )

    def _set_depth_gauge_locked(self, metrics) -> None:
        metrics.gauge(f"{self.name}.queue_depth").set(
            len(self._stageq) + len(self._pending) + len(self._evalq)
        )
