"""Shard replicas as OS processes serving RIDX2 off mmap.

The local shard backend (:class:`~repro.service.sharded.
LocalShardReplica`) shares this process's GIL; real horizontal scaling
puts each shard replica in its **own process**, the serving-side
analogue of the build's "Join Forces" multiprocessing backend.  A
:class:`ProcessShardReplica` spawns one worker process that mmaps the
shard's RIDX2 file (73-byte open, page cache shared between replicas of
the same shard) and answers queries over a request/response queue pair.

Death is detected, never waited out: every response wait is bounded,
the worker's liveness is re-checked while waiting, and any of
timeout / EOF / dead-process turns into a typed
:class:`~repro.service.sharded.ShardDeadError` that the broker's
failover ladder and ``partial`` policy consume.  :meth:`kill`
terminates the worker with a real signal — the fault-injection path CI
uses to prove dead-shard handling, exercising the same detection a
genuine crash would.

This module deliberately uses plain ``multiprocessing`` primitives
(not the SyncProvider seam): the seam exists so the schedule checker
can sweep *thread* interleavings, and a child process is outside any
schedule a cooperative scheduler could control — exactly like
:mod:`repro.engine.procbackend` on the build side.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue as queue_mod
import time
from typing import Optional

from repro.query.ranking import RankedHit
from repro.service.sharded import ShardDeadError
from repro.service.snapshot import QueryResult

#: How long the parent polls between liveness re-checks while waiting.
_POLL_S = 0.05


def shard_worker_main(ridx2_path: str, requests, responses) -> None:
    """Entry point of one shard worker process.

    Opens the shard's RIDX2 file off mmap and serves
    ``(req_id, text, parallel, rank, topk)`` requests until a ``None``
    sentinel arrives.  Per-query failures travel back as
    ``("error", message)`` — the worker itself stays up; only a crash
    (or kill) takes it down, which the parent detects by liveness.
    """
    from repro.index.ondisk import MmapPostingsReader
    from repro.service.snapshot import IndexSnapshot

    snapshot = IndexSnapshot.from_ondisk(MmapPostingsReader(ridx2_path))
    while True:
        item = requests.get()
        if item is None:
            return
        req_id, text, parallel, rank, topk = item
        try:
            if rank == "bm25":
                hits = snapshot.search_bm25(text, topk=topk)
                payload = ("hits", [(hit.path, hit.score) for hit in hits])
            else:
                paths = snapshot.search(text, parallel=parallel)
                payload = ("paths", list(paths))
        except Exception as exc:
            payload = ("error", f"{type(exc).__name__}: {exc}")
        responses.put((req_id,) + payload)


class ProcessShardReplica:
    """One shard replica running in its own OS process.

    Wears the same face as
    :class:`~repro.service.sharded.LocalShardReplica` (``query`` /
    ``alive`` / ``kill`` / ``close`` / ``max_inflight``), so
    :class:`~repro.service.sharded.ShardGroup` treats both backends
    identically.  One request is in flight per replica at a time (the
    replica lock serializes callers); concurrency comes from R
    replicas per shard and N shards per broker, all in separate
    processes — which is the point.
    """

    kind = "process"

    def __init__(
        self,
        shard_id: int,
        replica_id: int,
        ridx2_path: str,
        max_inflight: int = 32,
        timeout_s: float = 30.0,
        sync=None,
        start_method: Optional[str] = None,
    ) -> None:
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        if sync is None:
            from repro.concurrency.provider import THREADING_SYNC

            sync = THREADING_SYNC
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.ridx2_path = ridx2_path
        self.name = f"shard{shard_id}.proc{replica_id}"
        self.max_inflight = max_inflight
        self.timeout_s = timeout_s
        self._lock = sync.lock(f"{self.name}.io-lock")
        self._dead = False
        self._ids = itertools.count(1)
        context = (
            multiprocessing.get_context(start_method)
            if start_method
            else multiprocessing.get_context()
        )
        self._requests = context.Queue()
        self._responses = context.Queue()
        self._process = context.Process(
            target=shard_worker_main,
            args=(ridx2_path, self._requests, self._responses),
            name=self.name,
            daemon=True,
        )
        self._process.start()

    @property
    def alive(self) -> bool:
        with self._lock:
            return not self._dead and self._process.is_alive()

    def query(
        self,
        query_text: str,
        parallel: bool = False,
        rank: str = "bool",
        topk: int = 10,
    ) -> QueryResult:
        """Round-trip one query to the worker; bounded, never a hang.

        Raises :class:`~repro.service.sharded.ShardDeadError` when the
        worker is (or dies) unreachable; per-query worker exceptions
        re-raise here as :class:`RuntimeError` with the worker's
        message.
        """
        started = time.perf_counter()
        with self._lock:
            if self._dead or not self._process.is_alive():
                self._dead = True
                raise ShardDeadError(f"{self.name}: worker process is dead")
            req_id = next(self._ids)
            try:
                self._requests.put((req_id, query_text, parallel, rank, topk))
            except (OSError, ValueError) as exc:
                self._dead = True
                raise ShardDeadError(
                    f"{self.name}: request pipe broken"
                ) from exc
            deadline = started + self.timeout_s
            while True:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    self._dead = True
                    raise ShardDeadError(
                        f"{self.name}: no answer in {self.timeout_s}s"
                    )
                try:
                    item = self._responses.get(
                        timeout=min(remaining, _POLL_S)
                    )
                except queue_mod.Empty:
                    if not self._process.is_alive():
                        self._dead = True
                        raise ShardDeadError(
                            f"{self.name}: worker died mid-query"
                        )
                    continue
                except (OSError, EOFError) as exc:
                    self._dead = True
                    raise ShardDeadError(
                        f"{self.name}: response pipe broken"
                    ) from exc
                answer_id, status, payload = item
                if answer_id != req_id:
                    # A stale answer from a request that timed out
                    # earlier; drop it and keep waiting for ours.
                    continue
                break
        elapsed = time.perf_counter() - started
        if status == "error":
            raise RuntimeError(f"{self.name}: {payload}")
        if status == "hits":
            hits = [RankedHit(path, score) for path, score in payload]
            return QueryResult(
                paths=[hit.path for hit in hits],
                generation=0,
                elapsed_s=elapsed,
                hits=hits,
            )
        return QueryResult(paths=payload, generation=0, elapsed_s=elapsed)

    def kill(self) -> None:
        """Fault injection: SIGKILL the worker, like a real crash.

        The replica is *not* marked dead here — the next query runs
        the genuine detection path (liveness check → typed error),
        exactly what a production crash would exercise.
        """
        if self._process.is_alive():
            self._process.kill()
            self._process.join(timeout=5.0)

    def close(self) -> None:
        """Graceful shutdown: sentinel, bounded join, then terminate."""
        with self._lock:
            already_dead = self._dead
            self._dead = True
        if not already_dead and self._process.is_alive():
            try:
                self._requests.put(None)
            except (OSError, ValueError):
                pass
            self._process.join(timeout=5.0)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=5.0)
        # Drop the queue feeder threads so interpreter exit never waits
        # on a pipe the dead worker will not drain.
        for q in (self._requests, self._responses):
            try:
                q.cancel_join_thread()
                q.close()
            except (OSError, ValueError):  # pragma: no cover - defensive
                pass
