"""Experiment drivers that regenerate the paper's tables.

One driver per table:

* :func:`run_table1` — sequential stage times on all three platforms;
* :func:`run_best_config_table` — the best configuration, execution
  time, speed-up and variance-vs-Implementation-1 for each of the three
  implementations on one platform (Tables 2, 3, 4 are this driver on
  the three calibrated platforms);
* :func:`run_all_tables` — everything, plus a paper-vs-simulated
  comparison report.

The paper's reported numbers live in :mod:`repro.experiments.paper` so
the comparison (and the test suite's shape assertions) have a single
source of truth.
"""

from repro.experiments.paper import (
    PAPER_BEST,
    PAPER_SEQUENTIAL,
    PAPER_STAGE_TIMES,
    PaperBestEntry,
)
from repro.experiments.runner import (
    BestConfigRow,
    BestConfigTable,
    Table1Row,
    run_all_tables,
    run_best_config_table,
    run_table1,
)
from repro.experiments.report import (
    best_config_markdown,
    comparison_report,
    table1_markdown,
)
from repro.experiments.sensitivity import (
    SensitivityReport,
    render_sensitivity,
    sweep_parameter,
)
from repro.experiments.tables import render_best_config_table, render_table1

__all__ = [
    "SensitivityReport",
    "best_config_markdown",
    "comparison_report",
    "render_sensitivity",
    "sweep_parameter",
    "table1_markdown",
    "BestConfigRow",
    "BestConfigTable",
    "PAPER_BEST",
    "PAPER_SEQUENTIAL",
    "PAPER_STAGE_TIMES",
    "PaperBestEntry",
    "Table1Row",
    "render_best_config_table",
    "render_table1",
    "run_all_tables",
    "run_best_config_table",
    "run_table1",
]
