"""Sensitivity analysis of the fitted platform parameters.

Table 1 pins most of each platform model down, but a handful of
parameters (aggregate disk bandwidth, coherence penalty, lock handoff,
thrash, join rate) were *fitted* to Tables 2-4.  A reproduction whose
conclusions only hold at the exact fitted values would be fragile; this
module perturbs one parameter at a time, re-runs the configuration
sweep, and reports whether the paper's qualitative conclusions (the
implementation ordering, the win factors) survive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.engine.config import Implementation
from repro.experiments.runner import run_best_config_table
from repro.platforms import PlatformProfile, hypothetical
from repro.simengine import Workload

#: The fitted parameters worth perturbing.
FITTED_PARAMETERS = (
    "aggregate_mbps",
    "shared_coherence",
    "lock_handoff_us",
    "disk_thrash",
    "join_mpairs_per_s",
)


@dataclass
class SensitivityPoint:
    """The sweep outcome at one perturbed parameter value."""

    parameter: str
    scale: float
    value: float
    speedups: Dict[Implementation, float] = field(default_factory=dict)

    def ordering(self) -> List[Implementation]:
        """Implementations from slowest to fastest."""
        return sorted(self.speedups, key=lambda impl: self.speedups[impl])


@dataclass
class SensitivityReport:
    """All points for one (platform, parameter) study."""

    platform: str
    parameter: str
    baseline_value: float
    points: List[SensitivityPoint] = field(default_factory=list)

    def ordering_stable(self) -> bool:
        """Whether every perturbation preserves the baseline ordering."""
        orderings = {tuple(point.ordering()) for point in self.points}
        return len(orderings) == 1

    def speedup_range(self, implementation: Implementation) -> float:
        """Max minus min speed-up of one implementation across points."""
        values = [point.speedups[implementation] for point in self.points]
        return max(values) - min(values)


def sweep_parameter(
    platform: PlatformProfile,
    workload: Workload,
    parameter: str,
    scales: Sequence[float] = (0.5, 0.75, 1.0, 1.5, 2.0),
    max_extractors: int = 8,
    max_updaters: int = 4,
    batches_per_extractor: int = 60,
) -> SensitivityReport:
    """Perturb one fitted parameter multiplicatively and re-sweep.

    ``scales`` multiply the baseline value; each point re-runs the full
    best-configuration search, so optima may move — the question is
    whether the *conclusions* move.
    """
    if parameter not in FITTED_PARAMETERS:
        raise ValueError(
            f"{parameter!r} is not a fitted parameter; "
            f"one of {FITTED_PARAMETERS}"
        )
    baseline = getattr(platform, parameter)
    report = SensitivityReport(
        platform=platform.name, parameter=parameter, baseline_value=baseline
    )
    for scale in scales:
        value = baseline * scale
        variant = _perturbed(platform, parameter, value)
        table = run_best_config_table(
            variant,
            workload,
            max_extractors=max_extractors,
            max_updaters=max_updaters,
            batches_per_extractor=batches_per_extractor,
        )
        point = SensitivityPoint(parameter=parameter, scale=scale, value=value)
        for row in table.rows:
            point.speedups[row.implementation] = row.speedup
        report.points.append(point)
    return report


def _perturbed(
    platform: PlatformProfile, parameter: str, value: float
) -> PlatformProfile:
    overrides = {parameter: value}
    # Keep the profile valid: the aggregate can never fall below the
    # single-stream bandwidth.
    if parameter == "aggregate_mbps" and value < platform.per_stream_mbps:
        overrides[parameter] = platform.per_stream_mbps
    return hypothetical(platform, **overrides)


def render_sensitivity(report: SensitivityReport) -> str:
    """A plain-text table of the study."""
    lines = [
        f"Sensitivity of {report.platform} to {report.parameter} "
        f"(baseline {report.baseline_value:g})",
        f"{'scale':>7}{'value':>10}"
        + "".join(f"{impl.paper_name:>19}" for impl in Implementation)
        + f"{'ordering':>26}",
    ]
    for point in report.points:
        ordering = "<".join(
            str(impl.value) for impl in point.ordering()
        )
        lines.append(
            f"{point.scale:>6.2f}x{point.value:>10.2f}"
            + "".join(
                f"{point.speedups[impl]:>18.2f}x" for impl in Implementation
            )
            + f"{ordering:>26}"
        )
    verdict = (
        "ordering stable across all perturbations"
        if report.ordering_stable()
        else "ORDERING CHANGES under perturbation"
    )
    lines.append(f"-> {verdict}")
    return "\n".join(lines)
