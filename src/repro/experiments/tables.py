"""Rendering of experiment results in the paper's table style."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.engine.config import Implementation
from repro.experiments.paper import PAPER_BEST, PAPER_STAGE_TIMES, PaperBestEntry
from repro.experiments.runner import BestConfigTable, Table1Row


def render_table1(rows: List[Table1Row], compare: bool = True) -> str:
    """Table 1 as text, optionally with the paper's numbers alongside."""
    lines = [
        "Table 1. Execution times for sequential index generation (seconds)",
        f"{'platform':<14}{'filename':>10}{'read':>8}{'read+ext':>10}{'update':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row.platform:<14}{row.filename_generation:>10.1f}"
            f"{row.read_files:>8.1f}{row.read_and_extract:>10.1f}"
            f"{row.index_update:>8.1f}"
        )
        if compare and row.platform in PAPER_STAGE_TIMES:
            f, r, e, u = PAPER_STAGE_TIMES[row.platform]
            lines.append(
                f"{'  (paper)':<14}{f:>10.1f}{r:>8.1f}{e:>10.1f}{u:>8.1f}"
            )
    return "\n".join(lines)


def render_best_config_table(
    table: BestConfigTable, compare: bool = True
) -> str:
    """A Table 2/3/4 as text, optionally with the paper alongside."""
    paper: Optional[Dict[Implementation, PaperBestEntry]] = (
        PAPER_BEST.get(table.platform) if compare else None
    )
    lines = [
        f"Best configurations on {table.platform} "
        f"(sequential: {table.sequential_s:.1f}s)",
        f"{'':<18}{'best config.':>14}{'exec time (s)':>15}"
        f"{'speed-up':>10}{'variance':>10}",
        f"{'Sequential':<18}{'-':>14}{table.sequential_s:>15.1f}"
        f"{'-':>10}{'-':>10}",
    ]
    for row in table.rows:
        lines.append(
            f"{row.implementation.paper_name:<18}{str(row.config):>14}"
            f"{row.exec_time_s:>15.1f}{row.speedup:>10.2f}"
            f"{row.variance_vs_impl1_pct:>+9.1f}%"
        )
        if paper is not None:
            entry = paper[row.implementation]
            lines.append(
                f"{'  (paper)':<18}{str(entry.config):>14}"
                f"{entry.exec_time_s:>15.1f}{entry.speedup:>10.2f}"
                f"{entry.variance_vs_impl1_pct:>+9.1f}%"
            )
    return "\n".join(lines)
