"""Terminal plotting for the studies.

The paper has no figures, but the extension studies (core-count
scaling, sensitivity, query serving) are naturally curves.  This module
renders them as dependency-free ASCII charts: a multi-series line chart
and a labelled horizontal bar chart, both used by the examples and the
benchmark result files.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

_MARKERS = "ox+*#@%&"


def line_chart(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Plot one or more (x, y) series as an ASCII chart.

    Each series gets a marker from ``o x + * ...``; the legend maps
    markers to names.  Axes are linear; points are nearest-cell plotted
    (later series overwrite earlier ones on collisions).
    """
    if not series or all(not points for points in series.values()):
        return "(no data)"
    if width < 10 or height < 4:
        raise ValueError("chart too small")
    points_all = [p for points in series.values() for p in points]
    x_low = min(x for x, _ in points_all)
    x_high = max(x for x, _ in points_all)
    y_low = min(y for _, y in points_all)
    y_high = max(y for _, y in points_all)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for i, (name, points) in enumerate(series.items()):
        marker = _MARKERS[i % len(_MARKERS)]
        for x, y in points:
            column = int((x - x_low) / x_span * (width - 1))
            row = height - 1 - int((y - y_low) / y_span * (height - 1))
            grid[row][column] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_high:g}"
    bottom_label = f"{y_low:g}"
    gutter = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label
        elif row_index == height - 1:
            label = bottom_label
        else:
            label = ""
        lines.append(f"{label:>{gutter}} |" + "".join(row))
    lines.append(" " * gutter + " +" + "-" * width)
    x_axis = f"{x_low:g}" + " " * max(1, width - len(f"{x_low:g}{x_high:g}") - 1) + f"{x_high:g}"
    lines.append(" " * gutter + "  " + x_axis)
    if x_label or y_label:
        lines.append(" " * gutter + f"  x: {x_label}   y: {y_label}".rstrip())
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * gutter + "  " + legend)
    return "\n".join(lines)


def bar_chart(
    values: Sequence[Tuple[str, float]],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal bar chart of (label, value) pairs."""
    if not values:
        return "(no data)"
    if width < 5:
        raise ValueError("chart too small")
    peak = max(value for _, value in values)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label, _ in values)
    lines = [title] if title else []
    for label, value in values:
        bar = "#" * max(0, int(value / peak * width))
        lines.append(f"{label:<{label_width}} |{bar} {value:g}{unit}")
    return "\n".join(lines)
