"""The paper's reported numbers (Tables 1-4), as data.

Single source of truth for the comparison reports in EXPERIMENTS.md and
for the test suite's shape assertions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.engine.config import Implementation, ThreadConfig

#: Table 1 — sequential stage execution times in seconds:
#: (filename generation, read files, read files + extract terms, index update)
PAPER_STAGE_TIMES: Dict[str, Tuple[float, float, float, float]] = {
    "quad-core": (5.0, 77.0, 88.0, 22.0),
    "octo-core": (4.0, 47.0, 61.0, 29.0),
    "manycore-32": (5.0, 73.0, 80.0, 28.0),
}

#: Sequential implementation totals quoted in section 4.
PAPER_SEQUENTIAL: Dict[str, float] = {
    "quad-core": 220.0,
    "octo-core": 105.0,
    "manycore-32": 90.0,
}


@dataclass(frozen=True)
class PaperBestEntry:
    """One row of Tables 2-4."""

    config: ThreadConfig
    exec_time_s: float
    speedup: float
    variance_vs_impl1_pct: float


#: Tables 2-4 — best configuration per (platform, implementation).
PAPER_BEST: Dict[str, Dict[Implementation, PaperBestEntry]] = {
    "quad-core": {
        Implementation.SHARED_LOCKED: PaperBestEntry(
            ThreadConfig(3, 1, 0), 46.7, 4.71, 0.0
        ),
        Implementation.REPLICATED_JOINED: PaperBestEntry(
            ThreadConfig(3, 5, 1), 46.9, 4.70, -0.21
        ),
        Implementation.REPLICATED_UNJOINED: PaperBestEntry(
            ThreadConfig(3, 2, 0), 46.4, 4.74, 0.85
        ),
    },
    "octo-core": {
        Implementation.SHARED_LOCKED: PaperBestEntry(
            ThreadConfig(3, 2, 0), 59.5, 1.76, 0.0
        ),
        Implementation.REPLICATED_JOINED: PaperBestEntry(
            ThreadConfig(6, 2, 1), 57.7, 1.82, 3.4
        ),
        Implementation.REPLICATED_UNJOINED: PaperBestEntry(
            ThreadConfig(6, 2, 0), 49.5, 2.12, 16.5
        ),
    },
    "manycore-32": {
        Implementation.SHARED_LOCKED: PaperBestEntry(
            ThreadConfig(8, 4, 0), 45.9, 1.96, 0.0
        ),
        Implementation.REPLICATED_JOINED: PaperBestEntry(
            ThreadConfig(8, 4, 1), 36.4, 2.47, 26.0
        ),
        Implementation.REPLICATED_UNJOINED: PaperBestEntry(
            ThreadConfig(9, 4, 0), 25.7, 3.50, 78.6
        ),
    },
}

#: The paper's benchmark description (section 3).
PAPER_BENCHMARK_FILES = 51_000
PAPER_BENCHMARK_MEGABYTES = 869.0
PAPER_BENCHMARK_LARGE_FILES = 5
