"""Experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.autotune import ConfigurationSpace, ExhaustiveSearch
from repro.engine.config import Implementation, ThreadConfig
from repro.platforms import ALL_PLATFORMS, PlatformProfile
from repro.simengine import SimPipeline, Workload


@dataclass(frozen=True)
class Table1Row:
    """One platform's sequential stage times."""

    platform: str
    filename_generation: float
    read_files: float
    read_and_extract: float
    index_update: float


@dataclass(frozen=True)
class BestConfigRow:
    """One implementation's best result on a platform (Tables 2-4)."""

    implementation: Implementation
    config: ThreadConfig
    exec_time_s: float
    speedup: float
    variance_vs_impl1_pct: float


@dataclass
class BestConfigTable:
    """A full Table 2/3/4: sequential baseline plus the three rows."""

    platform: str
    sequential_s: float
    rows: List[BestConfigRow] = field(default_factory=list)

    def row_for(self, implementation: Implementation) -> BestConfigRow:
        """The row of the given implementation."""
        for row in self.rows:
            if row.implementation is implementation:
                return row
        raise KeyError(implementation)


def default_workload() -> Workload:
    """The paper-scale synthetic workload (51,000 files / 869 MB)."""
    return Workload.synthesize()


def run_table1(
    workload: Optional[Workload] = None,
    platforms: Sequence[PlatformProfile] = ALL_PLATFORMS,
) -> List[Table1Row]:
    """Regenerate Table 1: isolated sequential stage times per platform."""
    workload = workload or default_workload()
    rows = []
    for platform in platforms:
        times = SimPipeline(platform, workload).stage_times()
        rows.append(
            Table1Row(
                platform=platform.name,
                filename_generation=times.filename_generation,
                read_files=times.read_files,
                read_and_extract=times.read_and_extract,
                index_update=times.index_update,
            )
        )
    return rows


def run_best_config_table(
    platform: PlatformProfile,
    workload: Optional[Workload] = None,
    max_extractors: int = 12,
    max_updaters: int = 6,
    max_joiners: int = 2,
    batches_per_extractor: int = 200,
) -> BestConfigTable:
    """Regenerate one of Tables 2-4 for ``platform``.

    Follows the paper's methodology: run every valid thread-count
    combination for each implementation (exhaustive sweep — the
    simulator is deterministic, so the paper's 5-run averaging is not
    needed) and report the best, with speed-ups against the naive
    sequential implementation and the variance-vs-Implementation-1
    column the paper prints.
    """
    workload = workload or default_workload()
    pipeline = SimPipeline(
        platform, workload, batches_per_extractor=batches_per_extractor
    )
    sequential_s = pipeline.run_sequential(naive=True).total_s

    table = BestConfigTable(platform=platform.name, sequential_s=sequential_s)
    search = ExhaustiveSearch()
    best: Dict[Implementation, BestConfigRow] = {}
    for implementation in Implementation:
        space = ConfigurationSpace(
            implementation,
            max_extractors=max_extractors,
            max_updaters=max_updaters,
            max_joiners=max_joiners,
        )
        result = search.run(
            space,
            lambda config, impl=implementation: pipeline.run(impl, config).total_s,
        )
        best[implementation] = BestConfigRow(
            implementation=implementation,
            config=result.best_config,
            exec_time_s=result.best_value,
            speedup=sequential_s / result.best_value,
            variance_vs_impl1_pct=0.0,
        )

    impl1_speedup = best[Implementation.SHARED_LOCKED].speedup
    for implementation in Implementation:
        row = best[implementation]
        variance = (row.speedup / impl1_speedup - 1.0) * 100.0
        table.rows.append(
            BestConfigRow(
                implementation=row.implementation,
                config=row.config,
                exec_time_s=row.exec_time_s,
                speedup=row.speedup,
                variance_vs_impl1_pct=variance,
            )
        )
    return table


def run_all_tables(
    workload: Optional[Workload] = None,
    platforms: Sequence[PlatformProfile] = ALL_PLATFORMS,
    **sweep_kwargs,
) -> Dict[str, object]:
    """Regenerate every table; returns {'table1': [...], '<platform>': table}."""
    workload = workload or default_workload()
    results: Dict[str, object] = {"table1": run_table1(workload, platforms)}
    for platform in platforms:
        results[platform.name] = run_best_config_table(
            platform, workload, **sweep_kwargs
        )
    return results
