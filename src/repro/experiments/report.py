"""Markdown comparison reports: paper vs. this reproduction.

:func:`comparison_report` renders the output of
:func:`repro.experiments.runner.run_all_tables` into the
paper-vs-measured markdown that EXPERIMENTS.md embeds, so the document
can be regenerated from a fresh run (CLI: ``tables --markdown``).
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.paper import (
    PAPER_BEST,
    PAPER_SEQUENTIAL,
    PAPER_STAGE_TIMES,
)
from repro.experiments.runner import BestConfigTable, Table1Row


def table1_markdown(rows: List[Table1Row]) -> str:
    """Table 1 as a markdown paper-vs-measured table."""
    lines = [
        "| platform | stage | paper (s) | measured (s) |",
        "|---|---|---:|---:|",
    ]
    stages = (
        ("filename generation", "filename_generation", 0),
        ("read files", "read_files", 1),
        ("read + extract", "read_and_extract", 2),
        ("index update", "index_update", 3),
    )
    for row in rows:
        paper = PAPER_STAGE_TIMES.get(row.platform)
        for label, attribute, paper_idx in stages:
            paper_value = f"{paper[paper_idx]:.1f}" if paper else "-"
            lines.append(
                f"| {row.platform} | {label} | {paper_value} "
                f"| {getattr(row, attribute):.1f} |"
            )
    return "\n".join(lines)


def best_config_markdown(table: BestConfigTable) -> str:
    """One best-config table as markdown, with the paper columns."""
    paper = PAPER_BEST.get(table.platform, {})
    paper_seq = PAPER_SEQUENTIAL.get(table.platform)
    header = (
        f"Sequential baseline: paper "
        f"{paper_seq:.1f} s, measured {table.sequential_s:.1f} s."
        if paper_seq is not None
        else f"Sequential baseline: {table.sequential_s:.1f} s."
    )
    lines = [
        header,
        "",
        "| implementation | paper config | paper time | paper speed-up "
        "| measured config | measured time | measured speed-up |",
        "|---|---|---:|---:|---|---:|---:|",
    ]
    for row in table.rows:
        entry = paper.get(row.implementation)
        paper_cells = (
            f"| {entry.config} | {entry.exec_time_s:.1f} | {entry.speedup:.2f} "
            if entry
            else "| - | - | - "
        )
        lines.append(
            f"| {row.implementation.paper_name} "
            + paper_cells
            + f"| {row.config} | {row.exec_time_s:.1f} "
            f"| {row.speedup:.2f} |"
        )
    return "\n".join(lines)


def comparison_report(results: Dict[str, object]) -> str:
    """Full markdown report from :func:`run_all_tables` output."""
    sections = [
        "# Reproduction report: paper vs. measured",
        "",
        "## Table 1 — sequential stage times",
        "",
        table1_markdown(results["table1"]),
    ]
    table_number = 2
    for key, value in results.items():
        if key == "table1":
            continue
        sections += [
            "",
            f"## Table {table_number} — best configurations on {key}",
            "",
            best_config_markdown(value),
        ]
        table_number += 1
    sections += [
        "",
        "## Verdict",
        "",
        _verdict(results),
    ]
    return "\n".join(sections)


def _verdict(results: Dict[str, object]) -> str:
    """One-paragraph automatic pass/fail summary."""
    worst = 0.0
    orderings_ok = True
    for key, value in results.items():
        if key == "table1" or key not in PAPER_BEST:
            continue
        table: BestConfigTable = value
        speedups = {}
        for row in table.rows:
            entry = PAPER_BEST[key][row.implementation]
            worst = max(worst, abs(row.speedup / entry.speedup - 1.0))
            speedups[row.implementation] = row.speedup
        paper_order = sorted(
            PAPER_BEST[key], key=lambda impl: PAPER_BEST[key][impl].speedup
        )
        measured_order = sorted(speedups, key=lambda impl: speedups[impl])
        # The 4-core machine is a statistical tie in the paper itself,
        # so ordering is only meaningful where the paper's gaps are.
        if key != "quad-core" and paper_order != measured_order:
            orderings_ok = False
    ordering_text = (
        "All implementation orderings match the paper."
        if orderings_ok
        else "WARNING: at least one implementation ordering deviates."
    )
    return (
        f"{ordering_text} The largest speed-up deviation from the paper "
        f"is {worst * 100:.1f} %."
    )
