"""Implementation 2 across OS processes: the GIL-free "Join Forces" engine.

The three threaded engines interleave on one interpreter because of the
GIL; their thread counts change scheduling, not parallelism.  Of the
paper's designs, Implementation 2 is the one whose stages 2-3 share *no*
mutable state — each writer owns a private replica and a barrier
separates build from join — so it is the one design that maps cleanly
onto processes:

1. stage 1 runs in the parent and splits the filename list into ``x``
   round-robin batches (any :mod:`repro.distribute` strategy works);
2. a ``multiprocessing`` pool of ``x`` workers each runs read → scan →
   dedup → private-replica update in its own interpreter
   (:func:`repro.engine.procworker.build_replica`) and ships its replica
   back as RWIRE1 wire bytes;
3. the parent joins: with ``z = 1`` each blob is folded straight into
   the final index (:func:`repro.index.binfmt.merge_wire_replica`, no
   intermediate indices); with ``z > 1`` the replicas are materialized
   and merged by the existing pairwise reduction tree with ``z``
   threads per level.

Workers and parent exchange only picklable data — file-path batches and
tokenizer configuration in, wire bytes out — so the backend works under
both ``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import List, Optional, Sequence, Tuple

from repro.distribute.base import DistributionStrategy
from repro.distribute.roundrobin import RoundRobinStrategy
from repro.engine.config import Implementation, ThreadConfig
from repro.engine.procworker import (
    FilesystemSpec,
    TokenizerSpec,
    WorkerBatch,
    build_replica,
)
from repro.engine.results import BuildReport, StageTimings
from repro.fsmodel.nodes import FileRef
from repro.index.binfmt import load_index_wire, merge_wire_replica
from repro.index.inverted import InvertedIndex
from repro.index.merge import join_pairwise_tree
from repro.text.tokenizer import Tokenizer


def available_cpus() -> int:
    """CPUs this process may use (affinity-aware where supported)."""
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:
            pass
    return os.cpu_count() or 1


def validate_worker_count(
    workers: int, oversubscribe: bool = False, cpus: Optional[int] = None
) -> None:
    """Reject pool sizes that would hang or silently degrade.

    A pool larger than the machine's CPU count cannot run in parallel —
    the extra processes only add fork, memory and scheduling cost — so
    it is almost always a configuration mistake.  ``oversubscribe=True``
    turns the error off for the cases where it is deliberate (CI boxes
    with one core, scheduling experiments).
    """
    if not isinstance(workers, int) or isinstance(workers, bool):
        raise TypeError(f"worker count must be an int, got {type(workers).__name__}")
    if workers < 1:
        raise ValueError(f"worker count must be at least 1, got {workers}")
    limit = cpus if cpus is not None else available_cpus()
    if workers > limit and not oversubscribe:
        raise ValueError(
            f"{workers} worker processes exceed the {limit} CPU(s) "
            "available; a process pool cannot go faster than the cores "
            "it runs on — lower x, or pass oversubscribe=True if the "
            "oversubscription is deliberate"
        )


class ProcessReplicatedIndexer:
    """Implementation 2 semantics on a pool of worker processes."""

    implementation = Implementation.REPLICATED_JOINED

    def __init__(
        self,
        fs,
        tokenizer: Optional[Tokenizer] = None,
        strategy: Optional[DistributionStrategy] = None,
        buffer_capacity: int = 256,
        registry=None,
        dynamic: Optional[str] = None,
        oversubscribe: bool = False,
        start_method: Optional[str] = None,
    ) -> None:
        if dynamic is not None:
            raise ValueError(
                "the process backend distributes work as static batches; "
                "dynamic acquisition across process boundaries "
                f"({dynamic!r}) is not supported"
            )
        self.fs = fs
        self.tokenizer = tokenizer or Tokenizer()
        self.strategy = strategy or RoundRobinStrategy()
        # Accepted for signature parity with the threaded engines; there
        # is no cross-process buffer stage.
        self.buffer_capacity = buffer_capacity
        self.registry = registry
        self.oversubscribe = oversubscribe
        if start_method is not None:
            if start_method not in multiprocessing.get_all_start_methods():
                raise ValueError(
                    f"start method {start_method!r} not available on this "
                    f"platform; choose from "
                    f"{multiprocessing.get_all_start_methods()}"
                )
            self.start_method = start_method
        else:
            # fork is the cheap path (no re-import, instant corpus
            # visibility); fall back to the platform default elsewhere.
            methods = multiprocessing.get_all_start_methods()
            self.start_method = "fork" if "fork" in methods else methods[0]

    # -- public API ------------------------------------------------------

    def build(self, config: ThreadConfig, root: str = "") -> BuildReport:
        """Run the full pipeline under ``config`` and report the result."""
        config = config.with_backend("process")
        config.validate_for(self.implementation)
        validate_worker_count(config.extractors, self.oversubscribe)

        timings = StageTimings()
        start = time.perf_counter()

        t0 = time.perf_counter()
        files = list(self.fs.list_files(root))
        timings.filename_generation = time.perf_counter() - t0

        index, join_s, update_s, extract_s = self._build(config, files)
        timings.join = join_s
        timings.update = update_s
        timings.extraction = extract_s

        wall = time.perf_counter() - start
        return BuildReport(
            implementation=self.implementation,
            config=config,
            index=index,
            wall_time=wall,
            timings=timings,
            file_count=len(files),
            term_count=len(index),
            posting_count=index.posting_count,
            extractor_times=list(self.last_extractor_times),
        )

    # -- stages ----------------------------------------------------------

    def _build(
        self, config: ThreadConfig, files: Sequence[FileRef]
    ) -> Tuple[InvertedIndex, float, float, float]:
        blobs, pool_s = self._run_workers(config, files)
        # The pool's completion is the barrier; now the join phase runs
        # in the parent.
        t0 = time.perf_counter()
        if config.joiners == 1:
            index = InvertedIndex()
            for blob in blobs:
                merge_wire_replica(index, blob)
        else:
            replicas = [load_index_wire(blob) for blob in blobs]
            index = join_pairwise_tree(
                replicas, threads_per_level=config.joiners
            )
        join_s = time.perf_counter() - t0
        # Extraction and update are fused inside each worker, exactly
        # like the threaded y = 0 case, which reports both stages as the
        # wall time of the combined phase.
        return index, join_s, pool_s, pool_s

    def _run_workers(
        self, config: ThreadConfig, files: Sequence[FileRef]
    ) -> Tuple[List[bytes], float]:
        """Fan the batches out to the pool; returns (blobs, elapsed)."""
        workers = config.extractors
        distribution = self.strategy.distribute(files, workers)
        fs_spec = FilesystemSpec.from_filesystem(self.fs)
        tokenizer_spec = TokenizerSpec.from_tokenizer(self.tokenizer)
        batches = [
            WorkerBatch(
                fs=fs_spec,
                paths=tuple(ref.path for ref in assignment),
                tokenizer=tokenizer_spec,
                registry=self.registry,
            )
            for assignment in distribution.assignments
        ]

        context = multiprocessing.get_context(self.start_method)
        t0 = time.perf_counter()
        with context.Pool(processes=workers) as pool:
            results = pool.map(build_replica, batches, chunksize=1)
        elapsed = time.perf_counter() - t0
        self.last_extractor_times = [r.elapsed for r in results]
        return [r.replica for r in results], elapsed
