"""Implementation 2 across OS processes: the GIL-free "Join Forces" engine.

The three threaded engines interleave on one interpreter because of the
GIL; their thread counts change scheduling, not parallelism.  Of the
paper's designs, Implementation 2 is the one whose stages 2-3 share *no*
mutable state — each writer owns a private replica and a barrier
separates build from join — so it is the one design that maps cleanly
onto processes:

1. stage 1 runs in the parent and splits the filename list into ``x``
   round-robin batches (any :mod:`repro.distribute` strategy works);
2. a process pool of up to ``x`` workers each runs read → scan →
   dedup → private-replica update in its own interpreter
   (:func:`repro.engine.procworker.build_replica`) and ships its replica
   back as RWIRE1 wire bytes;
3. the parent joins: with ``z = 1`` each blob is folded straight into
   the final index (:func:`repro.index.binfmt.merge_wire_replica`, no
   intermediate indices); with ``z > 1`` the replicas are materialized
   and merged by the existing pairwise reduction tree with ``z``
   threads per level.

Workers and parent exchange only picklable data — file-path batches and
tokenizer configuration in, wire bytes out — so the backend works under
both ``fork`` and ``spawn`` start methods.

Fault tolerance
---------------

A build over a real corpus must *degrade*, not abort.  The backend
dispatches each batch asynchronously and recovers per
:class:`~repro.engine.faults.FaultPolicy`:

* **per-file errors** — under ``on_error="skip"`` workers catch
  read/extract/tokenize errors per file and return
  :class:`~repro.engine.faults.FileFailure` records instead of raising
  across the pool boundary (``"strict"`` keeps the original
  fail-the-build behaviour);
* **worker crashes and hangs** — a batch whose worker dies
  (``BrokenProcessPool``) or whose dispatch round exceeds
  ``batch_timeout`` is retried with bounded attempts and backoff,
  split in half on every retry to isolate poisoned files; once a batch
  exhausts its attempts the remaining sub-batch is indexed *in the
  parent* as last resort, so the build always terminates with a
  correct index over the surviving files;
* **pool unavailable** — if worker processes cannot be created at all,
  the build degrades to the threaded Implementation 2 engine with a
  ``RuntimeWarning`` instead of crashing (``BuildReport.degraded``).
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.distribute.base import DistributionStrategy
from repro.distribute.roundrobin import RoundRobinStrategy
from repro.engine.config import Implementation, ThreadConfig
from repro.engine.faults import (
    FaultPolicy,
    PoolUnavailableError,
    reconcile_failures,
)
from repro.engine.base import warn_legacy_extraction_kwargs
from repro.engine.procworker import (
    ChunkBatch,
    ChunkResult,
    FilesystemSpec,
    WorkerBatch,
    WorkerResult,
    build_replica,
    extract_chunk,
)
from repro.engine.results import BuildReport, StageTimings, build_metrics
from repro.extract.registry import resolve_extractor
from repro.extract.split import SplitJoiner, expand_file_refs
from repro.obs import recorder as obsrec
from repro.obs.spans import rebase_spans
from repro.fsmodel.nodes import ChunkRef, FileRef
from repro.index.binfmt import load_index_wire, merge_wire_replica
from repro.index.inverted import InvertedIndex
from repro.index.merge import join_pairwise_tree
from repro.text.dedup import dedup_terms
from repro.text.termblock import TermBlock
from repro.text.tokenizer import Tokenizer


def available_cpus() -> int:
    """CPUs this process may use (affinity-aware where supported)."""
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:
            pass
    return os.cpu_count() or 1


def validate_worker_count(
    workers: int, oversubscribe: bool = False, cpus: Optional[int] = None
) -> None:
    """Reject pool sizes that would hang or silently degrade.

    A pool larger than the machine's CPU count cannot run in parallel —
    the extra processes only add fork, memory and scheduling cost — so
    it is almost always a configuration mistake.  ``oversubscribe=True``
    turns the error off for the cases where it is deliberate (CI boxes
    with one core, scheduling experiments).
    """
    if not isinstance(workers, int) or isinstance(workers, bool):
        raise TypeError(f"worker count must be an int, got {type(workers).__name__}")
    if workers < 1:
        raise ValueError(f"worker count must be at least 1, got {workers}")
    limit = cpus if cpus is not None else available_cpus()
    if workers > limit and not oversubscribe:
        raise ValueError(
            f"{workers} worker processes exceed the {limit} CPU(s) "
            "available; a process pool cannot go faster than the cores "
            "it runs on — lower x, or pass oversubscribe=True if the "
            "oversubscription is deliberate"
        )


class _Job:
    """One dispatchable unit: a batch, its worker slot, its attempt."""

    __slots__ = ("batch", "slot", "attempt")

    def __init__(self, batch: WorkerBatch, slot: int, attempt: int) -> None:
        self.batch = batch
        self.slot = slot
        self.attempt = attempt

    def split(self) -> List["_Job"]:
        """The retry shape: halves (to isolate poisoned files) at
        attempt + 1.  A single-file batch — and a chunk job, which is
        already one indivisible unit of one file — cannot split
        further and just re-enters the ladder."""
        if isinstance(self.batch, ChunkBatch):
            return [_Job(self.batch, self.slot, self.attempt + 1)]
        paths = self.batch.paths
        if len(paths) <= 1:
            return [_Job(self.batch, self.slot, self.attempt + 1)]
        mid = len(paths) // 2
        return [
            _Job(replace(self.batch, paths=paths[:mid]), self.slot, self.attempt + 1),
            _Job(replace(self.batch, paths=paths[mid:]), self.slot, self.attempt + 1),
        ]

    @property
    def fn(self):
        """The module-level worker body this job dispatches to."""
        if isinstance(self.batch, ChunkBatch):
            return extract_chunk
        return build_replica


class ProcessReplicatedIndexer:
    """Implementation 2 semantics on a pool of worker processes."""

    implementation = Implementation.REPLICATED_JOINED

    def __init__(
        self,
        fs,
        tokenizer: Optional[Tokenizer] = None,
        strategy: Optional[DistributionStrategy] = None,
        buffer_capacity: int = 256,
        registry=None,
        dynamic: Optional[str] = None,
        oversubscribe: bool = False,
        start_method: Optional[str] = None,
        on_error: str = "strict",
        max_retries: int = 2,
        batch_timeout: Optional[float] = None,
        retry_backoff: float = 0.05,
        extractor=None,
        split_threshold: Optional[int] = None,
    ) -> None:
        if dynamic is not None:
            raise ValueError(
                "the process backend distributes work as static batches; "
                "dynamic acquisition across process boundaries "
                f"({dynamic!r}) is not supported"
            )
        self.fs = fs
        # One Extractor seam (see repro.extract); the legacy
        # tokenizer=/registry= kwargs warn and fold in.
        warn_legacy_extraction_kwargs(tokenizer, registry)
        self.extractor = resolve_extractor(extractor, tokenizer, registry)
        self.tokenizer = self.extractor.tokenizer
        self.registry = self.extractor.registry
        if split_threshold is not None and split_threshold < 1:
            raise ValueError(
                f"split_threshold must be positive, got {split_threshold}"
            )
        self.split_threshold = split_threshold
        self.strategy = strategy or RoundRobinStrategy()
        # Accepted for signature parity with the threaded engines; there
        # is no cross-process buffer stage.
        self.buffer_capacity = buffer_capacity
        self.oversubscribe = oversubscribe
        self.policy = FaultPolicy(
            on_error=on_error,
            max_retries=max_retries,
            batch_timeout=batch_timeout,
            retry_backoff=retry_backoff,
        )
        # Per-build observability, valid before the first build and
        # reset by every build (including failed ones).
        self.last_extractor_times: List[float] = []
        self.last_failures: List = []
        self.last_retries = 0
        self._succeeded_paths: set = set()
        self._recorder = obsrec.Recorder()
        if start_method is not None:
            if start_method not in multiprocessing.get_all_start_methods():
                raise ValueError(
                    f"start method {start_method!r} not available on this "
                    f"platform; choose from "
                    f"{multiprocessing.get_all_start_methods()}"
                )
            self.start_method = start_method
        else:
            # fork is the cheap path (no re-import, instant corpus
            # visibility); fall back to the platform default elsewhere.
            methods = multiprocessing.get_all_start_methods()
            self.start_method = "fork" if "fork" in methods else methods[0]

    # -- public API ------------------------------------------------------

    def build(self, config: ThreadConfig, root: str = "") -> BuildReport:
        """Run the full pipeline under ``config`` and report the result."""
        config = config.with_backend("process")
        config.validate_for(self.implementation)
        validate_worker_count(config.extractors, self.oversubscribe)

        self.last_extractor_times = [0.0] * config.extractors
        self.last_failures = []
        self.last_retries = 0
        self._succeeded_paths = set()
        self._chunk_blocks: List[TermBlock] = []
        rec = self._recorder = obsrec.Recorder()

        root_span = rec.span(
            "build",
            implementation=self.implementation.name,
            config=str(config),
            backend="process",
        )
        try:
            with root_span:
                with rec.span("phase.stage1"):
                    files = list(self.fs.list_files(root))
                index = self._build(config, files)
        except PoolUnavailableError as exc:
            return self._degrade(config, root, exc)

        # A file the recovery ladder failed once but indexed on a later
        # attempt (or in the parent) must not count as a failure — the
        # report's indexed_file_count subtracts failed paths.
        self.last_failures = reconcile_failures(
            self.last_failures, self._succeeded_paths
        )

        spans = rec.spans
        wall = root_span.duration
        metrics = build_metrics(
            file_count=len(files),
            byte_count=sum(ref.size for ref in files),
            term_count=len(index),
            posting_count=index.posting_count,
            wall_time=wall,
            failure_count=len(self.last_failures),
            retries=self.last_retries,
        )
        if obsrec.enabled():
            obsrec.get_recorder().absorb(spans)
        return BuildReport(
            implementation=self.implementation,
            config=config,
            index=index,
            wall_time=wall,
            timings=StageTimings.from_spans(spans),
            file_count=len(files),
            term_count=len(index),
            posting_count=index.posting_count,
            extractor_times=list(self.last_extractor_times),
            failures=list(self.last_failures),
            retries=self.last_retries,
            spans=spans,
            metrics=metrics,
        )

    # -- graceful degradation --------------------------------------------

    def _degrade(
        self, config: ThreadConfig, root: str, cause: PoolUnavailableError
    ) -> BuildReport:
        """Pool creation failed: run the threaded Implementation 2."""
        warnings.warn(
            f"process pool unavailable ({cause}); degrading to the "
            "threaded Implementation 2 engine",
            RuntimeWarning,
            stacklevel=3,
        )
        from repro.engine.impl2 import ReplicatedJoinedIndexer

        indexer = ReplicatedJoinedIndexer(
            self.fs,
            extractor=self.extractor,
            strategy=self.strategy,
            buffer_capacity=self.buffer_capacity,
            on_error=self.policy.on_error,
            split_threshold=self.split_threshold,
        )
        report = indexer.build(config.with_backend("thread"), root)
        report.degraded = True
        if report.metrics:
            report.metrics["build.degraded"] = 1.0
        self.last_extractor_times = list(report.extractor_times)
        self.last_failures = list(report.failures)
        return report

    # -- stages ----------------------------------------------------------

    def _build(
        self, config: ThreadConfig, files: Sequence[FileRef]
    ) -> InvertedIndex:
        # Extraction and update are fused inside each worker; attribute
        # the pool phase to extraction only (no phase.update span, no
        # inline_update marker) so StageTimings.total does not
        # double-count the entire parallel phase.
        with self._recorder.span("phase.extract"):
            blobs = self._run_workers(config, files)
        # The pool's completion is the barrier; now the join phase runs
        # in the parent.
        with self._recorder.span("phase.join", joiners=config.joiners):
            if not blobs:
                index = InvertedIndex()
            elif config.joiners == 1:
                index = InvertedIndex()
                for blob in blobs:
                    merge_wire_replica(index, blob)
            else:
                replicas = [load_index_wire(blob) for blob in blobs]
                index = join_pairwise_tree(
                    replicas, threads_per_level=config.joiners
                )
            # Split huge files were unioned from their chunks in the
            # parent; their term blocks update the index here, in the
            # join phase (serialization canonicalizes order, so block
            # position relative to the merged replicas is immaterial).
            for block in self._chunk_blocks:
                index.add_block(block)
        return index

    def _run_workers(
        self, config: ThreadConfig, files: Sequence[FileRef]
    ) -> List[bytes]:
        """Fan the batches out to the pool; returns the replica blobs.

        Dispatches per-batch (not one blocking ``map``) and walks the
        recovery ladder on crash/timeout: retry → split → in-parent.
        """
        workers = config.extractors
        policy = self.policy
        if self.split_threshold is not None:
            # Huge-file divide-and-conquer: chunks of an oversized file
            # distribute across worker slots like ordinary files, so
            # one giant file no longer pins a single worker's tail.
            files, split_paths = expand_file_refs(
                self.fs, files, self.extractor, self.split_threshold
            )
            if split_paths:
                obsrec.metrics().counter("extract.files_split").inc(
                    len(split_paths)
                )
        distribution = self.strategy.distribute(files, workers)
        fs_spec = FilesystemSpec.from_filesystem(self.fs)
        extractor_spec = self.extractor.spec()
        rec = self._recorder
        trace = obsrec.enabled()

        jobs: List[_Job] = []
        for slot, assignment in enumerate(distribution.assignments):
            if not assignment:
                # Fewer files than workers: nothing to fork for this
                # slot; its extractor_times entry stays 0.0 so the
                # imbalance accounting keeps length x.
                continue
            whole = [ref for ref in assignment if not isinstance(ref, ChunkRef)]
            if whole:
                jobs.append(
                    _Job(
                        WorkerBatch(
                            fs=fs_spec,
                            paths=tuple(ref.path for ref in whole),
                            extractor=extractor_spec,
                            on_error=policy.on_error,
                            trace=trace,
                        ),
                        slot,
                        0,
                    )
                )
            for ref in assignment:
                if not isinstance(ref, ChunkRef):
                    continue
                # Each chunk is its own pool job: chunks of one file
                # must be able to land on different workers, which is
                # the entire point of splitting.
                jobs.append(
                    _Job(
                        ChunkBatch(
                            fs=fs_spec,
                            path=ref.path,
                            file_size=ref.file_size,
                            start=ref.start,
                            end=ref.end,
                            index=ref.index,
                            count=ref.count,
                            extractor=extractor_spec,
                            on_error=policy.on_error,
                            trace=trace,
                        ),
                        slot,
                        0,
                    )
                )

        blobs: List[bytes] = []
        joiner = SplitJoiner()

        def absorb_spans(job: _Job, result) -> None:
            if not result.spans:
                return
            # Worker span starts are relative to the worker body's
            # start; perf_counter minus the worker's elapsed time is
            # that instant on the parent's timeline (collection
            # happens promptly after completion).
            offset = time.perf_counter() - result.elapsed
            rebased = []
            for span in rebase_spans(result.spans, offset):
                if span.name in ("extract.worker", "extract.chunk"):
                    span = replace(
                        span,
                        attrs={
                            **span.attrs,
                            "worker": job.slot,
                            "attempt": job.attempt,
                        },
                    )
                rebased.append(span)
            rec.absorb(rebased)

        def collect(job: _Job, result) -> None:
            if isinstance(result, ChunkResult):
                self.last_extractor_times[job.slot] += result.elapsed
                absorb_spans(job, result)
                if result.failure is not None:
                    # One failed chunk poisons the whole file: exactly
                    # one FileFailure, and the joiner never releases a
                    # block for it (no half-indexed documents).
                    if joiner.fail(result.path, result.count):
                        self.last_failures.append(result.failure)
                    return
                whole_terms = joiner.add(
                    result.path, result.index, result.count, result.terms
                )
                if whole_terms is not None:
                    self._chunk_blocks.append(
                        TermBlock(
                            path=result.path,
                            terms=dedup_terms(whole_terms),
                        )
                    )
                    self._succeeded_paths.add(result.path)
                return
            blobs.append(result.replica)
            self.last_extractor_times[job.slot] += result.elapsed
            self.last_failures.extend(result.failures)
            # Paths the batch indexed (vs. recorded as failures); used
            # after the ladder finishes to reconcile the failure list.
            failed = {failure.path for failure in result.failures}
            self._succeeded_paths.update(
                path for path in job.batch.paths if path not in failed
            )
            absorb_spans(job, result)

        # Cap the pool at the number of non-empty batches — forking
        # processes that would only receive empty work is pure cost.
        pool_size = min(workers, len(jobs))

        while jobs:
            dispatch: List[_Job] = []
            for job in jobs:
                if job.attempt > policy.max_retries:
                    # Last resort: run the remaining sub-batch (or
                    # chunk) in the parent so the build terminates no
                    # matter what the pool does.  Per-file errors still
                    # follow ``on_error``; under "strict" they raise,
                    # exactly like the pre-fault-tolerance engine.
                    collect(job, job.fn(job.batch))
                else:
                    dispatch.append(job)
            jobs = []
            if dispatch:
                requeued = self._dispatch_round(dispatch, pool_size, collect)
                if requeued:
                    self.last_retries += len(requeued)
                    if policy.retry_backoff > 0:
                        attempt = min(job.attempt for job in requeued)
                        time.sleep(policy.retry_backoff * attempt)
                    jobs = requeued
        return blobs

    # -- dispatch machinery ----------------------------------------------

    def _create_executor(self, max_workers: int) -> ProcessPoolExecutor:
        """One pool; failures here mean 'degrade to threads'."""
        try:
            context = multiprocessing.get_context(self.start_method)
            return ProcessPoolExecutor(
                max_workers=max_workers, mp_context=context
            )
        except (OSError, ValueError, ImportError) as exc:
            raise PoolUnavailableError(str(exc)) from exc

    def _dispatch_round(
        self,
        dispatch: List[_Job],
        pool_size: int,
        collect: Callable[[_Job, WorkerResult], None],
    ) -> List[_Job]:
        """Run one async round over a fresh pool.

        Collects every completed batch, and returns the jobs that must
        be retried (split, attempt + 1): batches whose worker died and
        batches still unfinished when the round's deadline expired.
        Deterministic worker exceptions (a file error under "strict")
        propagate unchanged — retrying them cannot help.
        """
        policy = self.policy
        executor = self._create_executor(min(pool_size, len(dispatch)))
        requeued: List[_Job] = []
        timed_out = False
        try:
            try:
                futures = {
                    executor.submit(job.fn, job.batch): job
                    for job in dispatch
                }
            except OSError as exc:
                raise PoolUnavailableError(str(exc)) from exc
            deadline = None
            if policy.batch_timeout is not None:
                # Every batch's window starts at submission; rounds with
                # more batches than pool slots queue some batches, so
                # the round deadline scales with the queue depth.
                waves = -(-len(dispatch) // max(pool_size, 1))
                deadline = time.monotonic() + policy.batch_timeout * waves
            not_done = set(futures)
            while not_done:
                if deadline is None:
                    done, not_done = wait(
                        not_done, return_when=FIRST_COMPLETED
                    )
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        # Hung batches: everything unfinished is retried.
                        for future in not_done:
                            requeued.extend(futures[future].split())
                        timed_out = True
                        return requeued
                    done, not_done = wait(
                        not_done,
                        timeout=remaining,
                        return_when=FIRST_COMPLETED,
                    )
                for future in done:
                    job = futures[future]
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        # The worker running some batch died; this
                        # future (and, as the pool collapses, every
                        # pending one) lands here and re-enters the
                        # ladder split in half.
                        requeued.extend(job.split())
                    else:
                        collect(job, result)
            return requeued
        finally:
            if timed_out:
                self._terminate(executor)
            else:
                executor.shutdown(wait=True, cancel_futures=True)

    @staticmethod
    def _terminate(executor: ProcessPoolExecutor) -> None:
        """Hard-stop a pool with hung workers; best effort."""
        processes = list(getattr(executor, "_processes", {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - truly stuck
                process.kill()


class CompactionExecutor:
    """Runs independent compaction merge jobs on a process pool.

    The segmented index's compaction rounds (:func:`repro.index.
    segments.compact_manifest`) produce groups that merge independently
    — the same shape as a build's replica batches, so they get the same
    resilience contract: if the pool cannot be created
    (:class:`PoolUnavailableError`) or dies mid-round
    (``BrokenProcessPool``), the remaining jobs run in-parent instead
    of failing the compaction.  Merges are pure functions of picklable
    plain data, so the fallback is result-identical, just slower.
    """

    def __init__(
        self,
        max_workers: int = 2,
        oversubscribe: bool = True,
        start_method: str = "spawn",
    ) -> None:
        validate_worker_count(max_workers, oversubscribe=oversubscribe)
        self.max_workers = max_workers
        self.start_method = start_method
        self.fallbacks = 0

    def run(self, fn: Callable, payloads: Sequence) -> List:
        """``[fn(p) for p in payloads]``, pool-parallel when possible."""
        if len(payloads) <= 1:
            return [fn(p) for p in payloads]
        try:
            context = multiprocessing.get_context(self.start_method)
            executor = ProcessPoolExecutor(
                max_workers=min(self.max_workers, len(payloads)),
                mp_context=context,
            )
        except (OSError, ValueError, ImportError):
            self.fallbacks += 1
            return [fn(p) for p in payloads]
        results: List = [None] * len(payloads)
        pending = list(range(len(payloads)))
        try:
            futures = {
                executor.submit(fn, payloads[i]): i for i in pending
            }
            for future, i in futures.items():
                results[i] = future.result()
                pending.remove(i)
        except (BrokenProcessPool, OSError):
            # A dead pool fails the round, not the compaction: finish
            # the unfinished jobs in-parent, deterministically.
            self.fallbacks += 1
            for i in pending:
                results[i] = fn(payloads[i])
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        return results
