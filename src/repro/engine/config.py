"""Implementation selection and thread-configuration tuples.

The paper describes every run by a tuple ``(x, y, z)``: the number of
threads used in term extraction, index update, and index join.  A
``y`` of 0 means the extractors update the index inline rather than
passing term blocks through a buffer to dedicated updater threads.

A configuration additionally names its **backend**: ``"thread"`` runs
the tuple on Python threads (the paper's design, GIL-bound), while
``"process"`` runs Implementation 2 across OS worker processes
(:class:`repro.engine.procbackend.ProcessReplicatedIndexer`) — ``x``
worker processes, no separate updater stage (extract and update are
fused inside each worker), ``z`` parent-side joiners.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Iterator, Tuple

BACKENDS = ("thread", "process")


class Implementation(enum.Enum):
    """The three index-sharing designs compared in the paper."""

    SHARED_LOCKED = 1
    REPLICATED_JOINED = 2
    REPLICATED_UNJOINED = 3

    @property
    def paper_name(self) -> str:
        """The label used in the paper's tables."""
        return f"Implementation {self.value}"

    @property
    def joins(self) -> bool:
        """Whether this design has a join phase."""
        return self is Implementation.REPLICATED_JOINED


@dataclass(frozen=True)
class ThreadConfig:
    """The (x, y, z) worker-count tuple of a run, plus its backend."""

    extractors: int
    updaters: int = 0
    joiners: int = 0
    backend: str = "thread"

    def __post_init__(self) -> None:
        for name in ("extractors", "updaters", "joiners"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise TypeError(
                    f"{name} must be an int, got {type(value).__name__}"
                )
        if self.extractors < 1:
            raise ValueError(
                "at least one extractor worker is required, "
                f"got x={self.extractors}"
            )
        if self.updaters < 0 or self.joiners < 0:
            raise ValueError(
                f"worker counts cannot be negative, got y={self.updaters}, "
                f"z={self.joiners}"
            )
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )

    def validate_for(self, implementation: Implementation) -> None:
        """Reject tuples that make no sense for the given implementation.

        Implementations 1 and 3 never join (z must be 0); Implementation
        2 must join (z >= 1).  This matches the tuples the paper reports:
        e.g. (3, 5, 1) for Implementation 2, (3, 2, 0) for 3.

        The process backend only exists for Implementation 2 — it *is*
        the "Join Forces" design, the one whose stages 2-3 need no
        shared mutable state — and it fuses extraction and update
        inside each worker, so ``y`` must be 0.
        """
        if self.backend == "process":
            if implementation is not Implementation.REPLICATED_JOINED:
                raise ValueError(
                    "the process backend implements Implementation 2 "
                    "(replicated + joined) semantics only, got "
                    f"{implementation.paper_name}"
                )
            if self.updaters != 0:
                raise ValueError(
                    "the process backend fuses extraction and index update "
                    "inside each worker process; there is no cross-process "
                    f"updater stage, so y must be 0 (got y={self.updaters})"
                )
        if implementation.joins:
            if self.joiners < 1:
                raise ValueError(
                    f"{implementation.paper_name} joins replicas and needs "
                    f"at least one joiner thread, got z={self.joiners}"
                )
        elif self.joiners != 0:
            raise ValueError(
                f"{implementation.paper_name} never joins; z must be 0, "
                f"got z={self.joiners}"
            )
        if (
            implementation is not Implementation.SHARED_LOCKED
            and self.replica_count < 2
        ):
            raise ValueError(
                f"{implementation.paper_name} replicates the index and needs "
                f"at least two replicas; config {self} yields "
                f"{self.replica_count} (a single-replica run degenerates to "
                "an unshared single-index build)"
            )

    @property
    def replica_count(self) -> int:
        """Number of index replicas a replicated design builds.

        One per updater thread, or one per extractor when extractors
        update inline (y = 0).
        """
        return self.updaters if self.updaters > 0 else self.extractors

    @property
    def uses_buffer(self) -> bool:
        """Whether term blocks flow through a buffer to updater threads."""
        return self.updaters > 0

    @property
    def total_threads(self) -> int:
        """Worker threads/processes across all stages (joiners included)."""
        return self.extractors + self.updaters + self.joiners

    def as_tuple(self) -> Tuple[int, int, int]:
        """The (x, y, z) tuple as the paper prints it."""
        return (self.extractors, self.updaters, self.joiners)

    def with_backend(self, backend: str) -> "ThreadConfig":
        """This tuple on another backend (validated by construction)."""
        if backend == self.backend:
            return self
        return replace(self, backend=backend)

    def __str__(self) -> str:
        tuple_text = f"({self.extractors}, {self.updaters}, {self.joiners})"
        if self.backend == "thread":
            return tuple_text
        return f"{tuple_text}[{self.backend}]"


def enumerate_configs(
    implementation: Implementation,
    max_extractors: int,
    max_updaters: int,
    max_joiners: int = 2,
    backend: str = "thread",
) -> Iterator[ThreadConfig]:
    """All valid (x, y, z) tuples within the given bounds.

    This is the configuration space the paper swept ("Any combination of
    thread counts ... was run 5 times on each system") and the domain of
    the auto-tuner.  With ``backend="process"`` the y > 0 tuples drop
    out automatically (the process backend has no updater stage).
    """
    if max_extractors < 1:
        raise ValueError("max_extractors must be at least 1")
    joiner_range = range(1, max_joiners + 1) if implementation.joins else (0,)
    for x in range(1, max_extractors + 1):
        for y in range(0, max_updaters + 1):
            for z in joiner_range:
                config = ThreadConfig(x, y, z, backend=backend)
                try:
                    config.validate_for(implementation)
                except ValueError:
                    continue
                yield config
