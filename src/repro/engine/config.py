"""Implementation selection and thread-configuration tuples.

The paper describes every run by a tuple ``(x, y, z)``: the number of
threads used in term extraction, index update, and index join.  A
``y`` of 0 means the extractors update the index inline rather than
passing term blocks through a buffer to dedicated updater threads.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Tuple


class Implementation(enum.Enum):
    """The three index-sharing designs compared in the paper."""

    SHARED_LOCKED = 1
    REPLICATED_JOINED = 2
    REPLICATED_UNJOINED = 3

    @property
    def paper_name(self) -> str:
        """The label used in the paper's tables."""
        return f"Implementation {self.value}"

    @property
    def joins(self) -> bool:
        """Whether this design has a join phase."""
        return self is Implementation.REPLICATED_JOINED


@dataclass(frozen=True)
class ThreadConfig:
    """The (x, y, z) thread-count tuple of a run."""

    extractors: int
    updaters: int = 0
    joiners: int = 0

    def __post_init__(self) -> None:
        if self.extractors < 1:
            raise ValueError("at least one extractor thread is required")
        if self.updaters < 0 or self.joiners < 0:
            raise ValueError("thread counts cannot be negative")

    def validate_for(self, implementation: Implementation) -> None:
        """Reject tuples that make no sense for the given implementation.

        Implementations 1 and 3 never join (z must be 0); Implementation
        2 must join (z >= 1).  This matches the tuples the paper reports:
        e.g. (3, 5, 1) for Implementation 2, (3, 2, 0) for 3.
        """
        if implementation.joins:
            if self.joiners < 1:
                raise ValueError(
                    f"{implementation.paper_name} joins replicas and needs "
                    f"at least one joiner thread, got z={self.joiners}"
                )
        elif self.joiners != 0:
            raise ValueError(
                f"{implementation.paper_name} never joins; z must be 0, "
                f"got z={self.joiners}"
            )
        if (
            implementation is not Implementation.SHARED_LOCKED
            and self.replica_count < 2
        ):
            raise ValueError(
                f"{implementation.paper_name} replicates the index and needs "
                f"at least two replicas; config {self} yields "
                f"{self.replica_count} (a single-replica run degenerates to "
                "an unshared single-index build)"
            )

    @property
    def replica_count(self) -> int:
        """Number of index replicas a replicated design builds.

        One per updater thread, or one per extractor when extractors
        update inline (y = 0).
        """
        return self.updaters if self.updaters > 0 else self.extractors

    @property
    def uses_buffer(self) -> bool:
        """Whether term blocks flow through a buffer to updater threads."""
        return self.updaters > 0

    @property
    def total_threads(self) -> int:
        """Worker threads across all stages (joiners included)."""
        return self.extractors + self.updaters + self.joiners

    def as_tuple(self) -> Tuple[int, int, int]:
        """The (x, y, z) tuple as the paper prints it."""
        return (self.extractors, self.updaters, self.joiners)

    def __str__(self) -> str:
        return f"({self.extractors}, {self.updaters}, {self.joiners})"


def enumerate_configs(
    implementation: Implementation,
    max_extractors: int,
    max_updaters: int,
    max_joiners: int = 2,
) -> Iterator[ThreadConfig]:
    """All valid (x, y, z) tuples within the given bounds.

    This is the configuration space the paper swept ("Any combination of
    thread counts ... was run 5 times on each system") and the domain of
    the auto-tuner.
    """
    if max_extractors < 1:
        raise ValueError("max_extractors must be at least 1")
    joiner_range = range(1, max_joiners + 1) if implementation.joins else (0,)
    for x in range(1, max_extractors + 1):
        for y in range(0, max_updaters + 1):
            for z in joiner_range:
                config = ThreadConfig(x, y, z)
                try:
                    config.validate_for(implementation)
                except ValueError:
                    continue
                yield config
