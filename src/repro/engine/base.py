"""Shared pipeline machinery for the three threaded implementations.

Stage 1 (single-threaded filename generation into memory), the extractor
worker loop, and the updater worker loop are identical across the three
designs; only the *sink* a term block flows into differs.  The base
class factors them out so each implementation is just a sink policy.

Timing comes from the observability layer: every build records its
phases (``phase.stage1`` / ``phase.extract`` / ``phase.update`` /
``phase.join``) and per-worker lifetimes (``extract.worker`` /
``update.worker``) as spans on a per-build
:class:`~repro.obs.recorder.Recorder`, and
:meth:`~repro.engine.results.StageTimings.from_spans` folds the span
tree back into the paper's stage breakdown.  Per-file detail spans
(``extract.file``) go through the process-global recorder and cost one
branch while tracing is disabled.
"""

from __future__ import annotations

import warnings
from typing import Callable, List, Optional, Sequence, Tuple

from repro.concurrency.buffers import BoundedBuffer, Closed
from repro.concurrency.provider import SyncProvider, ThreadingSyncProvider
from repro.distribute.base import DistributionStrategy
from repro.distribute.roundrobin import RoundRobinStrategy
from repro.engine.config import Implementation, ThreadConfig
from repro.engine.faults import ERROR_POLICIES, FileFailure
from repro.engine.results import BuildReport, StageTimings, build_metrics
from repro.extract.registry import resolve_extractor
from repro.extract.split import SplitJoiner, expand_file_refs, read_chunk
from repro.fsmodel.nodes import ChunkRef, FileRef
from repro.obs import recorder as obsrec
from repro.text.dedup import dedup_terms
from repro.text.termblock import TermBlock
from repro.text.tokenizer import Tokenizer

BlockSink = Callable[[int, TermBlock], None]

#: One shared wording for the legacy-kwarg deprecation on every engine.
TOKENIZER_KWARGS_DEPRECATED = (
    "the tokenizer=/registry= engine kwargs are deprecated; pass "
    "extractor=... (an Extractor instance or a registered name such as "
    "'ascii', 'code', 'tsv') instead — see docs/api.md"
)


def warn_legacy_extraction_kwargs(tokenizer, registry) -> None:
    """Emit the deprecation warning when either legacy kwarg is used."""
    if tokenizer is not None or registry is not None:
        warnings.warn(
            TOKENIZER_KWARGS_DEPRECATED, DeprecationWarning, stacklevel=3
        )


class ThreadedIndexerBase:
    """Common scaffolding: stage 1, extractors, optional updater stage.

    Subclasses implement :meth:`_build` which wires term blocks into
    their index design and returns the finished index; stage timings
    are derived from the spans the shared machinery records.
    """

    implementation: Implementation

    def __init__(
        self,
        fs,
        tokenizer: Optional[Tokenizer] = None,
        strategy: Optional[DistributionStrategy] = None,
        buffer_capacity: int = 256,
        registry=None,
        dynamic: Optional[str] = None,
        on_error: str = "strict",
        sync: Optional[SyncProvider] = None,
        extractor=None,
        split_threshold: Optional[int] = None,
    ) -> None:
        self.fs = fs
        # The extraction seam: one Extractor (format conversion +
        # tokenization) replaces the legacy tokenizer/registry pair;
        # the old kwargs still work but warn and are folded in.
        warn_legacy_extraction_kwargs(tokenizer, registry)
        self.extractor = resolve_extractor(extractor, tokenizer, registry)
        # Legacy aliases (read-only by convention): code that inspected
        # engine.tokenizer / engine.registry keeps working.
        self.tokenizer = self.extractor.tokenizer
        self.registry = self.extractor.registry
        # Files above this size (bytes) are split into chunks extracted
        # in parallel (see repro.extract.split); None disables splitting.
        if split_threshold is not None and split_threshold < 1:
            raise ValueError(
                f"split_threshold must be positive, got {split_threshold}"
            )
        self.split_threshold = split_threshold
        self.strategy = strategy or RoundRobinStrategy()
        self.buffer_capacity = buffer_capacity
        # All locks, condition variables, buffers and worker threads come
        # from this provider; repro.schedcheck substitutes an instrumented
        # one to trace and deterministically schedule the build.
        self.sync = sync or ThreadingSyncProvider()
        # Dynamic work acquisition instead of static private vectors:
        # None (the paper's choice), "steal" (per-extractor deques with
        # work stealing) or "queue" (one shared synchronized queue) —
        # the runtime halves of section 2.1's four options.
        if dynamic not in (None, "steal", "queue"):
            raise ValueError(
                f"dynamic must be None, 'steal' or 'queue', got {dynamic!r}"
            )
        self.dynamic = dynamic
        # Per-file error policy: "strict" lets the first file error
        # abort the build; "skip" drops the file and records a
        # FileFailure (see repro.engine.faults).
        if on_error not in ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ERROR_POLICIES}, got {on_error!r}"
            )
        self.on_error = on_error
        self.last_failures: List[FileFailure] = []
        # The current build's span recorder; replaced at each build()
        # so stage helpers always have somewhere to record.
        self._recorder = obsrec.Recorder()
        # Per-build chunk-join state, created by _run_extractors when a
        # build actually splits files (None otherwise).
        self._split_joiner: Optional[SplitJoiner] = None
        self._split_lock = None

    # -- public API ------------------------------------------------------

    def build(self, config: ThreadConfig, root: str = "") -> BuildReport:
        """Run the full pipeline under ``config`` and report the result."""
        config.validate_for(self.implementation)
        self.last_failures = []
        rec = self._recorder = obsrec.Recorder()

        root_span = rec.span(
            "build",
            implementation=self.implementation.name,
            config=str(config),
        )
        with root_span:
            with rec.span("phase.stage1"):
                files = list(self.fs.list_files(root))
            index = self._build(config, files)

        spans = rec.spans
        wall = root_span.duration
        metrics = build_metrics(
            file_count=len(files),
            byte_count=sum(ref.size for ref in files),
            term_count=len(index),
            posting_count=index.posting_count,
            wall_time=wall,
            failure_count=len(self.last_failures),
        )
        if obsrec.enabled():
            # Publish the build's spans on the global recorder so
            # --trace-out sees them alongside detail and query spans.
            obsrec.get_recorder().absorb(spans)
        return BuildReport(
            implementation=self.implementation,
            config=config,
            index=index,
            wall_time=wall,
            timings=StageTimings.from_spans(spans),
            file_count=len(files),
            term_count=len(index),
            posting_count=index.posting_count,
            extractor_times=list(getattr(self, "last_extractor_times", [])),
            failures=list(self.last_failures),
            spans=spans,
            metrics=metrics,
        )

    # -- subclass hook -----------------------------------------------------

    def _build(self, config: ThreadConfig, files: Sequence[FileRef]):
        """Run stages 2+3 and return the finished index."""
        raise NotImplementedError

    # -- shared stage machinery ---------------------------------------------

    def _extract_file(self, ref: FileRef) -> Optional[TermBlock]:
        """Stage 2 for one file (or one chunk of a split file), with an
        ``extract.file`` / ``extract.chunk`` detail span when tracing is
        enabled (one branch when it is not)."""
        if isinstance(ref, ChunkRef):
            if not obsrec.enabled():
                return self._extract_chunk_inner(ref)
            with obsrec.span(
                "extract.chunk",
                path=ref.path,
                start=ref.start,
                end=ref.end,
                index=ref.index,
            ):
                return self._extract_chunk_inner(ref)
        if not obsrec.enabled():
            return self._extract_file_inner(ref)
        with obsrec.span("extract.file", path=ref.path, size=ref.size):
            return self._extract_file_inner(ref)

    def _extract_file_inner(self, ref: FileRef) -> Optional[TermBlock]:
        """Stage 2 for one file: read, prepare, scan, de-duplicate.

        Under ``on_error="skip"`` a failing file is recorded in
        ``self.last_failures`` and ``None`` is returned (the extractor
        loop drops it); under ``"strict"`` the error propagates.
        """
        extractor = self.extractor
        if self.on_error != "skip":
            content = self.fs.read_file(ref.path)
            return TermBlock(
                path=ref.path,
                terms=dedup_terms(
                    extractor.tokenize(extractor.prepare(ref.path, content))
                ),
            )
        try:
            content = self.fs.read_file(ref.path)
        except Exception as exc:
            # list.append is atomic under the GIL, so extractor threads
            # can record failures without a lock.
            self.last_failures.append(
                FileFailure.from_exception(ref.path, "read", exc)
            )
            return None
        try:
            content = extractor.prepare(ref.path, content)
        except Exception as exc:
            self.last_failures.append(
                FileFailure.from_exception(ref.path, "extract", exc)
            )
            return None
        try:
            return TermBlock(
                path=ref.path, terms=dedup_terms(extractor.tokenize(content))
            )
        except Exception as exc:
            self.last_failures.append(
                FileFailure.from_exception(ref.path, "tokenize", exc)
            )
            return None

    def _extract_chunk_inner(self, ref: ChunkRef) -> Optional[TermBlock]:
        """Stage 2 for one chunk of a split file.

        Each chunk's terms land in the build's :class:`SplitJoiner`;
        whichever worker delivers a file's *last* chunk receives the
        unioned whole-file terms and returns the TermBlock (every other
        chunk returns ``None``).  Which worker that is doesn't matter —
        serialization canonicalizes block order.  Any chunk failure
        under ``"skip"`` poisons the whole file (one FileFailure, no
        block) so a document is never half-indexed.
        """
        extractor = self.extractor
        if self.on_error != "skip":
            data = read_chunk(
                self.fs,
                ref.path,
                ref.file_size,
                ref.start,
                ref.end,
                extractor.boundary_bytes,
            )
            terms = extractor.chunk_terms(data)
        else:
            try:
                data = read_chunk(
                    self.fs,
                    ref.path,
                    ref.file_size,
                    ref.start,
                    ref.end,
                    extractor.boundary_bytes,
                )
            except Exception as exc:
                self._record_chunk_failure(ref, "read", exc)
                return None
            try:
                terms = extractor.chunk_terms(data)
            except Exception as exc:
                self._record_chunk_failure(ref, "tokenize", exc)
                return None
        with self._split_lock:
            whole = self._split_joiner.add(
                ref.path, ref.index, ref.count, terms
            )
        if whole is None:
            return None
        return TermBlock(path=ref.path, terms=dedup_terms(whole))

    def _record_chunk_failure(self, ref: ChunkRef, stage: str, exc) -> None:
        with self._split_lock:
            first = self._split_joiner.fail(ref.path, ref.count)
        if first:
            self.last_failures.append(
                FileFailure.from_exception(ref.path, stage, exc)
            )

    def _run_extractors(
        self,
        config: ThreadConfig,
        files: Sequence[FileRef],
        sink: BlockSink,
        inline_update: bool = False,
    ) -> float:
        """Run ``config.extractors`` extractor threads to completion.

        Each extractor acquires work per ``self.dynamic`` — a private
        static list (the paper's design), a stealing deque, or a shared
        queue — and pushes every term block into ``sink`` with its own
        worker id.  The whole phase is recorded as a ``phase.extract``
        span; each worker's lifetime as an ``extract.worker`` span.
        ``inline_update=True`` marks the phase as also performing index
        updates inside the extractor threads (the ``y = 0``
        configurations), which makes the derived update time equal the
        extract time — the interval the pre-span engines measured.
        Returns elapsed seconds.  Exceptions raised inside workers are
        re-raised here.
        """
        if self.split_threshold is not None:
            # Huge-file divide-and-conquer: oversized splittable files
            # become ChunkRefs that distribute across workers like
            # ordinary files, so one giant file no longer serializes
            # the build tail.
            files, split_paths = expand_file_refs(
                self.fs, files, self.extractor, self.split_threshold
            )
            if split_paths:
                self._split_joiner = SplitJoiner()
                self._split_lock = self.sync.lock("split-joiner")
                obsrec.metrics().counter("extract.files_split").inc(
                    len(split_paths)
                )
        errors: List[BaseException] = []
        worker = self._make_worker(config.extractors, files, sink, errors)
        self.last_extractor_times = [0.0] * config.extractors
        rec = self._recorder

        def timed_worker(worker_id: int) -> None:
            worker_span = rec.span("extract.worker", worker=worker_id)
            try:
                with worker_span:
                    worker(worker_id)
            finally:
                self.last_extractor_times[worker_id] = worker_span.duration

        attrs = {"inline_update": True} if inline_update else {}
        phase_span = rec.span("phase.extract", **attrs)
        with phase_span:
            threads = [
                self.sync.thread(
                    target=timed_worker, args=(i,), name=f"extract-{i}"
                )
                for i in range(config.extractors)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        if errors:
            raise errors[0]
        return phase_span.duration

    def _make_worker(
        self,
        extractors: int,
        files: Sequence[FileRef],
        sink: BlockSink,
        errors: List[BaseException],
    ) -> Callable[[int], None]:
        """Build the extractor thread body for the configured work mode."""
        if self.dynamic == "steal":
            from repro.distribute.worksteal import WorkStealingStrategy

            deques = WorkStealingStrategy().make_deques(files, extractors)

            def worker(worker_id: int) -> None:
                try:
                    while True:
                        ref = WorkStealingStrategy.next_item(deques, worker_id)
                        if ref is None:
                            return
                        block = self._extract_file(ref)
                        if block is not None:
                            sink(worker_id, block)
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            return worker

        if self.dynamic == "queue":
            from repro.distribute.workqueue import WorkQueue

            queue = WorkQueue(files)
            queue.close()

            def worker(worker_id: int) -> None:
                try:
                    while True:
                        ref = queue.get()
                        if ref is None:
                            return
                        block = self._extract_file(ref)
                        if block is not None:
                            sink(worker_id, block)
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            return worker

        # Static private vectors (the paper's round-robin default).
        distribution = self.strategy.distribute(files, extractors)

        def worker(worker_id: int) -> None:
            try:
                for ref in distribution.assignments[worker_id]:
                    block = self._extract_file(ref)
                    if block is not None:
                        sink(worker_id, block)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        return worker

    def _run_buffered(
        self,
        config: ThreadConfig,
        files: Sequence[FileRef],
        update: BlockSink,
    ) -> Tuple[float, float]:
        """Extractors -> bounded buffer -> ``config.updaters`` updaters.

        ``update`` receives (updater_id, block).  The update stage is
        recorded as a ``phase.update`` span spanning updater start to
        updater join; the nested ``phase.extract`` span covers the
        extractors.  The two stages overlap, so their summed durations
        exceed the wall-clock time of this phase.  Returns (extract_s,
        update_s) from those spans.

        Failure handling: a dying updater closes the buffer so blocked
        extractors cannot deadlock on a full buffer; the updater's
        original exception (not the extractors' secondary ``Closed``)
        is what propagates.
        """
        buffer: BoundedBuffer[TermBlock] = self.sync.buffer(
            self.buffer_capacity, name="term-buffer"
        )
        errors: List[BaseException] = []
        rec = self._recorder

        def updater(updater_id: int) -> None:
            with rec.span("update.worker", worker=updater_id):
                try:
                    while True:
                        try:
                            block = buffer.get()
                        except Closed:
                            return
                        update(updater_id, block)
                except BaseException as exc:  # noqa: BLE001 - reported to caller
                    errors.append(exc)
                    buffer.close()  # unblock producers; puts raise Closed

        extract_elapsed = 0.0
        phase_span = rec.span("phase.update")
        with phase_span:
            updater_threads = [
                self.sync.thread(target=updater, args=(i,), name=f"update-{i}")
                for i in range(config.updaters)
            ]
            for thread in updater_threads:
                thread.start()

            try:
                extract_elapsed = self._run_extractors(
                    config, files, lambda _w, block: buffer.put(block)
                )
            except Closed:
                # Secondary failure: an updater died and closed the
                # buffer; the phase.extract span is already recorded.
                pass
            buffer.close()
            for thread in updater_threads:
                thread.join()
        if errors:
            for error in errors:
                if not isinstance(error, Closed):
                    raise error
            raise errors[0]
        return extract_elapsed, phase_span.duration
