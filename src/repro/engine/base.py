"""Shared pipeline machinery for the three threaded implementations.

Stage 1 (single-threaded filename generation into memory), the extractor
worker loop, and the updater worker loop are identical across the three
designs; only the *sink* a term block flows into differs.  The base
class factors them out so each implementation is just a sink policy.

Timing comes from the observability layer: every build records its
phases (``phase.stage1`` / ``phase.extract`` / ``phase.update`` /
``phase.join``) and per-worker lifetimes (``extract.worker`` /
``update.worker``) as spans on a per-build
:class:`~repro.obs.recorder.Recorder`, and
:meth:`~repro.engine.results.StageTimings.from_spans` folds the span
tree back into the paper's stage breakdown.  Per-file detail spans
(``extract.file``) go through the process-global recorder and cost one
branch while tracing is disabled.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.concurrency.buffers import BoundedBuffer, Closed
from repro.concurrency.provider import SyncProvider, ThreadingSyncProvider
from repro.distribute.base import DistributionStrategy
from repro.distribute.roundrobin import RoundRobinStrategy
from repro.engine.config import Implementation, ThreadConfig
from repro.engine.faults import ERROR_POLICIES, FileFailure
from repro.engine.results import BuildReport, StageTimings, build_metrics
from repro.fsmodel.nodes import FileRef
from repro.obs import recorder as obsrec
from repro.text.dedup import extract_term_block
from repro.text.termblock import TermBlock
from repro.text.tokenizer import Tokenizer

BlockSink = Callable[[int, TermBlock], None]


class ThreadedIndexerBase:
    """Common scaffolding: stage 1, extractors, optional updater stage.

    Subclasses implement :meth:`_build` which wires term blocks into
    their index design and returns the finished index; stage timings
    are derived from the spans the shared machinery records.
    """

    implementation: Implementation

    def __init__(
        self,
        fs,
        tokenizer: Optional[Tokenizer] = None,
        strategy: Optional[DistributionStrategy] = None,
        buffer_capacity: int = 256,
        registry=None,
        dynamic: Optional[str] = None,
        on_error: str = "strict",
        sync: Optional[SyncProvider] = None,
    ) -> None:
        self.fs = fs
        self.tokenizer = tokenizer or Tokenizer()
        self.strategy = strategy or RoundRobinStrategy()
        self.buffer_capacity = buffer_capacity
        # All locks, condition variables, buffers and worker threads come
        # from this provider; repro.schedcheck substitutes an instrumented
        # one to trace and deterministically schedule the build.
        self.sync = sync or ThreadingSyncProvider()
        # Optional repro.formats.FormatRegistry: when set, stage 2 first
        # extracts plain text from each file's format (HTML, DocZ, ...)
        # before tokenizing — the paper's "more file formats" extension.
        self.registry = registry
        # Dynamic work acquisition instead of static private vectors:
        # None (the paper's choice), "steal" (per-extractor deques with
        # work stealing) or "queue" (one shared synchronized queue) —
        # the runtime halves of section 2.1's four options.
        if dynamic not in (None, "steal", "queue"):
            raise ValueError(
                f"dynamic must be None, 'steal' or 'queue', got {dynamic!r}"
            )
        self.dynamic = dynamic
        # Per-file error policy: "strict" lets the first file error
        # abort the build; "skip" drops the file and records a
        # FileFailure (see repro.engine.faults).
        if on_error not in ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ERROR_POLICIES}, got {on_error!r}"
            )
        self.on_error = on_error
        self.last_failures: List[FileFailure] = []
        # The current build's span recorder; replaced at each build()
        # so stage helpers always have somewhere to record.
        self._recorder = obsrec.Recorder()

    # -- public API ------------------------------------------------------

    def build(self, config: ThreadConfig, root: str = "") -> BuildReport:
        """Run the full pipeline under ``config`` and report the result."""
        config.validate_for(self.implementation)
        self.last_failures = []
        rec = self._recorder = obsrec.Recorder()

        root_span = rec.span(
            "build",
            implementation=self.implementation.name,
            config=str(config),
        )
        with root_span:
            with rec.span("phase.stage1"):
                files = list(self.fs.list_files(root))
            index = self._build(config, files)

        spans = rec.spans
        wall = root_span.duration
        metrics = build_metrics(
            file_count=len(files),
            byte_count=sum(ref.size for ref in files),
            term_count=len(index),
            posting_count=index.posting_count,
            wall_time=wall,
            failure_count=len(self.last_failures),
        )
        if obsrec.enabled():
            # Publish the build's spans on the global recorder so
            # --trace-out sees them alongside detail and query spans.
            obsrec.get_recorder().absorb(spans)
        return BuildReport(
            implementation=self.implementation,
            config=config,
            index=index,
            wall_time=wall,
            timings=StageTimings.from_spans(spans),
            file_count=len(files),
            term_count=len(index),
            posting_count=index.posting_count,
            extractor_times=list(getattr(self, "last_extractor_times", [])),
            failures=list(self.last_failures),
            spans=spans,
            metrics=metrics,
        )

    # -- subclass hook -----------------------------------------------------

    def _build(self, config: ThreadConfig, files: Sequence[FileRef]):
        """Run stages 2+3 and return the finished index."""
        raise NotImplementedError

    # -- shared stage machinery ---------------------------------------------

    def _extract_file(self, ref: FileRef) -> Optional[TermBlock]:
        """Stage 2 for one file, with an ``extract.file`` detail span
        when tracing is enabled (one branch when it is not)."""
        if not obsrec.enabled():
            return self._extract_file_inner(ref)
        with obsrec.span("extract.file", path=ref.path, size=ref.size):
            return self._extract_file_inner(ref)

    def _extract_file_inner(self, ref: FileRef) -> Optional[TermBlock]:
        """Stage 2 for one file: read, (convert,) scan, de-duplicate.

        Under ``on_error="skip"`` a failing file is recorded in
        ``self.last_failures`` and ``None`` is returned (the extractor
        loop drops it); under ``"strict"`` the error propagates.
        """
        if self.on_error != "skip":
            content = self.fs.read_file(ref.path)
            if self.registry is not None:
                content = self.registry.extract_text(ref.path, content)
            return extract_term_block(ref.path, content, self.tokenizer)
        try:
            content = self.fs.read_file(ref.path)
        except Exception as exc:
            # list.append is atomic under the GIL, so extractor threads
            # can record failures without a lock.
            self.last_failures.append(
                FileFailure.from_exception(ref.path, "read", exc)
            )
            return None
        if self.registry is not None:
            try:
                content = self.registry.extract_text(ref.path, content)
            except Exception as exc:
                self.last_failures.append(
                    FileFailure.from_exception(ref.path, "extract", exc)
                )
                return None
        try:
            return extract_term_block(ref.path, content, self.tokenizer)
        except Exception as exc:
            self.last_failures.append(
                FileFailure.from_exception(ref.path, "tokenize", exc)
            )
            return None

    def _run_extractors(
        self,
        config: ThreadConfig,
        files: Sequence[FileRef],
        sink: BlockSink,
        inline_update: bool = False,
    ) -> float:
        """Run ``config.extractors`` extractor threads to completion.

        Each extractor acquires work per ``self.dynamic`` — a private
        static list (the paper's design), a stealing deque, or a shared
        queue — and pushes every term block into ``sink`` with its own
        worker id.  The whole phase is recorded as a ``phase.extract``
        span; each worker's lifetime as an ``extract.worker`` span.
        ``inline_update=True`` marks the phase as also performing index
        updates inside the extractor threads (the ``y = 0``
        configurations), which makes the derived update time equal the
        extract time — the interval the pre-span engines measured.
        Returns elapsed seconds.  Exceptions raised inside workers are
        re-raised here.
        """
        errors: List[BaseException] = []
        worker = self._make_worker(config.extractors, files, sink, errors)
        self.last_extractor_times = [0.0] * config.extractors
        rec = self._recorder

        def timed_worker(worker_id: int) -> None:
            worker_span = rec.span("extract.worker", worker=worker_id)
            try:
                with worker_span:
                    worker(worker_id)
            finally:
                self.last_extractor_times[worker_id] = worker_span.duration

        attrs = {"inline_update": True} if inline_update else {}
        phase_span = rec.span("phase.extract", **attrs)
        with phase_span:
            threads = [
                self.sync.thread(
                    target=timed_worker, args=(i,), name=f"extract-{i}"
                )
                for i in range(config.extractors)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        if errors:
            raise errors[0]
        return phase_span.duration

    def _make_worker(
        self,
        extractors: int,
        files: Sequence[FileRef],
        sink: BlockSink,
        errors: List[BaseException],
    ) -> Callable[[int], None]:
        """Build the extractor thread body for the configured work mode."""
        if self.dynamic == "steal":
            from repro.distribute.worksteal import WorkStealingStrategy

            deques = WorkStealingStrategy().make_deques(files, extractors)

            def worker(worker_id: int) -> None:
                try:
                    while True:
                        ref = WorkStealingStrategy.next_item(deques, worker_id)
                        if ref is None:
                            return
                        block = self._extract_file(ref)
                        if block is not None:
                            sink(worker_id, block)
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            return worker

        if self.dynamic == "queue":
            from repro.distribute.workqueue import WorkQueue

            queue = WorkQueue(files)
            queue.close()

            def worker(worker_id: int) -> None:
                try:
                    while True:
                        ref = queue.get()
                        if ref is None:
                            return
                        block = self._extract_file(ref)
                        if block is not None:
                            sink(worker_id, block)
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            return worker

        # Static private vectors (the paper's round-robin default).
        distribution = self.strategy.distribute(files, extractors)

        def worker(worker_id: int) -> None:
            try:
                for ref in distribution.assignments[worker_id]:
                    block = self._extract_file(ref)
                    if block is not None:
                        sink(worker_id, block)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        return worker

    def _run_buffered(
        self,
        config: ThreadConfig,
        files: Sequence[FileRef],
        update: BlockSink,
    ) -> Tuple[float, float]:
        """Extractors -> bounded buffer -> ``config.updaters`` updaters.

        ``update`` receives (updater_id, block).  The update stage is
        recorded as a ``phase.update`` span spanning updater start to
        updater join; the nested ``phase.extract`` span covers the
        extractors.  The two stages overlap, so their summed durations
        exceed the wall-clock time of this phase.  Returns (extract_s,
        update_s) from those spans.

        Failure handling: a dying updater closes the buffer so blocked
        extractors cannot deadlock on a full buffer; the updater's
        original exception (not the extractors' secondary ``Closed``)
        is what propagates.
        """
        buffer: BoundedBuffer[TermBlock] = self.sync.buffer(
            self.buffer_capacity, name="term-buffer"
        )
        errors: List[BaseException] = []
        rec = self._recorder

        def updater(updater_id: int) -> None:
            with rec.span("update.worker", worker=updater_id):
                try:
                    while True:
                        try:
                            block = buffer.get()
                        except Closed:
                            return
                        update(updater_id, block)
                except BaseException as exc:  # noqa: BLE001 - reported to caller
                    errors.append(exc)
                    buffer.close()  # unblock producers; puts raise Closed

        extract_elapsed = 0.0
        phase_span = rec.span("phase.update")
        with phase_span:
            updater_threads = [
                self.sync.thread(target=updater, args=(i,), name=f"update-{i}")
                for i in range(config.updaters)
            ]
            for thread in updater_threads:
                thread.start()

            try:
                extract_elapsed = self._run_extractors(
                    config, files, lambda _w, block: buffer.put(block)
                )
            except Closed:
                # Secondary failure: an updater died and closed the
                # buffer; the phase.extract span is already recorded.
                pass
            buffer.close()
            for thread in updater_threads:
                thread.join()
        if errors:
            for error in errors:
                if not isinstance(error, Closed):
                    raise error
            raise errors[0]
        return extract_elapsed, phase_span.duration
