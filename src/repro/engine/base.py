"""Shared pipeline machinery for the three threaded implementations.

Stage 1 (single-threaded filename generation into memory), the extractor
worker loop, and the updater worker loop are identical across the three
designs; only the *sink* a term block flows into differs.  The base
class factors them out so each implementation is just a sink policy.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, Tuple

from repro.concurrency.buffers import BoundedBuffer, Closed
from repro.concurrency.provider import SyncProvider, ThreadingSyncProvider
from repro.distribute.base import DistributionStrategy
from repro.distribute.roundrobin import RoundRobinStrategy
from repro.engine.config import Implementation, ThreadConfig
from repro.engine.faults import ERROR_POLICIES, FileFailure
from repro.engine.results import BuildReport, StageTimings
from repro.fsmodel.nodes import FileRef
from repro.text.dedup import extract_term_block
from repro.text.termblock import TermBlock
from repro.text.tokenizer import Tokenizer

BlockSink = Callable[[int, TermBlock], None]


class ThreadedIndexerBase:
    """Common scaffolding: stage 1, extractors, optional updater stage.

    Subclasses implement :meth:`_build` which wires term blocks into
    their index design and returns the finished index plus join time.
    """

    implementation: Implementation

    def __init__(
        self,
        fs,
        tokenizer: Optional[Tokenizer] = None,
        strategy: Optional[DistributionStrategy] = None,
        buffer_capacity: int = 256,
        registry=None,
        dynamic: Optional[str] = None,
        on_error: str = "strict",
        sync: Optional[SyncProvider] = None,
    ) -> None:
        self.fs = fs
        self.tokenizer = tokenizer or Tokenizer()
        self.strategy = strategy or RoundRobinStrategy()
        self.buffer_capacity = buffer_capacity
        # All locks, condition variables, buffers and worker threads come
        # from this provider; repro.schedcheck substitutes an instrumented
        # one to trace and deterministically schedule the build.
        self.sync = sync or ThreadingSyncProvider()
        # Optional repro.formats.FormatRegistry: when set, stage 2 first
        # extracts plain text from each file's format (HTML, DocZ, ...)
        # before tokenizing — the paper's "more file formats" extension.
        self.registry = registry
        # Dynamic work acquisition instead of static private vectors:
        # None (the paper's choice), "steal" (per-extractor deques with
        # work stealing) or "queue" (one shared synchronized queue) —
        # the runtime halves of section 2.1's four options.
        if dynamic not in (None, "steal", "queue"):
            raise ValueError(
                f"dynamic must be None, 'steal' or 'queue', got {dynamic!r}"
            )
        self.dynamic = dynamic
        # Per-file error policy: "strict" lets the first file error
        # abort the build; "skip" drops the file and records a
        # FileFailure (see repro.engine.faults).
        if on_error not in ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ERROR_POLICIES}, got {on_error!r}"
            )
        self.on_error = on_error
        self.last_failures: List[FileFailure] = []

    # -- public API ------------------------------------------------------

    def build(self, config: ThreadConfig, root: str = "") -> BuildReport:
        """Run the full pipeline under ``config`` and report the result."""
        config.validate_for(self.implementation)
        self.last_failures = []
        timings = StageTimings()
        start = time.perf_counter()

        t0 = time.perf_counter()
        files = list(self.fs.list_files(root))
        timings.filename_generation = time.perf_counter() - t0

        index, join_time, update_time, extract_time = self._build(config, files)
        timings.join = join_time
        timings.update = update_time
        timings.extraction = extract_time

        wall = time.perf_counter() - start
        return BuildReport(
            implementation=self.implementation,
            config=config,
            index=index,
            wall_time=wall,
            timings=timings,
            file_count=len(files),
            term_count=len(index),
            posting_count=index.posting_count,
            extractor_times=list(getattr(self, "last_extractor_times", [])),
            failures=list(self.last_failures),
        )

    # -- subclass hook -----------------------------------------------------

    def _build(
        self, config: ThreadConfig, files: Sequence[FileRef]
    ) -> Tuple[object, float, float, float]:
        """Run stages 2+3; returns (index, join_s, update_s, extract_s)."""
        raise NotImplementedError

    # -- shared stage machinery ---------------------------------------------

    def _extract_file(self, ref: FileRef) -> Optional[TermBlock]:
        """Stage 2 for one file: read, (convert,) scan, de-duplicate.

        Under ``on_error="skip"`` a failing file is recorded in
        ``self.last_failures`` and ``None`` is returned (the extractor
        loop drops it); under ``"strict"`` the error propagates.
        """
        if self.on_error != "skip":
            content = self.fs.read_file(ref.path)
            if self.registry is not None:
                content = self.registry.extract_text(ref.path, content)
            return extract_term_block(ref.path, content, self.tokenizer)
        try:
            content = self.fs.read_file(ref.path)
        except Exception as exc:
            # list.append is atomic under the GIL, so extractor threads
            # can record failures without a lock.
            self.last_failures.append(
                FileFailure.from_exception(ref.path, "read", exc)
            )
            return None
        if self.registry is not None:
            try:
                content = self.registry.extract_text(ref.path, content)
            except Exception as exc:
                self.last_failures.append(
                    FileFailure.from_exception(ref.path, "extract", exc)
                )
                return None
        try:
            return extract_term_block(ref.path, content, self.tokenizer)
        except Exception as exc:
            self.last_failures.append(
                FileFailure.from_exception(ref.path, "tokenize", exc)
            )
            return None

    def _run_extractors(
        self, config: ThreadConfig, files: Sequence[FileRef], sink: BlockSink
    ) -> float:
        """Run ``config.extractors`` extractor threads to completion.

        Each extractor acquires work per ``self.dynamic`` — a private
        static list (the paper's design), a stealing deque, or a shared
        queue — and pushes every term block into ``sink`` with its own
        worker id.  Returns elapsed seconds.  Exceptions raised inside
        workers are re-raised here.
        """
        errors: List[BaseException] = []
        worker = self._make_worker(config.extractors, files, sink, errors)
        self.last_extractor_times = [0.0] * config.extractors

        def timed_worker(worker_id: int) -> None:
            started = time.perf_counter()
            try:
                worker(worker_id)
            finally:
                self.last_extractor_times[worker_id] = (
                    time.perf_counter() - started
                )

        t0 = time.perf_counter()
        threads = [
            self.sync.thread(
                target=timed_worker, args=(i,), name=f"extract-{i}"
            )
            for i in range(config.extractors)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - t0
        if errors:
            raise errors[0]
        return elapsed

    def _make_worker(
        self,
        extractors: int,
        files: Sequence[FileRef],
        sink: BlockSink,
        errors: List[BaseException],
    ) -> Callable[[int], None]:
        """Build the extractor thread body for the configured work mode."""
        if self.dynamic == "steal":
            from repro.distribute.worksteal import WorkStealingStrategy

            deques = WorkStealingStrategy().make_deques(files, extractors)

            def worker(worker_id: int) -> None:
                try:
                    while True:
                        ref = WorkStealingStrategy.next_item(deques, worker_id)
                        if ref is None:
                            return
                        block = self._extract_file(ref)
                        if block is not None:
                            sink(worker_id, block)
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            return worker

        if self.dynamic == "queue":
            from repro.distribute.workqueue import WorkQueue

            queue = WorkQueue(files)
            queue.close()

            def worker(worker_id: int) -> None:
                try:
                    while True:
                        ref = queue.get()
                        if ref is None:
                            return
                        block = self._extract_file(ref)
                        if block is not None:
                            sink(worker_id, block)
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            return worker

        # Static private vectors (the paper's round-robin default).
        distribution = self.strategy.distribute(files, extractors)

        def worker(worker_id: int) -> None:
            try:
                for ref in distribution.assignments[worker_id]:
                    block = self._extract_file(ref)
                    if block is not None:
                        sink(worker_id, block)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        return worker

    def _run_buffered(
        self,
        config: ThreadConfig,
        files: Sequence[FileRef],
        update: BlockSink,
    ) -> Tuple[float, float]:
        """Extractors -> bounded buffer -> ``config.updaters`` updaters.

        ``update`` receives (updater_id, block).  Returns (extract_s,
        update_s); the two stages overlap, so their sum exceeds the
        wall-clock time of this phase.

        Failure handling: a dying updater closes the buffer so blocked
        extractors cannot deadlock on a full buffer; the updater's
        original exception (not the extractors' secondary ``Closed``)
        is what propagates.
        """
        buffer: BoundedBuffer[TermBlock] = self.sync.buffer(
            self.buffer_capacity, name="term-buffer"
        )
        errors: List[BaseException] = []

        def updater(updater_id: int) -> None:
            try:
                while True:
                    try:
                        block = buffer.get()
                    except Closed:
                        return
                    update(updater_id, block)
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                errors.append(exc)
                buffer.close()  # unblock producers; their puts raise Closed

        t0 = time.perf_counter()
        updater_threads = [
            self.sync.thread(target=updater, args=(i,), name=f"update-{i}")
            for i in range(config.updaters)
        ]
        for thread in updater_threads:
            thread.start()

        try:
            extract_elapsed = self._run_extractors(
                config, files, lambda _w, block: buffer.put(block)
            )
        except Closed:
            # Secondary failure: an updater died and closed the buffer.
            extract_elapsed = time.perf_counter() - t0
        buffer.close()
        for thread in updater_threads:
            thread.join()
        update_elapsed = time.perf_counter() - t0
        if errors:
            for error in errors:
                if not isinstance(error, Closed):
                    raise error
            raise errors[0]
        return extract_elapsed, update_elapsed
