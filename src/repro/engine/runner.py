"""Facade over the threaded engine plus stage-time measurement.

:class:`IndexGenerator` dispatches a build to the right implementation
class; :func:`measure_stage_times` reproduces the paper's Table 1
methodology on the real engine — time stage 1 alone, then the empty
scanner, then scan+extract, then index update, each in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.engine.config import Implementation, ThreadConfig
from repro.engine.impl1 import SharedLockedIndexer
from repro.engine.impl2 import ReplicatedJoinedIndexer
from repro.engine.impl3 import ReplicatedUnjoinedIndexer
from repro.engine.procbackend import ProcessReplicatedIndexer
from repro.engine.results import BuildReport
from repro.distribute.base import DistributionStrategy
from repro.obs import recorder as obsrec
from repro.index.inverted import InvertedIndex
from repro.text.dedup import extract_term_block
from repro.text.scanner import empty_scan
from repro.text.tokenizer import Tokenizer

_INDEXERS = {
    Implementation.SHARED_LOCKED: SharedLockedIndexer,
    Implementation.REPLICATED_JOINED: ReplicatedJoinedIndexer,
    Implementation.REPLICATED_UNJOINED: ReplicatedUnjoinedIndexer,
}


class IndexGenerator:
    """One entry point for all three implementations and both backends."""

    def __init__(
        self,
        fs,
        tokenizer: Optional[Tokenizer] = None,
        strategy: Optional[DistributionStrategy] = None,
        buffer_capacity: int = 256,
        registry=None,
        dynamic=None,
        oversubscribe: bool = False,
        on_error: str = "strict",
        max_retries: int = 2,
        batch_timeout=None,
        sync=None,
        extractor=None,
        split_threshold=None,
    ) -> None:
        from repro.engine.base import warn_legacy_extraction_kwargs
        from repro.extract.registry import resolve_extractor

        self.fs = fs
        # Resolve the extraction seam once here so the dispatched
        # engine constructors don't re-warn about legacy kwargs.
        warn_legacy_extraction_kwargs(tokenizer, registry)
        self.extractor = resolve_extractor(extractor, tokenizer, registry)
        self.tokenizer = self.extractor.tokenizer
        self.registry = self.extractor.registry
        self.split_threshold = split_threshold
        self.strategy = strategy
        self.buffer_capacity = buffer_capacity
        self.dynamic = dynamic
        self.oversubscribe = oversubscribe
        # Fault tolerance (see repro.engine.faults): per-file error
        # policy applies to every backend; the retry/timeout ladder is
        # specific to the process backend's worker pool.
        self.on_error = on_error
        self.max_retries = max_retries
        self.batch_timeout = batch_timeout
        # SyncProvider for the threaded engines (None = raw threading).
        # The process backend synchronizes via the OS, not this seam.
        self.sync = sync

    def build(
        self,
        implementation: Implementation,
        config: ThreadConfig,
        root: str = "",
    ) -> BuildReport:
        """Build the index under the named implementation and config.

        ``config.backend`` picks the engine: ``"thread"`` dispatches to
        the paper's three threaded designs, ``"process"`` to the
        multiprocessing Implementation 2 engine.
        """
        if config.backend == "process":
            config.validate_for(implementation)
            indexer = ProcessReplicatedIndexer(
                self.fs,
                extractor=self.extractor,
                strategy=self.strategy,
                buffer_capacity=self.buffer_capacity,
                dynamic=self.dynamic,
                oversubscribe=self.oversubscribe,
                on_error=self.on_error,
                max_retries=self.max_retries,
                batch_timeout=self.batch_timeout,
                split_threshold=self.split_threshold,
            )
            return indexer.build(config, root)
        indexer_cls = _INDEXERS[implementation]
        indexer = indexer_cls(
            self.fs,
            extractor=self.extractor,
            strategy=self.strategy,
            buffer_capacity=self.buffer_capacity,
            dynamic=self.dynamic,
            on_error=self.on_error,
            sync=self.sync,
            split_threshold=self.split_threshold,
        )
        return indexer.build(config, root)


@dataclass(frozen=True)
class MeasuredStageTimes:
    """The four columns of Table 1, measured on the real engine."""

    filename_generation: float
    read_files: float
    read_and_extract: float
    index_update: float


def measure_stage_times(
    fs, root: str = "", tokenizer: Optional[Tokenizer] = None
) -> MeasuredStageTimes:
    """Time each stage in isolation, the way Table 1 was produced.

    1. filename generation: traverse and collect every FileRef;
    2. read files: the "empty scanner" — read every byte, extract nothing;
    3. read and extract: full stage 2 (read, scan, de-duplicate);
    4. index update: en-bloc insertion of the pre-extracted blocks.

    Each measurement is a span on a local recorder (published to the
    global recorder when tracing is on, so ``--trace-out`` can cover a
    Table 1 run too).
    """
    tokenizer = tokenizer or Tokenizer()
    rec = obsrec.Recorder()

    with rec.span("measure.stage1") as stage1_span:
        files = list(fs.list_files(root))

    with rec.span("measure.read") as read_span:
        for ref in files:
            empty_scan(fs.read_file(ref.path))

    with rec.span("measure.extract") as extract_span:
        blocks = [
            extract_term_block(ref.path, fs.read_file(ref.path), tokenizer)
            for ref in files
        ]

    index = InvertedIndex()
    with rec.span("measure.update") as update_span:
        for block in blocks:
            index.add_block(block)

    if obsrec.enabled():
        obsrec.get_recorder().absorb(rec.spans)
    return MeasuredStageTimes(
        filename_generation=stage1_span.duration,
        read_files=read_span.duration,
        read_and_extract=extract_span.duration,
        index_update=update_span.duration,
    )
