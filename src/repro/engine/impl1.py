"""Implementation 1: a single shared index, locked on update.

The simplest design: every term block, whoever produced it, is inserted
into one :class:`~repro.index.inverted.InvertedIndex` under one lock.
With ``y = 0`` the extractors lock-and-update inline; with ``y >= 1``
dedicated updater threads drain a bounded buffer and do the locking.
The paper finds this design competitive on 4 cores and increasingly
lock-bound at 8 and 32.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.base import ThreadedIndexerBase
from repro.engine.config import Implementation, ThreadConfig
from repro.fsmodel.nodes import FileRef
from repro.index.inverted import InvertedIndex
from repro.text.termblock import TermBlock


class SharedLockedIndexer(ThreadedIndexerBase):
    """One shared index; one lock; optional buffered updater stage."""

    implementation = Implementation.SHARED_LOCKED

    def _build(
        self, config: ThreadConfig, files: Sequence[FileRef]
    ) -> InvertedIndex:
        index = InvertedIndex()
        lock = self.sync.lock("impl1.index-lock")

        def locked_update(_worker: int, block: TermBlock) -> None:
            with lock:
                self.sync.access("impl1.shared-index")
                index.add_block(block)

        if config.uses_buffer:
            self._run_buffered(config, files, locked_update)
        else:
            self._run_extractors(
                config, files, locked_update, inline_update=True
            )
        return index
