"""The sequential baseline index generator.

Two variants, matching the paper's narrative:

* ``naive=True`` (default) — the original sequential implementation the
  speed-ups in Tables 2-4 are measured against: every term *occurrence*
  is inserted via :meth:`InvertedIndex.add_term_naive`, paying the
  linear (term, file) duplicate search the paper's analysis condemns;
* ``naive=False`` — the en-bloc sequential pipeline, useful as the
  fair single-thread reference for the parallel designs.

Timing is span-based like the threaded engines: one
``phase.extract`` / ``phase.update`` span pair per file on a per-build
recorder (the same number of clock reads the accumulator version
paid), summed back into stage totals by
:meth:`~repro.engine.results.StageTimings.from_spans`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.engine.base import warn_legacy_extraction_kwargs
from repro.engine.config import Implementation, ThreadConfig
from repro.engine.faults import ERROR_POLICIES, FileFailure
from repro.engine.results import BuildReport, StageTimings, build_metrics
from repro.extract.registry import resolve_extractor
from repro.index.inverted import InvertedIndex
from repro.obs import recorder as obsrec
from repro.text.dedup import dedup_terms
from repro.text.termblock import TermBlock
from repro.text.tokenizer import Tokenizer


class SequentialIndexer:
    """Single-threaded index generation over any filesystem backend."""

    def __init__(
        self,
        fs,
        tokenizer: Optional[Tokenizer] = None,
        naive: bool = True,
        registry=None,
        on_error: str = "strict",
        extractor=None,
    ) -> None:
        self.fs = fs
        # One Extractor seam (see repro.extract); the legacy
        # tokenizer=/registry= kwargs warn and fold in.
        warn_legacy_extraction_kwargs(tokenizer, registry)
        self.extractor = resolve_extractor(extractor, tokenizer, registry)
        self.tokenizer = self.extractor.tokenizer
        self.registry = self.extractor.registry
        self.naive = naive
        # Per-file error policy (see repro.engine.faults).
        if on_error not in ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ERROR_POLICIES}, got {on_error!r}"
            )
        self.on_error = on_error
        self.last_failures: List[FileFailure] = []

    def _load(self, path: str) -> Optional[bytes]:
        """Read (and format-convert) one file, honouring ``on_error``."""
        if self.on_error != "skip":
            return self.extractor.prepare(path, self.fs.read_file(path))
        try:
            content = self.fs.read_file(path)
        except Exception as exc:
            self.last_failures.append(
                FileFailure.from_exception(path, "read", exc)
            )
            return None
        try:
            return self.extractor.prepare(path, content)
        except Exception as exc:
            self.last_failures.append(
                FileFailure.from_exception(path, "extract", exc)
            )
            return None

    def build(self, root: str = "") -> BuildReport:
        """Index every file under ``root`` sequentially."""
        self.last_failures = []
        rec = obsrec.Recorder()
        root_span = rec.span(
            "build", implementation="SEQUENTIAL", config="(1, 0, 0)"
        )
        with root_span:
            with rec.span("phase.stage1"):
                files = list(self.fs.list_files(root))

            index = InvertedIndex()
            for ref in files:
                extracted = False
                with rec.span("phase.extract"):
                    content = self._load(ref.path)
                    if content is not None:
                        try:
                            if self.naive:
                                terms = self.extractor.tokenize(content)
                            else:
                                block = TermBlock(
                                    path=ref.path,
                                    terms=dedup_terms(
                                        self.extractor.tokenize(content)
                                    ),
                                )
                            extracted = True
                        except Exception as exc:
                            if self.on_error != "skip":
                                raise
                            self.last_failures.append(
                                FileFailure.from_exception(
                                    ref.path, "tokenize", exc
                                )
                            )
                if not extracted:
                    continue
                with rec.span("phase.update"):
                    if self.naive:
                        for term in terms:
                            index.add_term_naive(term, ref.path)
                    else:
                        index.add_block(block)

        spans = rec.spans
        wall = root_span.duration
        metrics = build_metrics(
            file_count=len(files),
            byte_count=sum(ref.size for ref in files),
            term_count=len(index),
            posting_count=index.posting_count,
            wall_time=wall,
            failure_count=len(self.last_failures),
        )
        if obsrec.enabled():
            obsrec.get_recorder().absorb(spans)
        # A sequential run is, by convention, configuration (1, 0, 0).
        return BuildReport(
            implementation=Implementation.SHARED_LOCKED,
            config=ThreadConfig(1, 0, 0),
            index=index,
            wall_time=wall,
            timings=StageTimings.from_spans(spans),
            file_count=len(files),
            term_count=len(index),
            posting_count=index.posting_count,
            failures=list(self.last_failures),
            spans=spans,
            metrics=metrics,
        )
