"""The sequential baseline index generator.

Two variants, matching the paper's narrative:

* ``naive=True`` (default) — the original sequential implementation the
  speed-ups in Tables 2-4 are measured against: every term *occurrence*
  is inserted via :meth:`InvertedIndex.add_term_naive`, paying the
  linear (term, file) duplicate search the paper's analysis condemns;
* ``naive=False`` — the en-bloc sequential pipeline, useful as the
  fair single-thread reference for the parallel designs.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.engine.config import Implementation, ThreadConfig
from repro.engine.results import BuildReport, StageTimings
from repro.index.inverted import InvertedIndex
from repro.text.dedup import extract_term_block
from repro.text.tokenizer import Tokenizer


class SequentialIndexer:
    """Single-threaded index generation over any filesystem backend."""

    def __init__(
        self,
        fs,
        tokenizer: Optional[Tokenizer] = None,
        naive: bool = True,
        registry=None,
    ) -> None:
        self.fs = fs
        self.tokenizer = tokenizer or Tokenizer()
        self.naive = naive
        # Optional repro.formats.FormatRegistry (see ThreadedIndexerBase).
        self.registry = registry

    def build(self, root: str = "") -> BuildReport:
        """Index every file under ``root`` sequentially."""
        timings = StageTimings()
        start = time.perf_counter()

        t0 = time.perf_counter()
        files = list(self.fs.list_files(root))
        timings.filename_generation = time.perf_counter() - t0

        index = InvertedIndex()
        extract_s = 0.0
        update_s = 0.0
        for ref in files:
            t0 = time.perf_counter()
            content = self.fs.read_file(ref.path)
            if self.registry is not None:
                content = self.registry.extract_text(ref.path, content)
            if self.naive:
                terms = self.tokenizer.tokenize(content)
                extract_s += time.perf_counter() - t0
                t0 = time.perf_counter()
                for term in terms:
                    index.add_term_naive(term, ref.path)
                update_s += time.perf_counter() - t0
            else:
                block = extract_term_block(ref.path, content, self.tokenizer)
                extract_s += time.perf_counter() - t0
                t0 = time.perf_counter()
                index.add_block(block)
                update_s += time.perf_counter() - t0
        timings.extraction = extract_s
        timings.update = update_s

        wall = time.perf_counter() - start
        # A sequential run is, by convention, configuration (1, 0, 0).
        return BuildReport(
            implementation=Implementation.SHARED_LOCKED,
            config=ThreadConfig(1, 0, 0),
            index=index,
            wall_time=wall,
            timings=timings,
            file_count=len(files),
            term_count=len(index),
            posting_count=index.posting_count,
        )
