"""Implementation 3: replicated indices, never joined.

Identical to Implementation 2 up to the barrier — then it simply stops,
"because the search can work with multiple indices in parallel".  The
result is a :class:`~repro.index.multi.MultiIndex` over the replicas.
This is the design that wins on the 8- and 32-core machines.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.engine.base import ThreadedIndexerBase
from repro.engine.config import Implementation, ThreadConfig
from repro.fsmodel.nodes import FileRef
from repro.index.inverted import InvertedIndex
from repro.index.multi import MultiIndex
from repro.text.termblock import TermBlock


class ReplicatedUnjoinedIndexer(ThreadedIndexerBase):
    """Private replicas per writer, returned as a multi-index view."""

    implementation = Implementation.REPLICATED_UNJOINED

    def _build(
        self, config: ThreadConfig, files: Sequence[FileRef]
    ) -> MultiIndex:
        replicas: List[InvertedIndex] = [
            InvertedIndex() for _ in range(config.replica_count)
        ]

        def private_update(worker: int, block: TermBlock) -> None:
            self.sync.access(f"impl3.replica[{worker}]")
            replicas[worker].add_block(block)

        if config.uses_buffer:
            self._run_buffered(config, files, private_update)
        else:
            self._run_extractors(
                config, files, private_update, inline_update=True
            )
        return MultiIndex(replicas)
