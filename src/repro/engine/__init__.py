"""The threaded index generator: the paper's three implementations.

Every implementation runs the same three-stage pipeline on real Python
threads:

1. a single thread generates the complete filename list in memory
   (the paper's measured decision for stage 1);
2. ``x`` term extractors process private round-robin file vectors;
3. index updates go through one of three designs:

   * **Implementation 1** (:class:`SharedLockedIndexer`) — one shared
     index protected by a lock;
   * **Implementation 2** (:class:`ReplicatedJoinedIndexer`) — private
     index replicas joined after a barrier ("Join Forces");
   * **Implementation 3** (:class:`ReplicatedUnjoinedIndexer`) — private
     replicas left unjoined, searched through a
     :class:`~repro.index.multi.MultiIndex`.

A configuration tuple ``(x, y, z)`` selects ``x`` extractors, ``y``
updater threads fed through a bounded buffer (``y = 0`` means extractors
update inline), and ``z`` joiner threads.

Python's GIL means these threads interleave rather than run truly in
parallel; the timing behaviour of the paper's multicore machines is
reproduced by :mod:`repro.simengine` instead.  This package proves the
*logic* — locking, replication, joining, distribution — on real threads.

The one design that escapes the GIL on real hardware is Implementation
2 run across OS processes: :class:`ProcessReplicatedIndexer` (selected
with ``ThreadConfig(..., backend="process")``) runs each replica build
in its own interpreter and ships replicas back to the parent as wire
bytes for the join.  See :mod:`repro.engine.procbackend`.
"""

from repro.engine.config import BACKENDS, Implementation, ThreadConfig
from repro.engine.faults import (
    ERROR_POLICIES,
    FaultPolicy,
    FileFailure,
    PoolUnavailableError,
)
from repro.engine.impl1 import SharedLockedIndexer
from repro.engine.impl2 import ReplicatedJoinedIndexer
from repro.engine.impl3 import ReplicatedUnjoinedIndexer
from repro.engine.procbackend import (
    ProcessReplicatedIndexer,
    available_cpus,
    validate_worker_count,
)
from repro.engine.results import BuildReport, StageTimings
from repro.engine.runner import IndexGenerator, measure_stage_times
from repro.engine.sequential import SequentialIndexer

__all__ = [
    "BACKENDS",
    "BuildReport",
    "ERROR_POLICIES",
    "FaultPolicy",
    "FileFailure",
    "Implementation",
    "IndexGenerator",
    "PoolUnavailableError",
    "ProcessReplicatedIndexer",
    "ReplicatedJoinedIndexer",
    "ReplicatedUnjoinedIndexer",
    "SequentialIndexer",
    "SharedLockedIndexer",
    "StageTimings",
    "ThreadConfig",
    "available_cpus",
    "measure_stage_times",
    "validate_worker_count",
]
