"""The process backend's worker side: picklable payloads + worker body.

Worker processes cannot share live engine objects with the parent —
everything they receive must survive a pickle round-trip, and everything
they produce must come back as bytes.  This module is that boundary:

* :class:`TokenizerSpec` — a tokenizer's configuration as plain data;
* :class:`FilesystemSpec` — how a worker re-opens the corpus: by root
  path for the real filesystem (each process gets its own descriptors),
  or a by-value snapshot for in-memory filesystems (tests);
* :class:`WorkerBatch` — one worker's job: filesystem + file paths +
  tokenizer + optional format registry;
* :func:`build_replica` — the worker body: read → (convert) → scan →
  dedup → private-replica update, returning the replica as RWIRE1 wire
  bytes plus its elapsed time.

The worker pipeline is deliberately lean.  Where the threaded engine
routes every file through ``FnvHashSet`` de-duplication and an
``FnvHashMap``-backed index — per-term FNV-1a hashes computed byte by
byte in Python — a worker feeds the tokenizer straight into a
:class:`~repro.index.replica.ReplicaBuilder`, which de-duplicates with
a native set and stores postings as doc-id arrays.  The output is
identical (the merge-equivalence tests prove it); only the constant
factor differs, and on a multi-core machine the workers additionally
run truly in parallel because each owns its own interpreter and GIL.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.engine.faults import ERROR_POLICIES, FileFailure
from repro.extract.base import ExtractorSpec
from repro.extract.split import read_chunk
from repro.index.replica import ReplicaBuilder
from repro.obs.recorder import NULL_SPAN, Recorder
from repro.obs.spans import SpanRecord, rebase_spans
from repro.text.tokenizer import Tokenizer


@dataclass(frozen=True)
class TokenizerSpec:
    """Deprecated: a :class:`Tokenizer`'s configuration as plain data.

    Superseded by :class:`repro.extract.ExtractorSpec`, which carries
    the whole extraction pipeline (format registry included) across the
    worker boundary instead of the tokenizer alone.  Kept as a shim: a
    ``WorkerBatch`` built with ``tokenizer=``/``registry=`` folds them
    into an equivalent ``ExtractorSpec`` automatically.
    """

    min_length: int = 2
    max_length: int = 64
    stopwords: Tuple[str, ...] = ()

    @classmethod
    def from_tokenizer(cls, tokenizer: Tokenizer) -> "TokenizerSpec":
        warnings.warn(
            "TokenizerSpec is deprecated; use Extractor.spec() / "
            "repro.extract.ExtractorSpec instead (see docs/api.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        return cls(
            min_length=tokenizer.min_length,
            max_length=tokenizer.max_length,
            stopwords=tuple(sorted(tokenizer.stopwords)),
        )

    def build(self) -> Tokenizer:
        return Tokenizer(
            min_length=self.min_length,
            max_length=self.max_length,
            stopwords=self.stopwords or None,
        )

    def to_extractor_spec(self, registry=None) -> ExtractorSpec:
        """The equivalent ascii ExtractorSpec (the migration shim)."""
        return ExtractorSpec(
            kind="ascii",
            min_length=self.min_length,
            max_length=self.max_length,
            stopwords=self.stopwords,
            registry=registry,
        )


@dataclass(frozen=True)
class FilesystemSpec:
    """How a worker process re-opens the corpus filesystem.

    The real filesystem crosses the boundary as its root path only —
    each worker constructs a fresh :class:`OsFileSystem` and owns its
    file descriptors.  Any other backend (the in-memory VFS the tests
    use) is carried by value: ``snapshot`` is pickled wholesale, which
    is fine for test-sized corpora and meaningless for real ones.
    """

    base: Optional[str] = None
    snapshot: Optional[object] = None

    def __post_init__(self) -> None:
        if (self.base is None) == (self.snapshot is None):
            raise ValueError(
                "exactly one of base and snapshot must be set, got "
                f"base={self.base!r}, snapshot={self.snapshot!r}"
            )

    @classmethod
    def from_filesystem(cls, fs) -> "FilesystemSpec":
        # Only a real OsFileSystem may cross the boundary by root path.
        # Duck-typing on a string ``base`` attribute here would silently
        # reopen any in-memory filesystem that happens to carry one as
        # the wrong on-disk directory.
        from repro.fsmodel.realfs import OsFileSystem

        if isinstance(fs, OsFileSystem):
            return cls(base=fs.base)
        if not hasattr(fs, "read_file"):
            raise TypeError(
                f"{type(fs).__name__} is not a filesystem (no read_file)"
            )
        return cls(snapshot=fs)

    def open(self):
        """The worker-side filesystem object."""
        if self.base is not None:
            from repro.fsmodel.realfs import OsFileSystem

            return OsFileSystem(self.base)
        return self.snapshot


@dataclass(frozen=True)
class WorkerBatch:
    """Everything one worker process needs, as picklable data.

    The extraction pipeline crosses the boundary as ``extractor`` (an
    :class:`~repro.extract.ExtractorSpec`).  The legacy ``tokenizer`` /
    ``registry`` fields survive as a compatibility shim: when
    ``extractor`` is not given they fold into an equivalent ascii
    ExtractorSpec, so pre-extractor callers keep working unchanged.
    """

    fs: FilesystemSpec
    paths: Tuple[str, ...]
    # Deprecated pair, folded into ``extractor`` when it is None.
    tokenizer: TokenizerSpec = field(default_factory=TokenizerSpec)
    # Optional repro.formats.FormatRegistry, pickled by value.  Format
    # handlers are stateless plain-Python objects, so this is cheap; a
    # registry that cannot be pickled fails fast in the parent.
    registry: Optional[object] = None
    # Per-file error policy: "strict" raises across the pool boundary
    # (the original behaviour); "skip" records a FileFailure instead.
    on_error: str = "strict"
    # Record per-file ``extract.file`` detail spans in the worker (set
    # by the parent when tracing is enabled; the per-batch
    # ``extract.worker`` span is always recorded).
    trace: bool = False
    # The extraction pipeline; wins over tokenizer/registry when set.
    extractor: Optional[ExtractorSpec] = None

    def __post_init__(self) -> None:
        if self.on_error not in ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ERROR_POLICIES}, "
                f"got {self.on_error!r}"
            )
        if self.extractor is None:
            object.__setattr__(
                self,
                "extractor",
                self.tokenizer.to_extractor_spec(self.registry),
            )


@dataclass(frozen=True)
class WorkerResult:
    """One worker's output: its replica as wire bytes, plus timings."""

    replica: bytes
    elapsed: float
    file_count: int
    failures: Tuple[FileFailure, ...] = ()
    # Spans recorded inside the worker, with ``start`` *relative to the
    # worker body's start* so the parent can re-base them onto its own
    # perf_counter timeline (clocks are not comparable across
    # processes; the worker's elapsed time is).
    spans: Tuple[SpanRecord, ...] = ()


def build_replica(batch: WorkerBatch) -> WorkerResult:
    """The worker body: index ``batch.paths`` into a wire-format replica.

    Runs read → (format conversion) → scan → dedup → replica update for
    every file in the batch, entirely inside this process, and returns
    the replica serialized as RWIRE1 bytes.  Must stay a module-level
    function so the multiprocessing pool can pickle a reference to it.

    Under ``on_error="skip"`` every per-file exception is caught at its
    stage (read / extract / tokenize) and returned as a
    :class:`FileFailure` instead of crossing the pool boundary; the
    replica then covers exactly the surviving files.  Process-killing
    events (``os._exit``, signals) are not exceptions and are handled
    by the parent's retry ladder, not here.
    """
    started = time.perf_counter()
    rec = Recorder()
    worker_span = rec.span("extract.worker")
    with worker_span:
        fs = batch.fs.open()
        extractor = batch.extractor.build()
        read = fs.read_file
        prepare = extractor.prepare
        tokenize = extractor.tokenize
        builder = ReplicaBuilder()
        add_scan = builder.add_scan
        trace = batch.trace
        failures: List[FileFailure] = []
        if batch.on_error == "skip":
            for path in batch.paths:
                file_span = (
                    rec.span("extract.file", path=path) if trace else NULL_SPAN
                )
                with file_span:
                    try:
                        content = read(path)
                    except Exception as exc:
                        failures.append(
                            FileFailure.from_exception(path, "read", exc)
                        )
                        continue
                    try:
                        content = prepare(path, content)
                    except Exception as exc:
                        failures.append(
                            FileFailure.from_exception(path, "extract", exc)
                        )
                        continue
                    try:
                        # Materialized, not streamed: a tokenizer error
                        # must not leave a half-indexed document in the
                        # replica.
                        terms = tokenize(content)
                    except Exception as exc:
                        failures.append(
                            FileFailure.from_exception(path, "tokenize", exc)
                        )
                        continue
                    add_scan(path, terms)
        elif trace:
            for path in batch.paths:
                with rec.span("extract.file", path=path):
                    add_scan(path, tokenize(prepare(path, read(path))))
        else:
            for path in batch.paths:
                add_scan(path, tokenize(prepare(path, read(path))))
        blob = builder.to_bytes()
    return WorkerResult(
        replica=blob,
        elapsed=time.perf_counter() - started,
        file_count=len(batch.paths),
        failures=tuple(failures),
        spans=tuple(rebase_spans(rec.spans, -started)),
    )


@dataclass(frozen=True)
class ChunkBatch:
    """One chunk of a split huge file, as a picklable pool job.

    Chunk jobs ride the same dispatch/recovery machinery as
    :class:`WorkerBatch` jobs; the worker returns raw terms (not a
    replica blob) because chunks of one file must be unioned *in chunk
    order* in the parent before any index update.
    """

    fs: FilesystemSpec
    path: str
    file_size: int
    start: int
    end: int
    index: int
    count: int
    extractor: ExtractorSpec = field(default_factory=ExtractorSpec)
    on_error: str = "strict"
    trace: bool = False

    def __post_init__(self) -> None:
        if self.on_error not in ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ERROR_POLICIES}, "
                f"got {self.on_error!r}"
            )
        if not 0 <= self.start <= self.end <= self.file_size:
            raise ValueError(
                f"invalid chunk range [{self.start}, {self.end}) "
                f"in file of {self.file_size} bytes"
            )
        if not 0 <= self.index < self.count:
            raise ValueError(
                f"chunk index {self.index} outside count {self.count}"
            )


@dataclass(frozen=True)
class ChunkResult:
    """One chunk's output: its ordered terms (or one failure)."""

    path: str
    index: int
    count: int
    terms: Optional[Tuple[str, ...]]
    elapsed: float
    failure: Optional[FileFailure] = None
    spans: Tuple[SpanRecord, ...] = ()


def extract_chunk(batch: ChunkBatch) -> ChunkResult:
    """The chunk worker body: boundary-aligned read + tokenize.

    Must stay module-level for pool pickling, like :func:`build_replica`.
    Under ``on_error="skip"`` a failing chunk returns its FileFailure
    (the parent then drops the whole file — no half-indexed documents);
    under ``"strict"`` the exception crosses the pool boundary and
    fails the build, exactly like a file error would.
    """
    started = time.perf_counter()
    rec = Recorder()
    failure: Optional[FileFailure] = None
    terms: Optional[Tuple[str, ...]] = None
    chunk_span = rec.span(
        "extract.chunk",
        path=batch.path,
        start=batch.start,
        end=batch.end,
        index=batch.index,
    )
    with chunk_span:
        fs = batch.fs.open()
        extractor = batch.extractor.build()
        if batch.on_error == "skip":
            try:
                data = read_chunk(
                    fs,
                    batch.path,
                    batch.file_size,
                    batch.start,
                    batch.end,
                    extractor.boundary_bytes,
                )
            except Exception as exc:
                failure = FileFailure.from_exception(batch.path, "read", exc)
            else:
                try:
                    terms = tuple(extractor.chunk_terms(data))
                except Exception as exc:
                    failure = FileFailure.from_exception(
                        batch.path, "tokenize", exc
                    )
        else:
            data = read_chunk(
                fs,
                batch.path,
                batch.file_size,
                batch.start,
                batch.end,
                extractor.boundary_bytes,
            )
            terms = tuple(extractor.chunk_terms(data))
    return ChunkResult(
        path=batch.path,
        index=batch.index,
        count=batch.count,
        terms=terms,
        elapsed=time.perf_counter() - started,
        failure=failure,
        spans=tuple(rebase_spans(rec.spans, -started)),
    )
