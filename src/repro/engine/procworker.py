"""The process backend's worker side: picklable payloads + worker body.

Worker processes cannot share live engine objects with the parent —
everything they receive must survive a pickle round-trip, and everything
they produce must come back as bytes.  This module is that boundary:

* :class:`TokenizerSpec` — a tokenizer's configuration as plain data;
* :class:`FilesystemSpec` — how a worker re-opens the corpus: by root
  path for the real filesystem (each process gets its own descriptors),
  or a by-value snapshot for in-memory filesystems (tests);
* :class:`WorkerBatch` — one worker's job: filesystem + file paths +
  tokenizer + optional format registry;
* :func:`build_replica` — the worker body: read → (convert) → scan →
  dedup → private-replica update, returning the replica as RWIRE1 wire
  bytes plus its elapsed time.

The worker pipeline is deliberately lean.  Where the threaded engine
routes every file through ``FnvHashSet`` de-duplication and an
``FnvHashMap``-backed index — per-term FNV-1a hashes computed byte by
byte in Python — a worker feeds the tokenizer straight into a
:class:`~repro.index.replica.ReplicaBuilder`, which de-duplicates with
a native set and stores postings as doc-id arrays.  The output is
identical (the merge-equivalence tests prove it); only the constant
factor differs, and on a multi-core machine the workers additionally
run truly in parallel because each owns its own interpreter and GIL.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.engine.faults import ERROR_POLICIES, FileFailure
from repro.index.replica import ReplicaBuilder
from repro.obs.recorder import NULL_SPAN, Recorder
from repro.obs.spans import SpanRecord, rebase_spans
from repro.text.tokenizer import Tokenizer


@dataclass(frozen=True)
class TokenizerSpec:
    """A :class:`Tokenizer`'s configuration as picklable plain data."""

    min_length: int = 2
    max_length: int = 64
    stopwords: Tuple[str, ...] = ()

    @classmethod
    def from_tokenizer(cls, tokenizer: Tokenizer) -> "TokenizerSpec":
        return cls(
            min_length=tokenizer.min_length,
            max_length=tokenizer.max_length,
            stopwords=tuple(sorted(tokenizer.stopwords)),
        )

    def build(self) -> Tokenizer:
        return Tokenizer(
            min_length=self.min_length,
            max_length=self.max_length,
            stopwords=self.stopwords or None,
        )


@dataclass(frozen=True)
class FilesystemSpec:
    """How a worker process re-opens the corpus filesystem.

    The real filesystem crosses the boundary as its root path only —
    each worker constructs a fresh :class:`OsFileSystem` and owns its
    file descriptors.  Any other backend (the in-memory VFS the tests
    use) is carried by value: ``snapshot`` is pickled wholesale, which
    is fine for test-sized corpora and meaningless for real ones.
    """

    base: Optional[str] = None
    snapshot: Optional[object] = None

    def __post_init__(self) -> None:
        if (self.base is None) == (self.snapshot is None):
            raise ValueError(
                "exactly one of base and snapshot must be set, got "
                f"base={self.base!r}, snapshot={self.snapshot!r}"
            )

    @classmethod
    def from_filesystem(cls, fs) -> "FilesystemSpec":
        # Only a real OsFileSystem may cross the boundary by root path.
        # Duck-typing on a string ``base`` attribute here would silently
        # reopen any in-memory filesystem that happens to carry one as
        # the wrong on-disk directory.
        from repro.fsmodel.realfs import OsFileSystem

        if isinstance(fs, OsFileSystem):
            return cls(base=fs.base)
        if not hasattr(fs, "read_file"):
            raise TypeError(
                f"{type(fs).__name__} is not a filesystem (no read_file)"
            )
        return cls(snapshot=fs)

    def open(self):
        """The worker-side filesystem object."""
        if self.base is not None:
            from repro.fsmodel.realfs import OsFileSystem

            return OsFileSystem(self.base)
        return self.snapshot


@dataclass(frozen=True)
class WorkerBatch:
    """Everything one worker process needs, as picklable data."""

    fs: FilesystemSpec
    paths: Tuple[str, ...]
    tokenizer: TokenizerSpec = field(default_factory=TokenizerSpec)
    # Optional repro.formats.FormatRegistry, pickled by value.  Format
    # handlers are stateless plain-Python objects, so this is cheap; a
    # registry that cannot be pickled fails fast in the parent.
    registry: Optional[object] = None
    # Per-file error policy: "strict" raises across the pool boundary
    # (the original behaviour); "skip" records a FileFailure instead.
    on_error: str = "strict"
    # Record per-file ``extract.file`` detail spans in the worker (set
    # by the parent when tracing is enabled; the per-batch
    # ``extract.worker`` span is always recorded).
    trace: bool = False

    def __post_init__(self) -> None:
        if self.on_error not in ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ERROR_POLICIES}, "
                f"got {self.on_error!r}"
            )


@dataclass(frozen=True)
class WorkerResult:
    """One worker's output: its replica as wire bytes, plus timings."""

    replica: bytes
    elapsed: float
    file_count: int
    failures: Tuple[FileFailure, ...] = ()
    # Spans recorded inside the worker, with ``start`` *relative to the
    # worker body's start* so the parent can re-base them onto its own
    # perf_counter timeline (clocks are not comparable across
    # processes; the worker's elapsed time is).
    spans: Tuple[SpanRecord, ...] = ()


def build_replica(batch: WorkerBatch) -> WorkerResult:
    """The worker body: index ``batch.paths`` into a wire-format replica.

    Runs read → (format conversion) → scan → dedup → replica update for
    every file in the batch, entirely inside this process, and returns
    the replica serialized as RWIRE1 bytes.  Must stay a module-level
    function so the multiprocessing pool can pickle a reference to it.

    Under ``on_error="skip"`` every per-file exception is caught at its
    stage (read / extract / tokenize) and returned as a
    :class:`FileFailure` instead of crossing the pool boundary; the
    replica then covers exactly the surviving files.  Process-killing
    events (``os._exit``, signals) are not exceptions and are handled
    by the parent's retry ladder, not here.
    """
    started = time.perf_counter()
    rec = Recorder()
    worker_span = rec.span("extract.worker")
    with worker_span:
        fs = batch.fs.open()
        tokenizer = batch.tokenizer.build()
        registry = batch.registry
        read = fs.read_file
        iter_terms = tokenizer.iter_terms
        builder = ReplicaBuilder()
        add_scan = builder.add_scan
        trace = batch.trace
        failures: List[FileFailure] = []
        if batch.on_error == "skip":
            extract_text = (
                registry.extract_text if registry is not None else None
            )
            for path in batch.paths:
                file_span = (
                    rec.span("extract.file", path=path) if trace else NULL_SPAN
                )
                with file_span:
                    try:
                        content = read(path)
                    except Exception as exc:
                        failures.append(
                            FileFailure.from_exception(path, "read", exc)
                        )
                        continue
                    if extract_text is not None:
                        try:
                            content = extract_text(path, content)
                        except Exception as exc:
                            failures.append(
                                FileFailure.from_exception(
                                    path, "extract", exc
                                )
                            )
                            continue
                    try:
                        # Materialized, not streamed: a tokenizer error
                        # must not leave a half-indexed document in the
                        # replica.
                        terms = list(iter_terms(content))
                    except Exception as exc:
                        failures.append(
                            FileFailure.from_exception(path, "tokenize", exc)
                        )
                        continue
                    add_scan(path, terms)
        elif registry is None:
            if trace:
                for path in batch.paths:
                    with rec.span("extract.file", path=path):
                        add_scan(path, iter_terms(read(path)))
            else:
                for path in batch.paths:
                    add_scan(path, iter_terms(read(path)))
        else:
            extract_text = registry.extract_text
            if trace:
                for path in batch.paths:
                    with rec.span("extract.file", path=path):
                        add_scan(path, iter_terms(extract_text(path, read(path))))
            else:
                for path in batch.paths:
                    add_scan(path, iter_terms(extract_text(path, read(path))))
        blob = builder.to_bytes()
    return WorkerResult(
        replica=blob,
        elapsed=time.perf_counter() - started,
        file_count=len(batch.paths),
        failures=tuple(failures),
        spans=tuple(rebase_spans(rec.spans, -started)),
    )
