"""The process backend's worker side: picklable payloads + worker body.

Worker processes cannot share live engine objects with the parent —
everything they receive must survive a pickle round-trip, and everything
they produce must come back as bytes.  This module is that boundary:

* :class:`TokenizerSpec` — a tokenizer's configuration as plain data;
* :class:`FilesystemSpec` — how a worker re-opens the corpus: by root
  path for the real filesystem (each process gets its own descriptors),
  or a by-value snapshot for in-memory filesystems (tests);
* :class:`WorkerBatch` — one worker's job: filesystem + file paths +
  tokenizer + optional format registry;
* :func:`build_replica` — the worker body: read → (convert) → scan →
  dedup → private-replica update, returning the replica as RWIRE1 wire
  bytes plus its elapsed time.

The worker pipeline is deliberately lean.  Where the threaded engine
routes every file through ``FnvHashSet`` de-duplication and an
``FnvHashMap``-backed index — per-term FNV-1a hashes computed byte by
byte in Python — a worker feeds the tokenizer straight into a
:class:`~repro.index.replica.ReplicaBuilder`, which de-duplicates with
a native set and stores postings as doc-id arrays.  The output is
identical (the merge-equivalence tests prove it); only the constant
factor differs, and on a multi-core machine the workers additionally
run truly in parallel because each owns its own interpreter and GIL.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.index.replica import ReplicaBuilder
from repro.text.tokenizer import Tokenizer


@dataclass(frozen=True)
class TokenizerSpec:
    """A :class:`Tokenizer`'s configuration as picklable plain data."""

    min_length: int = 2
    max_length: int = 64
    stopwords: Tuple[str, ...] = ()

    @classmethod
    def from_tokenizer(cls, tokenizer: Tokenizer) -> "TokenizerSpec":
        return cls(
            min_length=tokenizer.min_length,
            max_length=tokenizer.max_length,
            stopwords=tuple(sorted(tokenizer.stopwords)),
        )

    def build(self) -> Tokenizer:
        return Tokenizer(
            min_length=self.min_length,
            max_length=self.max_length,
            stopwords=self.stopwords or None,
        )


@dataclass(frozen=True)
class FilesystemSpec:
    """How a worker process re-opens the corpus filesystem.

    The real filesystem crosses the boundary as its root path only —
    each worker constructs a fresh :class:`OsFileSystem` and owns its
    file descriptors.  Any other backend (the in-memory VFS the tests
    use) is carried by value: ``snapshot`` is pickled wholesale, which
    is fine for test-sized corpora and meaningless for real ones.
    """

    base: Optional[str] = None
    snapshot: Optional[object] = None

    def __post_init__(self) -> None:
        if (self.base is None) == (self.snapshot is None):
            raise ValueError(
                "exactly one of base and snapshot must be set, got "
                f"base={self.base!r}, snapshot={self.snapshot!r}"
            )

    @classmethod
    def from_filesystem(cls, fs) -> "FilesystemSpec":
        base = getattr(fs, "base", None)
        if isinstance(base, str):
            return cls(base=base)
        if not hasattr(fs, "read_file"):
            raise TypeError(
                f"{type(fs).__name__} is not a filesystem (no read_file)"
            )
        return cls(snapshot=fs)

    def open(self):
        """The worker-side filesystem object."""
        if self.base is not None:
            from repro.fsmodel.realfs import OsFileSystem

            return OsFileSystem(self.base)
        return self.snapshot


@dataclass(frozen=True)
class WorkerBatch:
    """Everything one worker process needs, as picklable data."""

    fs: FilesystemSpec
    paths: Tuple[str, ...]
    tokenizer: TokenizerSpec = field(default_factory=TokenizerSpec)
    # Optional repro.formats.FormatRegistry, pickled by value.  Format
    # handlers are stateless plain-Python objects, so this is cheap; a
    # registry that cannot be pickled fails fast in the parent.
    registry: Optional[object] = None


@dataclass(frozen=True)
class WorkerResult:
    """One worker's output: its replica as wire bytes, plus timings."""

    replica: bytes
    elapsed: float
    file_count: int


def build_replica(batch: WorkerBatch) -> WorkerResult:
    """The worker body: index ``batch.paths`` into a wire-format replica.

    Runs read → (format conversion) → scan → dedup → replica update for
    every file in the batch, entirely inside this process, and returns
    the replica serialized as RWIRE1 bytes.  Must stay a module-level
    function so the multiprocessing pool can pickle a reference to it.
    """
    started = time.perf_counter()
    fs = batch.fs.open()
    tokenizer = batch.tokenizer.build()
    registry = batch.registry
    read = fs.read_file
    iter_terms = tokenizer.iter_terms
    builder = ReplicaBuilder()
    add_scan = builder.add_scan
    if registry is None:
        for path in batch.paths:
            add_scan(path, iter_terms(read(path)))
    else:
        extract_text = registry.extract_text
        for path in batch.paths:
            add_scan(path, iter_terms(extract_text(path, read(path))))
    return WorkerResult(
        replica=builder.to_bytes(),
        elapsed=time.perf_counter() - started,
        file_count=len(batch.paths),
    )
