"""Build reports: what a run of the index generator returns.

Besides the index itself, every run records wall-clock stage timings so
the real engine can produce the same kind of breakdown as Table 1 and
the same per-configuration comparisons as Tables 2-4.  Since the
observability layer landed, the timings are *derived*: engines record
:class:`~repro.obs.spans.SpanRecord` spans on a per-build recorder and
:meth:`StageTimings.from_spans` folds the span tree back into the
paper's four stage numbers, so one measurement feeds the tables, the
Chrome trace, and the ``--stats`` summary alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.engine.config import Implementation, ThreadConfig
from repro.engine.faults import FileFailure
from repro.index.inverted import InvertedIndex
from repro.index.multi import MultiIndex
from repro.obs.spans import SpanRecord


@dataclass
class StageTimings:
    """Wall-clock seconds spent per pipeline stage."""

    filename_generation: float = 0.0
    extraction: float = 0.0
    update: float = 0.0
    join: float = 0.0

    @property
    def total(self) -> float:
        """Sum over stages; for concurrent stages this exceeds wall time."""
        return self.filename_generation + self.extraction + self.update + self.join

    @classmethod
    def from_spans(cls, spans: Sequence[SpanRecord]) -> "StageTimings":
        """Fold a build's span tree into the four stage numbers.

        Phase spans are named ``phase.stage1`` / ``phase.extract`` /
        ``phase.update`` / ``phase.join``; multiple spans of one phase
        (the sequential engine emits one pair per file) sum.  An
        extract phase marked ``inline_update=True`` ran its index
        updates inside the extractor threads (``y = 0``), so the update
        stage is credited with the same wall interval — exactly what
        the pre-span engines measured with their second
        ``perf_counter`` pair around the extract phase.
        """
        filename_generation = extraction = update = join = 0.0
        inline_update = False
        for span in spans:
            if span.name == "phase.stage1":
                filename_generation += span.duration
            elif span.name == "phase.extract":
                extraction += span.duration
                if span.attrs.get("inline_update"):
                    inline_update = True
            elif span.name == "phase.update":
                update += span.duration
            elif span.name == "phase.join":
                join += span.duration
        if update == 0.0 and inline_update:
            update = extraction
        return cls(
            filename_generation=filename_generation,
            extraction=extraction,
            update=update,
            join=join,
        )


def build_metrics(
    *,
    file_count: int,
    byte_count: int,
    term_count: int,
    posting_count: int,
    wall_time: float,
    failure_count: int = 0,
    retries: int = 0,
    degraded: bool = False,
) -> Dict[str, float]:
    """The flat throughput stats every engine attaches to its report.

    Merges in a snapshot of the global metrics registry (buffer depths,
    cache hit rates, query counters) when instrumentation has recorded
    anything, so one dict answers both "how fast was this build" and
    "what has the process observed so far".
    """
    from repro import obs

    wall = wall_time if wall_time > 0 else 1e-12
    metrics: Dict[str, float] = {
        "build.files": float(file_count),
        "build.files_per_s": file_count / wall,
        "build.bytes": float(byte_count),
        "build.bytes_per_s": byte_count / wall,
        "build.terms": float(term_count),
        "build.terms_per_s": term_count / wall,
        "build.postings": float(posting_count),
        "build.failures": float(failure_count),
        "build.retries": float(retries),
        "build.degraded": 1.0 if degraded else 0.0,
        "build.wall_s": wall_time,
    }
    metrics.update(obs.metrics().snapshot())
    # The acceptance surface promises a cache hit rate even when no
    # query cache has run yet in this process.
    metrics.setdefault("query.cache.hit_rate", 0.0)
    return metrics


@dataclass
class BuildReport:
    """Everything a build run produced."""

    implementation: Implementation
    config: ThreadConfig
    index: Union[InvertedIndex, MultiIndex]
    wall_time: float
    timings: StageTimings = field(default_factory=StageTimings)
    file_count: int = 0
    term_count: int = 0
    posting_count: int = 0
    # Wall-clock seconds each extractor thread was alive, by worker id —
    # the per-thread measurement behind the paper's balance discussion.
    extractor_times: List[float] = field(default_factory=list)
    # Files the build skipped under on_error="skip" (empty under
    # "strict", which aborts on the first error instead).
    failures: List[FileFailure] = field(default_factory=list)
    # Batches the process backend re-dispatched after a worker crash or
    # a batch timeout (0 for the threaded engines).
    retries: int = 0
    # True when the process backend could not create its pool and fell
    # back to the threaded Implementation 2 engine.
    degraded: bool = False
    # The build's span tree (repro.obs): stage phases, per-worker
    # extract/update spans, re-based worker-process spans.  Feeds the
    # Chrome trace exporter; ``timings`` is derived from it.
    spans: List[SpanRecord] = field(default_factory=list)
    # Flat observability stats: files/s, bytes/s, terms/s, plus a
    # snapshot of the global metrics registry (see build_metrics).
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def indexed_file_count(self) -> int:
        """Files actually in the index: listed minus *distinct* failed
        paths.  Deduplicating by path keeps the count honest even if a
        recovery ladder ever records one file twice."""
        return self.file_count - len({failure.path for failure in self.failures})

    @property
    def extractor_imbalance(self) -> float:
        """max/mean extractor lifetime (1.0 = perfectly balanced)."""
        if not self.extractor_times:
            return 1.0
        mean = sum(self.extractor_times) / len(self.extractor_times)
        return max(self.extractor_times) / mean if mean else 1.0

    def lookup(self, term: str) -> List[str]:
        """Search the produced index (works for single and multi)."""
        return self.index.lookup(term)

    def speedup_over(self, sequential_time: float) -> float:
        """Speed-up relative to a sequential baseline time."""
        if self.wall_time <= 0:
            raise ValueError("wall_time must be positive to compute speed-up")
        return sequential_time / self.wall_time

    def summary(self) -> str:
        """One-line human-readable result, echoing the paper's tables."""
        text = (
            f"{self.implementation.paper_name} {self.config}: "
            f"{self.wall_time:.3f}s, {self.file_count} files, "
            f"{self.term_count} terms, {self.posting_count} postings"
        )
        if self.metrics.get("build.files_per_s"):
            text += f", {self.metrics['build.files_per_s']:.0f} files/s"
        if self.failures:
            text += f", {len(self.failures)} skipped"
        if self.retries:
            text += f", {self.retries} retried"
        if self.degraded:
            text += " (degraded to threads)"
        return text


def checked_replica_paths(replicas: List[InvertedIndex]) -> Optional[str]:
    """Sanity check that replicas are disjoint per file.

    Returns the first path found in more than one replica, or None if
    the en-bloc invariant (each file indexed exactly once) holds.  Used
    by integration tests and debug assertions.
    """
    seen = set()
    for replica in replicas:
        replica_paths = set()
        for _, postings in replica.items():
            replica_paths.update(postings)
        overlap = seen & replica_paths
        if overlap:
            return next(iter(overlap))
        seen |= replica_paths
    return None
