"""Build reports: what a run of the index generator returns.

Besides the index itself, every run records wall-clock stage timings so
the real engine can produce the same kind of breakdown as Table 1 and
the same per-configuration comparisons as Tables 2-4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.engine.config import Implementation, ThreadConfig
from repro.engine.faults import FileFailure
from repro.index.inverted import InvertedIndex
from repro.index.multi import MultiIndex


@dataclass
class StageTimings:
    """Wall-clock seconds spent per pipeline stage."""

    filename_generation: float = 0.0
    extraction: float = 0.0
    update: float = 0.0
    join: float = 0.0

    @property
    def total(self) -> float:
        """Sum over stages; for concurrent stages this exceeds wall time."""
        return self.filename_generation + self.extraction + self.update + self.join


@dataclass
class BuildReport:
    """Everything a build run produced."""

    implementation: Implementation
    config: ThreadConfig
    index: Union[InvertedIndex, MultiIndex]
    wall_time: float
    timings: StageTimings = field(default_factory=StageTimings)
    file_count: int = 0
    term_count: int = 0
    posting_count: int = 0
    # Wall-clock seconds each extractor thread was alive, by worker id —
    # the per-thread measurement behind the paper's balance discussion.
    extractor_times: List[float] = field(default_factory=list)
    # Files the build skipped under on_error="skip" (empty under
    # "strict", which aborts on the first error instead).
    failures: List[FileFailure] = field(default_factory=list)
    # Batches the process backend re-dispatched after a worker crash or
    # a batch timeout (0 for the threaded engines).
    retries: int = 0
    # True when the process backend could not create its pool and fell
    # back to the threaded Implementation 2 engine.
    degraded: bool = False

    @property
    def indexed_file_count(self) -> int:
        """Files actually in the index: listed minus skipped."""
        return self.file_count - len(self.failures)

    @property
    def extractor_imbalance(self) -> float:
        """max/mean extractor lifetime (1.0 = perfectly balanced)."""
        if not self.extractor_times:
            return 1.0
        mean = sum(self.extractor_times) / len(self.extractor_times)
        return max(self.extractor_times) / mean if mean else 1.0

    def lookup(self, term: str) -> List[str]:
        """Search the produced index (works for single and multi)."""
        return self.index.lookup(term)

    def speedup_over(self, sequential_time: float) -> float:
        """Speed-up relative to a sequential baseline time."""
        if self.wall_time <= 0:
            raise ValueError("wall_time must be positive to compute speed-up")
        return sequential_time / self.wall_time

    def summary(self) -> str:
        """One-line human-readable result, echoing the paper's tables."""
        text = (
            f"{self.implementation.paper_name} {self.config}: "
            f"{self.wall_time:.3f}s, {self.file_count} files, "
            f"{self.term_count} terms, {self.posting_count} postings"
        )
        if self.failures:
            text += f", {len(self.failures)} skipped"
        if self.retries:
            text += f", {self.retries} retried"
        if self.degraded:
            text += " (degraded to threads)"
        return text


def checked_replica_paths(replicas: List[InvertedIndex]) -> Optional[str]:
    """Sanity check that replicas are disjoint per file.

    Returns the first path found in more than one replica, or None if
    the en-bloc invariant (each file indexed exactly once) holds.  Used
    by integration tests and debug assertions.
    """
    seen = set()
    for replica in replicas:
        replica_paths = set()
        for _, postings in replica.items():
            replica_paths.update(postings)
        overlap = seen & replica_paths
        if overlap:
            return next(iter(overlap))
        seen |= replica_paths
    return None
