"""Implementation 1s: a shared index with striped locks (extension).

Between the paper's Implementation 1 (one lock) and its replicated
designs: one logical shared index, but the term space is striped over K
independently locked shards, so concurrent writers rarely collide.
Configuration semantics follow Implementation 1 (``z`` must be 0).
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.base import ThreadedIndexerBase
from repro.engine.config import Implementation, ThreadConfig
from repro.fsmodel.nodes import FileRef
from repro.index.sharded import ShardedInvertedIndex
from repro.text.termblock import TermBlock


class ShardedLockedIndexer(ThreadedIndexerBase):
    """One shared index striped over ``shards`` locks."""

    implementation = Implementation.SHARED_LOCKED

    def __init__(self, fs, shards: int = 16, **kwargs) -> None:
        super().__init__(fs, **kwargs)
        self.shards = shards

    def _build(
        self, config: ThreadConfig, files: Sequence[FileRef]
    ) -> ShardedInvertedIndex:
        index = ShardedInvertedIndex(self.shards, sync=self.sync)

        def striped_update(_worker: int, block: TermBlock) -> None:
            # add_block locks only the shards the block touches.
            index.add_block(block)

        if config.uses_buffer:
            self._run_buffered(config, files, striped_update)
        else:
            self._run_extractors(
                config, files, striped_update, inline_update=True
            )
        return index
