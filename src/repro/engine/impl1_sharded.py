"""Implementation 1s: a shared index with striped locks (extension).

Between the paper's Implementation 1 (one lock) and its replicated
designs: one logical shared index, but the term space is striped over K
independently locked shards, so concurrent writers rarely collide.
Configuration semantics follow Implementation 1 (``z`` must be 0).
"""

from __future__ import annotations

import time
from typing import Sequence, Tuple

from repro.engine.base import ThreadedIndexerBase
from repro.engine.config import Implementation, ThreadConfig
from repro.fsmodel.nodes import FileRef
from repro.index.sharded import ShardedInvertedIndex
from repro.text.termblock import TermBlock


class ShardedLockedIndexer(ThreadedIndexerBase):
    """One shared index striped over ``shards`` locks."""

    implementation = Implementation.SHARED_LOCKED

    def __init__(self, fs, shards: int = 16, **kwargs) -> None:
        super().__init__(fs, **kwargs)
        self.shards = shards

    def _build(
        self, config: ThreadConfig, files: Sequence[FileRef]
    ) -> Tuple[ShardedInvertedIndex, float, float, float]:
        index = ShardedInvertedIndex(self.shards, sync=self.sync)

        def striped_update(_worker: int, block: TermBlock) -> None:
            # add_block locks only the shards the block touches.
            index.add_block(block)

        if config.uses_buffer:
            extract_s, update_s = self._run_buffered(config, files, striped_update)
        else:
            t0 = time.perf_counter()
            extract_s = self._run_extractors(config, files, striped_update)
            update_s = time.perf_counter() - t0
        return index, 0.0, update_s, extract_s
