"""Fault-tolerance policy and failure records for index builds.

A real desktop corpus is hostile: files vanish between stage 1 and
stage 2, permissions deny reads, format converters choke on garbage,
and — for the process backend — whole worker processes can die or hang.
This module is the shared vocabulary every engine uses to talk about
those events:

* :data:`ERROR_POLICIES` — the per-file error policies: ``"strict"``
  (any file error aborts the build, the original behaviour) and
  ``"skip"`` (drop the file, record a :class:`FileFailure`, keep
  building);
* :class:`FileFailure` — one file the build could not index, as plain
  picklable data (it must cross the worker-process boundary);
* :class:`FaultPolicy` — the knobs of the process backend's recovery
  ladder: per-file policy, bounded retries with batch splitting, and an
  optional per-dispatch timeout for hang detection;
* :class:`PoolUnavailableError` — raised when a worker pool cannot be
  created at all, the signal to degrade to the threaded engine.

Everything here is dependency-free plain data so worker processes can
import it without dragging in engine machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set, Tuple

ERROR_POLICIES: Tuple[str, ...] = ("strict", "skip")

# Stages a per-file failure can be attributed to.  "worker" marks files
# lost to a crashed or hung worker process that also failed in-parent.
FAILURE_STAGES: Tuple[str, ...] = ("read", "extract", "tokenize", "worker")


class PoolUnavailableError(RuntimeError):
    """A worker pool could not be created (fork failure, start method
    unavailable, resource exhaustion).  Callers degrade to threads."""


@dataclass(frozen=True)
class FileFailure:
    """One file the build skipped, as picklable plain data."""

    path: str
    stage: str
    error: str
    error_type: str = ""

    @classmethod
    def from_exception(
        cls, path: str, stage: str, exc: BaseException
    ) -> "FileFailure":
        return cls(
            path=path,
            stage=stage,
            error=str(exc) or repr(exc),
            error_type=type(exc).__name__,
        )

    def __str__(self) -> str:
        return f"{self.path} [{self.stage}] {self.error_type}: {self.error}"


def reconcile_failures(
    failures: Iterable[FileFailure], succeeded_paths: Set[str]
) -> List[FileFailure]:
    """Failure records consistent with what actually landed in the index.

    The process backend's recovery ladder can touch one file more than
    once (a batch that errors, then succeeds when retried after a
    split).  A file that *ultimately* succeeded must not stay in the
    failure list — ``BuildReport.indexed_file_count`` subtracts failed
    paths from the listing, so a stale record would under-count the
    index.  This drops any failure whose path is in
    ``succeeded_paths`` and de-duplicates the rest by path (first
    record wins: the earliest failure is the root cause).
    """
    reconciled: List[FileFailure] = []
    seen: Set[str] = set()
    for failure in failures:
        if failure.path in succeeded_paths or failure.path in seen:
            continue
        seen.add(failure.path)
        reconciled.append(failure)
    return reconciled


@dataclass(frozen=True)
class FaultPolicy:
    """How a build reacts to per-file errors and worker failures.

    * ``on_error`` — ``"strict"`` propagates the first file error and
      aborts (the historical behaviour); ``"skip"`` records the file as
      a :class:`FileFailure` and keeps building.
    * ``max_retries`` — how many times a batch whose worker crashed or
      timed out is re-dispatched (split in half each time to isolate
      poisoned files) before the remaining sub-batch falls back to
      being indexed in the parent process.
    * ``batch_timeout`` — seconds a dispatch round may run before its
      unfinished batches are declared hung and retried; ``None``
      disables hang detection (a hung worker then hangs the build,
      exactly like the pre-fault-tolerance engine).
    * ``retry_backoff`` — base sleep in seconds between retry rounds,
      scaled by the attempt number.
    """

    on_error: str = "strict"
    max_retries: int = 2
    batch_timeout: Optional[float] = None
    retry_backoff: float = 0.05

    def __post_init__(self) -> None:
        if self.on_error not in ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ERROR_POLICIES}, "
                f"got {self.on_error!r}"
            )
        if not isinstance(self.max_retries, int) or isinstance(
            self.max_retries, bool
        ):
            raise TypeError(
                f"max_retries must be an int, got "
                f"{type(self.max_retries).__name__}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries cannot be negative, got {self.max_retries}"
            )
        if self.batch_timeout is not None and self.batch_timeout <= 0:
            raise ValueError(
                f"batch_timeout must be positive (or None to disable), "
                f"got {self.batch_timeout}"
            )
        if self.retry_backoff < 0:
            raise ValueError(
                f"retry_backoff cannot be negative, got {self.retry_backoff}"
            )

    @property
    def skips(self) -> bool:
        """True when per-file errors are recorded rather than raised."""
        return self.on_error == "skip"
