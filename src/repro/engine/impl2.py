"""Implementation 2: replicated indices joined at the end ("Join Forces").

Each writer (updater thread, or extractor when ``y = 0``) owns a private
index replica, so stages 2-3 run with *no* index synchronization at all.
A barrier separates the build from the join; then ``z`` joiner threads
merge the replicas into one index (``z = 1``: a single fold; ``z > 1``:
a pairwise reduction tree with ``z`` threads per level).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.engine.base import ThreadedIndexerBase
from repro.engine.config import Implementation, ThreadConfig
from repro.fsmodel.nodes import FileRef
from repro.index.inverted import InvertedIndex
from repro.index.merge import join_indices, join_pairwise_tree
from repro.text.termblock import TermBlock


class ReplicatedJoinedIndexer(ThreadedIndexerBase):
    """Private replicas per writer, merged after a barrier."""

    implementation = Implementation.REPLICATED_JOINED

    def _build(
        self, config: ThreadConfig, files: Sequence[FileRef]
    ) -> InvertedIndex:
        replicas: List[InvertedIndex] = [
            InvertedIndex() for _ in range(config.replica_count)
        ]

        def private_update(worker: int, block: TermBlock) -> None:
            # No lock: each worker id maps to its own replica.
            self.sync.access(f"impl2.replica[{worker}]")
            replicas[worker].add_block(block)

        if config.uses_buffer:
            self._run_buffered(config, files, private_update)
        else:
            self._run_extractors(
                config, files, private_update, inline_update=True
            )

        # All writers have completed (thread joins act as the barrier the
        # paper describes); now the join phase runs.
        with self._recorder.span("phase.join", joiners=config.joiners):
            if config.joiners == 1:
                index = join_indices(replicas)
            else:
                index = join_pairwise_tree(
                    replicas, threads_per_level=config.joiners
                )
        return index
