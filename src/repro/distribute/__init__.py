"""Work-distribution strategies for handing files to term extractors.

Section 2.1 of the paper lists the options considered: "Work queues,
round-robin distribution, assignment based on file lengths, or work
stealing".  All four are implemented here behind one interface so the
ablation benchmark can compare them.  The paper's finding — and our
default — is that plain round-robin into private per-extractor vectors
is fastest, because it needs no synchronization at all.
"""

from repro.distribute.base import Distribution, DistributionStrategy
from repro.distribute.roundrobin import RoundRobinStrategy
from repro.distribute.sizebalanced import SizeBalancedStrategy
from repro.distribute.workqueue import SharedQueueStrategy, WorkQueue
from repro.distribute.worksteal import StealingDeque, WorkStealingStrategy

__all__ = [
    "Distribution",
    "DistributionStrategy",
    "RoundRobinStrategy",
    "SharedQueueStrategy",
    "SizeBalancedStrategy",
    "StealingDeque",
    "WorkStealingStrategy",
    "WorkQueue",
]
