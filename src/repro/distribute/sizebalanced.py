"""Size-balanced distribution ("assignment based on file lengths").

The alternative the paper tried before settling on round-robin: spread
files so the per-extractor *byte* loads are even, using the classic
Longest-Processing-Time greedy — sort files by size descending and give
each to the currently lightest worker.  LPT guarantees a makespan within
4/3 of optimal, so this is the strongest static balancer; the ablation
shows it still loses to round-robin once the sort cost and the loss of
traversal locality are accounted for.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence

from repro.distribute.base import Distribution, DistributionStrategy
from repro.fsmodel.nodes import FileRef


class SizeBalancedStrategy(DistributionStrategy):
    """LPT greedy balancing on file size."""

    name = "size-balanced"

    def distribute(self, files: Sequence[FileRef], workers: int) -> Distribution:
        """Biggest file first, always to the least-loaded extractor."""
        self._check(workers)
        assignments: List[List[FileRef]] = [[] for _ in range(workers)]
        # Heap of (current byte load, worker id); id breaks ties stably.
        heap = [(0, w) for w in range(workers)]
        heapq.heapify(heap)
        for ref in sorted(files, key=lambda r: (-r.size, r.path)):
            load, worker = heapq.heappop(heap)
            assignments[worker].append(ref)
            heapq.heappush(heap, (load + ref.size, worker))
        return Distribution(assignments)
