"""Round-robin distribution — the paper's winner.

"Given k term extractors, the filename generator fills k vectors with
filenames in round-robin fashion.  Each term extractor then processes
its private vector of filenames without any interference or
synchronization."
"""

from __future__ import annotations

from typing import List, Sequence

from repro.distribute.base import Distribution, DistributionStrategy
from repro.fsmodel.nodes import FileRef


class RoundRobinStrategy(DistributionStrategy):
    """File i goes to extractor i mod k."""

    name = "round-robin"

    def distribute(self, files: Sequence[FileRef], workers: int) -> Distribution:
        """Deal files out like cards, preserving traversal order per worker."""
        self._check(workers)
        assignments: List[List[FileRef]] = [[] for _ in range(workers)]
        for i, ref in enumerate(files):
            assignments[i % workers].append(ref)
        return Distribution(assignments)
