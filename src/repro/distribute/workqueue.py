"""Shared work queue distribution.

All extractors pull from one synchronized queue — perfectly balanced at
runtime, but every filename costs "a pair of lock operations ...
generated and consumed", which is exactly why the paper found running
stage 1 concurrently with stage 2 "highly inefficient".  The queue
counts its lock operations so the ablation can report the overhead.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import List, Optional, Sequence

from repro.distribute.base import Distribution, DistributionStrategy
from repro.fsmodel.nodes import FileRef


class WorkQueue:
    """A synchronized FIFO of file refs with lock-operation accounting."""

    def __init__(self, items: Optional[Sequence[FileRef]] = None) -> None:
        self._items = deque(items or ())
        self._lock = threading.Lock()
        self._closed = False
        self._condition = threading.Condition(self._lock)
        self.lock_operations = 0

    def put(self, ref: FileRef) -> None:
        """Producer side: append one filename (one lock pair)."""
        with self._condition:
            if self._closed:
                raise RuntimeError("queue is closed")
            self.lock_operations += 1
            self._items.append(ref)
            self._condition.notify()

    def get(self) -> Optional[FileRef]:
        """Consumer side: pop one filename, blocking until the queue has
        an item or is closed; returns None when drained and closed."""
        with self._condition:
            self.lock_operations += 1
            while not self._items and not self._closed:
                self._condition.wait()
            if self._items:
                return self._items.popleft()
            return None

    def close(self) -> None:
        """Signal that no more filenames will be produced."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class SharedQueueStrategy(DistributionStrategy):
    """Static split via a shared queue drained by k consumers in turn.

    For the static :class:`Distribution` view this degenerates to
    round-robin order (consumers pull one at a time), but it still pays
    the per-item lock pair — the accounting the ablation benchmark uses.
    """

    name = "shared-queue"

    def distribute(self, files: Sequence[FileRef], workers: int) -> Distribution:
        """Simulate k consumers taking turns pulling from one queue."""
        self._check(workers)
        queue = WorkQueue()
        for ref in files:
            queue.put(ref)
        queue.close()
        assignments: List[List[FileRef]] = [[] for _ in range(workers)]
        worker = 0
        while True:
            ref = queue.get()
            if ref is None:
                break
            assignments[worker].append(ref)
            worker = (worker + 1) % workers
        self.lock_operations = queue.lock_operations
        return Distribution(assignments)
