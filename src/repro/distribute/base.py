"""Distribution strategy interface.

A strategy splits the stage-1 filename list into ``k`` per-extractor
work lists up front.  Queue-based strategies additionally expose runtime
pull semantics, but every strategy can be asked for a static
:class:`Distribution` — the engines use that to size their threads and
the tests use it to check balance properties.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Sequence

from repro.fsmodel.nodes import FileRef


@dataclass(frozen=True)
class Distribution:
    """The result of statically splitting files among extractors."""

    assignments: List[List[FileRef]]

    @property
    def worker_count(self) -> int:
        """Number of extractor work lists."""
        return len(self.assignments)

    @property
    def file_count(self) -> int:
        """Total files across all work lists."""
        return sum(len(a) for a in self.assignments)

    def bytes_per_worker(self) -> List[int]:
        """Total bytes assigned to each extractor."""
        return [sum(ref.size for ref in a) for a in self.assignments]

    def imbalance(self) -> float:
        """max/mean byte load across workers (1.0 = perfectly balanced)."""
        loads = self.bytes_per_worker()
        mean = sum(loads) / len(loads) if loads else 0.0
        return (max(loads) / mean) if mean else 1.0


class DistributionStrategy(abc.ABC):
    """Splits a filename list into per-extractor work lists."""

    name: str = "abstract"

    @abc.abstractmethod
    def distribute(self, files: Sequence[FileRef], workers: int) -> Distribution:
        """Assign ``files`` to ``workers`` extractors."""

    def _check(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"worker count must be at least 1, got {workers}")
