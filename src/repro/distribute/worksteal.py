"""Work stealing distribution.

The fourth option from section 2.1: each extractor owns a deque seeded
round-robin; when it runs dry it steals from the back of the busiest
victim's deque.  Statically this equals round-robin; the value (and the
cost — synchronization on every steal) appears at runtime, which the
threaded engine and the ablation exercise via :class:`StealingDeque`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import List, Optional, Sequence

from repro.distribute.base import Distribution, DistributionStrategy
from repro.distribute.roundrobin import RoundRobinStrategy
from repro.fsmodel.nodes import FileRef


class StealingDeque:
    """A deque owned by one worker that others may steal from.

    The owner pops from the front (LIFO locality is irrelevant here:
    items are files, processed once); thieves steal from the back, which
    minimizes contention with the owner.  A single lock per deque keeps
    the implementation obviously correct; steal counts are recorded.
    """

    def __init__(self, items: Optional[Sequence[FileRef]] = None) -> None:
        self._items = deque(items or ())
        self._lock = threading.Lock()
        self.steals_suffered = 0

    def pop_own(self) -> Optional[FileRef]:
        """Owner's pop; None when empty."""
        with self._lock:
            return self._items.popleft() if self._items else None

    def steal(self) -> Optional[FileRef]:
        """Thief's pop from the opposite end; None when empty."""
        with self._lock:
            if not self._items:
                return None
            self.steals_suffered += 1
            return self._items.pop()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class WorkStealingStrategy(DistributionStrategy):
    """Round-robin seeding plus runtime stealing support."""

    name = "work-stealing"

    def distribute(self, files: Sequence[FileRef], workers: int) -> Distribution:
        """Static view: identical to round-robin (stealing is a runtime act)."""
        return RoundRobinStrategy().distribute(files, workers)

    def make_deques(
        self, files: Sequence[FileRef], workers: int
    ) -> List[StealingDeque]:
        """Seeded deques for a real work-stealing run."""
        distribution = self.distribute(files, workers)
        return [StealingDeque(a) for a in distribution.assignments]

    @staticmethod
    def next_item(deques: List[StealingDeque], owner: int) -> Optional[FileRef]:
        """Owner's pop, falling back to stealing from the longest victim."""
        item = deques[owner].pop_own()
        if item is not None:
            return item
        victims = sorted(
            (i for i in range(len(deques)) if i != owner),
            key=lambda i: -len(deques[i]),
        )
        for victim in victims:
            item = deques[victim].steal()
            if item is not None:
                return item
        return None
