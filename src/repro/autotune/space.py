"""The tunable configuration space."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.engine.config import (
    BACKENDS,
    Implementation,
    ThreadConfig,
    enumerate_configs,
)


@dataclass(frozen=True)
class ConfigurationSpace:
    """Bounds of the (x, y, z) space for one implementation.

    ``max_extractors`` defaults follow the paper's sweeps: thread counts
    well beyond the measured optima but bounded (running 51,000-file
    builds at absurd thread counts teaches nothing).

    A space is scoped to one ``backend``.  With ``backend="process"``
    (Implementation 2 only) the y dimension collapses — workers fuse
    extraction and update, so every point has y = 0 — leaving a 2-D
    (x, z) sweep.
    """

    implementation: Implementation
    max_extractors: int = 12
    max_updaters: int = 6
    max_joiners: int = 2
    backend: str = "thread"

    def __post_init__(self) -> None:
        if self.max_extractors < 1:
            raise ValueError("max_extractors must be at least 1")
        if self.max_updaters < 0 or self.max_joiners < 0:
            raise ValueError("bounds cannot be negative")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if (
            self.backend == "process"
            and self.implementation is not Implementation.REPLICATED_JOINED
        ):
            raise ValueError(
                "the process backend exists for Implementation 2 only, got "
                f"{self.implementation.paper_name}"
            )

    def __iter__(self) -> Iterator[ThreadConfig]:
        return enumerate_configs(
            self.implementation,
            self.max_extractors,
            self.max_updaters,
            self.max_joiners,
            backend=self.backend,
        )

    def configurations(self) -> List[ThreadConfig]:
        """All valid configurations, materialized."""
        return list(self)

    def contains(self, config: ThreadConfig) -> bool:
        """Whether ``config`` is valid and within bounds."""
        if config.backend != self.backend:
            return False
        try:
            config.validate_for(self.implementation)
        except ValueError:
            return False
        return (
            1 <= config.extractors <= self.max_extractors
            and 0 <= config.updaters <= self.max_updaters
            and config.joiners <= self.max_joiners
        )

    def neighbours(self, config: ThreadConfig) -> List[ThreadConfig]:
        """Valid configurations one +-1 step away in x, y or z."""
        result = []
        for dx, dy, dz in (
            (1, 0, 0), (-1, 0, 0),
            (0, 1, 0), (0, -1, 0),
            (0, 0, 1), (0, 0, -1),
        ):
            candidate = ThreadConfig(
                max(1, config.extractors + dx),
                max(0, config.updaters + dy),
                max(0, config.joiners + dz),
                backend=config.backend,
            )
            if candidate != config and self.contains(candidate):
                result.append(candidate)
        return result
