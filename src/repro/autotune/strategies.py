"""Search strategies over the configuration space."""

from __future__ import annotations

import random
from typing import Optional

from repro.autotune.space import ConfigurationSpace
from repro.autotune.tuner import AutoTuner, Objective, TuningResult


class ExhaustiveSearch:
    """Evaluate every valid configuration — the paper's methodology."""

    def run(self, space: ConfigurationSpace, objective: Objective) -> TuningResult:
        """Sweep the whole space; guaranteed to find the optimum."""
        tuner = AutoTuner(objective)
        for config in space:
            tuner.evaluate(config)
        return tuner.result()


class RandomSearch:
    """Uniformly sample ``budget`` configurations."""

    def __init__(self, budget: int = 30, seed: int = 0) -> None:
        if budget < 1:
            raise ValueError("budget must be at least 1")
        self.budget = budget
        self.seed = seed

    def run(self, space: ConfigurationSpace, objective: Objective) -> TuningResult:
        """Evaluate a random sample (without replacement) of the space."""
        configs = space.configurations()
        rng = random.Random(self.seed)
        rng.shuffle(configs)
        tuner = AutoTuner(objective)
        for config in configs[: self.budget]:
            tuner.evaluate(config)
        return tuner.result()


class HillClimbing:
    """Greedy +-1 neighbourhood descent with random restarts.

    Starts from a random configuration, moves to the best improving
    neighbour until none improves, then restarts; stops when the
    evaluation budget is exhausted or all restarts are done.
    """

    def __init__(
        self, restarts: int = 3, budget: Optional[int] = None, seed: int = 0
    ) -> None:
        if restarts < 1:
            raise ValueError("restarts must be at least 1")
        self.restarts = restarts
        self.budget = budget
        self.seed = seed

    def run(self, space: ConfigurationSpace, objective: Objective) -> TuningResult:
        """Climb from ``restarts`` random starting points."""
        configs = space.configurations()
        rng = random.Random(self.seed)
        tuner = AutoTuner(objective)

        def budget_left() -> bool:
            return self.budget is None or tuner.evaluations < self.budget

        for _ in range(self.restarts):
            if not budget_left():
                break
            current = rng.choice(configs)
            current_value = tuner.evaluate(current)
            while budget_left():
                neighbours = space.neighbours(current)
                if not neighbours:
                    break
                scored = [(tuner.evaluate(n), n) for n in neighbours]
                best_value, best_neighbour = min(scored, key=lambda t: t[0])
                if best_value >= current_value:
                    break
                current, current_value = best_neighbour, best_value
        return tuner.result()
