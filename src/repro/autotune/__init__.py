"""Auto-tuning over the thread-configuration space.

The paper used the auto-tuner of Schäfer et al. to explore thread
allocations ("Use an auto-tuner to speed up exploring the design
space"), but could not use it throughout because it was written for C#.
This package provides that missing piece: tuners that search the
``(implementation, x, y, z)`` space against any objective function —
usually a :class:`~repro.simengine.pipeline.SimPipeline` run, but the
threaded engine works too.

* :class:`ExhaustiveSearch` — evaluate every valid configuration (the
  paper's methodology for Tables 2-4);
* :class:`RandomSearch` — a sampling baseline;
* :class:`HillClimbing` — greedy neighbourhood descent with restarts,
  typically finding the optimum with ~10x fewer evaluations.
"""

from repro.autotune.space import ConfigurationSpace
from repro.autotune.strategies import ExhaustiveSearch, HillClimbing, RandomSearch
from repro.autotune.tuner import AutoTuner, TuningResult

__all__ = [
    "AutoTuner",
    "ConfigurationSpace",
    "ExhaustiveSearch",
    "HillClimbing",
    "RandomSearch",
    "TuningResult",
]
