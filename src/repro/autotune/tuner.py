"""The tuner facade and its result type."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.engine.config import ThreadConfig

Objective = Callable[[ThreadConfig], float]


@dataclass
class TuningResult:
    """Outcome of a tuning session (lower objective is better)."""

    best_config: ThreadConfig
    best_value: float
    evaluations: int
    history: List[Tuple[ThreadConfig, float]] = field(default_factory=list)

    def top(self, n: int = 5) -> List[Tuple[ThreadConfig, float]]:
        """The ``n`` best (config, value) pairs seen."""
        return sorted(self.history, key=lambda item: item[1])[:n]


class AutoTuner:
    """Runs a search strategy against an objective with memoization.

    The objective is called at most once per distinct configuration —
    simulator runs are deterministic, so re-evaluation is pure waste
    (and strategies like hill climbing with restarts revisit a lot).
    """

    def __init__(self, objective: Objective) -> None:
        self._objective = objective
        self._cache: Dict[ThreadConfig, float] = {}
        self.evaluations = 0

    def evaluate(self, config: ThreadConfig) -> float:
        """Objective value for ``config`` (memoized)."""
        if config not in self._cache:
            self._cache[config] = self._objective(config)
            self.evaluations += 1
        return self._cache[config]

    def result(self) -> TuningResult:
        """Best configuration over everything evaluated so far."""
        if not self._cache:
            raise RuntimeError("nothing evaluated yet")
        history = list(self._cache.items())
        best_config, best_value = min(history, key=lambda item: item[1])
        return TuningResult(
            best_config=best_config,
            best_value=best_value,
            evaluations=self.evaluations,
            history=history,
        )
