"""Corpus statistics.

``CorpusStats`` summarizes a file set the way the paper describes its
benchmark ("about 51.000 ASCII text files ... about 869 MB of data ...
many small files and five large text files") and is what the simulated
engine's workload model is derived from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.fsmodel.nodes import FileRef


@dataclass(frozen=True)
class CorpusStats:
    """Aggregate statistics over a set of files."""

    file_count: int
    total_bytes: int
    min_size: int
    max_size: int

    @property
    def mean_size(self) -> float:
        """Average file size in bytes (0.0 for an empty corpus)."""
        return self.total_bytes / self.file_count if self.file_count else 0.0

    @property
    def total_megabytes(self) -> float:
        """Total size in MB (10^6 bytes, as the paper reports sizes)."""
        return self.total_bytes / 1_000_000


def collect_stats(files: Iterable[FileRef]) -> CorpusStats:
    """Aggregate :class:`CorpusStats` over an iterable of file refs."""
    count = 0
    total = 0
    smallest = None
    largest = 0
    for ref in files:
        count += 1
        total += ref.size
        largest = max(largest, ref.size)
        smallest = ref.size if smallest is None else min(smallest, ref.size)
    return CorpusStats(
        file_count=count,
        total_bytes=total,
        min_size=smallest or 0,
        max_size=largest,
    )


def largest_files(files: Iterable[FileRef], n: int) -> List[FileRef]:
    """The ``n`` largest files, biggest first (ties broken by path)."""
    return sorted(files, key=lambda ref: (-ref.size, ref.path))[:n]
