"""In-memory filesystem with a path-based API.

``VirtualFileSystem`` wraps a :class:`~repro.fsmodel.nodes.VirtualDirectory`
tree behind the same protocol :class:`~repro.fsmodel.realfs.OsFileSystem`
offers: ``write_file``, ``mkdir``, ``read_file``, ``file_size``,
``list_files`` — everything the index generator's stages 1 and 2 need.

Paths are POSIX-style, relative to the filesystem root (``"docs/a.txt"``).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple, Union

from repro.fsmodel.nodes import FileRef, VirtualDirectory, VirtualFile


def _split(path: str) -> List[str]:
    parts = [p for p in path.strip("/").split("/") if p]
    if any(p in (".", "..") for p in parts):
        raise ValueError(f"path may not contain '.' or '..': {path!r}")
    return parts


class VirtualFileSystem:
    """A complete in-memory filesystem rooted at a virtual directory."""

    def __init__(self) -> None:
        self.root = VirtualDirectory()
        # Logical modification clock: bumped on every mutation so
        # (size, mtime) fingerprints behave like a real filesystem's
        # stat-based change detection.
        self._clock = 0

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    # -- construction -------------------------------------------------

    def mkdir(self, path: str, parents: bool = False) -> None:
        """Create a directory; with ``parents`` create missing ancestors."""
        parts = _split(path)
        if not parts:
            raise ValueError("cannot create the root directory")
        node = self.root
        for part in parts[:-1]:
            child = node.entries.get(part)
            if child is None:
                if not parents:
                    raise FileNotFoundError(f"missing parent directory: {part!r}")
                child = node.add_directory(part)
            if not isinstance(child, VirtualDirectory):
                raise NotADirectoryError(part)
            node = child
        node.add_directory(parts[-1])

    def write_file(self, path: str, content: bytes) -> None:
        """Create a file (parents must exist); raises if it exists."""
        parts = _split(path)
        if not parts:
            raise ValueError("empty file path")
        directory = self._resolve_directory(parts[:-1])
        node = directory.add_file(parts[-1], content)
        node.mtime = self._tick()

    def replace_file(self, path: str, content: bytes) -> None:
        """Overwrite an existing file's content."""
        parts = _split(path)
        directory = self._resolve_directory(parts[:-1])
        name = parts[-1]
        if not isinstance(directory.entries.get(name), VirtualFile):
            raise FileNotFoundError(path)
        directory.entries[name] = VirtualFile(content, mtime=self._tick())

    def remove_file(self, path: str) -> None:
        """Delete a file."""
        parts = _split(path)
        directory = self._resolve_directory(parts[:-1])
        name = parts[-1]
        if not isinstance(directory.entries.get(name), VirtualFile):
            raise FileNotFoundError(path)
        del directory.entries[name]

    # -- queries -------------------------------------------------------

    def exists(self, path: str) -> bool:
        """True when a file or directory exists at ``path``."""
        try:
            self._resolve(_split(path))
            return True
        except (FileNotFoundError, NotADirectoryError):
            return False

    def is_dir(self, path: str) -> bool:
        """True when ``path`` names a directory."""
        try:
            return isinstance(self._resolve(_split(path)), VirtualDirectory)
        except (FileNotFoundError, NotADirectoryError):
            return False

    def read_file(self, path: str) -> bytes:
        """Content of the file at ``path``."""
        node = self._resolve(_split(path))
        if not isinstance(node, VirtualFile):
            raise IsADirectoryError(path)
        return node.content

    def read_range(self, path: str, offset: int, length: int) -> bytes:
        """``length`` bytes of ``path`` starting at ``offset``."""
        return self.read_file(path)[offset : offset + length]

    def file_size(self, path: str) -> int:
        """Size in bytes of the file at ``path``."""
        return len(self.read_file(path))

    def stat(self, path: str) -> Tuple[int, int]:
        """(size, mtime stamp) of the file at ``path`` without reading it.

        The stamp is this filesystem's logical clock value at the file's
        last write — comparable only within one filesystem instance,
        exactly like ``st_mtime_ns`` is comparable only within one host.
        """
        node = self._resolve(_split(path))
        if not isinstance(node, VirtualFile):
            raise IsADirectoryError(path)
        return (node.size, node.mtime)

    def listdir(self, path: str = "") -> List[str]:
        """Entry names of the directory at ``path`` (root by default)."""
        node = self._resolve(_split(path)) if path else self.root
        if not isinstance(node, VirtualDirectory):
            raise NotADirectoryError(path)
        return list(node.entries)

    def list_files(self, path: str = "") -> Iterator[FileRef]:
        """Stage 1: every file under ``path``, depth-first, as FileRefs."""
        start = self._resolve(_split(path)) if path else self.root
        if not isinstance(start, VirtualDirectory):
            raise NotADirectoryError(path)
        prefix = "/".join(_split(path))
        stack: List[Tuple[str, VirtualDirectory]] = [(prefix, start)]
        while stack:
            base, directory = stack.pop()
            subdirs = []
            for name, node in directory.entries.items():
                child_path = f"{base}/{name}" if base else name
                if isinstance(node, VirtualFile):
                    yield FileRef(child_path, node.size)
                else:
                    subdirs.append((child_path, node))
            # Reversed so the left-most subtree is visited first.
            stack.extend(reversed(subdirs))

    # -- internals -----------------------------------------------------

    def _resolve(self, parts: List[str]) -> Union[VirtualDirectory, VirtualFile]:
        node: Union[VirtualDirectory, VirtualFile] = self.root
        for part in parts:
            if not isinstance(node, VirtualDirectory):
                raise NotADirectoryError(part)
            if part not in node.entries:
                raise FileNotFoundError("/".join(parts))
            node = node.entries[part]
        return node

    def _resolve_directory(self, parts: List[str]) -> VirtualDirectory:
        node = self._resolve(parts)
        if not isinstance(node, VirtualDirectory):
            raise NotADirectoryError("/".join(parts))
        return node
