"""Filesystem substrate for the index generator.

The paper's stage 1 traverses a directory hierarchy to generate the set
of filenames to index.  This package provides two interchangeable
filesystem backends behind one protocol:

* :class:`VirtualFileSystem` — an in-memory directory tree used by the
  corpus generator, the tests, and the simulated engine (it carries the
  file-size metadata the cost model needs without touching the disk);
* :class:`OsFileSystem` — a thin adapter over the real OS filesystem so
  the threaded engine can index actual directories.

Traversal (iterative depth-first and breadth-first walkers) and corpus
statistics live here too, as does :class:`FaultInjectingFileSystem`,
the deterministic fault injector the failure-semantics tests wrap
around either backend.
"""

from repro.fsmodel.faultfs import (
    FaultInjectingFileSystem,
    FaultSpec,
    in_worker_process,
)
from repro.fsmodel.nodes import FileRef, VirtualDirectory, VirtualFile
from repro.fsmodel.realfs import OsFileSystem
from repro.fsmodel.stats import CorpusStats, collect_stats
from repro.fsmodel.traversal import walk_breadth_first, walk_depth_first
from repro.fsmodel.vfs import VirtualFileSystem

__all__ = [
    "CorpusStats",
    "FaultInjectingFileSystem",
    "FaultSpec",
    "FileRef",
    "OsFileSystem",
    "VirtualDirectory",
    "VirtualFile",
    "VirtualFileSystem",
    "collect_stats",
    "in_worker_process",
    "walk_breadth_first",
    "walk_depth_first",
]
