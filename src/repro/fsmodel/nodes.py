"""Node types of the in-memory directory tree.

A :class:`VirtualDirectory` holds named children (files and directories);
a :class:`VirtualFile` holds its content as bytes.  :class:`FileRef` is
the lightweight (path, size) record that stage 1 produces and that the
work-distribution strategies operate on — both filesystem backends emit
the same type so the rest of the pipeline is backend-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Union


@dataclass(frozen=True)
class FileRef:
    """A filename as produced by stage 1: path plus size in bytes.

    The size rides along because the size-balanced distribution strategy
    and the simulator's cost model both need it without re-statting.
    """

    path: str
    size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"file size must be non-negative, got {self.size}")


@dataclass(frozen=True)
class ChunkRef(FileRef):
    """One chunk of a huge file, scheduled like a file of its own.

    Huge-file splitting (:mod:`repro.extract.split`) expands a single
    oversized :class:`FileRef` into ``count`` ChunkRefs covering
    ``[start, end)`` byte ranges.  ``size`` is the *chunk* length, so
    the size-balanced distribution strategy spreads the chunks across
    workers exactly as it would spread files — which is the whole
    point: the giant file stops serializing the build tail.
    """

    start: int = 0
    end: int = 0
    index: int = 0
    count: int = 1
    file_size: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 <= self.start <= self.end <= self.file_size:
            raise ValueError(
                f"invalid chunk range [{self.start}, {self.end}) "
                f"in file of {self.file_size} bytes"
            )
        if not 0 <= self.index < self.count:
            raise ValueError(f"chunk index {self.index} outside count {self.count}")


class VirtualFile:
    """A file node: immutable content bytes plus a modification stamp.

    ``mtime`` is a logical counter, not wall-clock time: the owning
    filesystem bumps a monotonic tick on every write/replace so change
    detection can use (size, mtime) the way a real FS uses ``st_mtime``.
    """

    __slots__ = ("content", "mtime")

    def __init__(self, content: bytes = b"", mtime: int = 0) -> None:
        if not isinstance(content, (bytes, bytearray)):
            raise TypeError("VirtualFile content must be bytes")
        self.content = bytes(content)
        self.mtime = mtime

    @property
    def size(self) -> int:
        """Content length in bytes."""
        return len(self.content)

    def __repr__(self) -> str:
        return f"VirtualFile(size={self.size})"


@dataclass
class VirtualDirectory:
    """A directory node: a name->child mapping.

    Children are kept in insertion order; traversal order over a given
    tree is therefore deterministic, which the round-robin distribution
    tests rely on.
    """

    entries: Dict[str, Union["VirtualDirectory", VirtualFile]] = field(
        default_factory=dict
    )

    def add_file(self, name: str, content: bytes) -> VirtualFile:
        """Create a file child; raises if the name is taken."""
        self._check_name(name)
        node = VirtualFile(content)
        self.entries[name] = node
        return node

    def add_directory(self, name: str) -> "VirtualDirectory":
        """Create a subdirectory child; raises if the name is taken."""
        self._check_name(name)
        node = VirtualDirectory()
        self.entries[name] = node
        return node

    def files(self) -> Iterator[str]:
        """Names of direct file children."""
        for name, node in self.entries.items():
            if isinstance(node, VirtualFile):
                yield name

    def directories(self) -> Iterator[str]:
        """Names of direct subdirectory children."""
        for name, node in self.entries.items():
            if isinstance(node, VirtualDirectory):
                yield name

    def _check_name(self, name: str) -> None:
        if not name or "/" in name:
            raise ValueError(f"invalid entry name: {name!r}")
        if name in self.entries:
            raise FileExistsError(f"entry already exists: {name!r}")
