"""Deterministic fault injection at the filesystem boundary.

The fault-tolerance tests need unreadable files, worker crashes and
worker hangs that fire at exactly the same paths on every run, in any
backend, and survive a pickle round-trip to worker processes.
:class:`FaultInjectingFileSystem` wraps any filesystem backend and
triggers a :class:`FaultSpec` the moment a poisoned path is read:

* ``"error"`` — raise the configured exception (permission denied,
  vanished file, corrupt content), in every process;
* ``"crash"`` — hard-kill the current process via ``os._exit`` — but
  only in worker processes: in the parent the spec's ``parent_action``
  applies instead, so the engine's in-parent fallback rung terminates
  deterministically rather than killing the build;
* ``"hang"`` — sleep ``delay`` seconds, again only in workers, to
  drive batch-timeout recovery without ever hanging the parent.

The wrapper deliberately does **not** expose a ``base`` attribute, so
:class:`~repro.engine.procworker.FilesystemSpec` carries it by value
into workers (faults included) instead of silently reopening the
underlying directory.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Iterator, List, Mapping

from repro.fsmodel.nodes import FileRef


def in_worker_process() -> bool:
    """True when running inside a multiprocessing child process."""
    return multiprocessing.parent_process() is not None


@dataclass(frozen=True)
class FaultSpec:
    """What happens when a poisoned path is read (picklable plain data).

    ``parent_action`` controls the crash/hang behaviour outside worker
    processes: ``"error"`` raises ``exc_type`` (the file is poison
    everywhere — the in-parent fallback records it as a failure) and
    ``"pass"`` reads the file normally (the fault was transient — the
    fallback recovers the file).
    """

    action: str = "error"
    exc_type: type = OSError
    message: str = "injected fault"
    exit_code: int = 13
    delay: float = 30.0
    parent_action: str = "error"

    def __post_init__(self) -> None:
        if self.action not in ("error", "crash", "hang"):
            raise ValueError(
                f"action must be 'error', 'crash' or 'hang', "
                f"got {self.action!r}"
            )
        if self.parent_action not in ("error", "pass"):
            raise ValueError(
                f"parent_action must be 'error' or 'pass', "
                f"got {self.parent_action!r}"
            )

    def trigger(self, path: str) -> None:
        """Fire the fault for ``path``; returning means 'proceed'."""
        if self.action == "error":
            raise self.exc_type(f"{self.message}: {path}")
        if in_worker_process():
            if self.action == "crash":
                os._exit(self.exit_code)
            time.sleep(self.delay)  # "hang": stall the worker, then proceed
            return
        if self.parent_action == "error":
            raise self.exc_type(f"{self.message}: {path}")


class FaultInjectingFileSystem:
    """Delegates to ``inner`` but fires :class:`FaultSpec`s on reads."""

    def __init__(self, inner, faults: Mapping[str, FaultSpec]) -> None:
        self._inner = inner
        self._faults = dict(faults)

    @property
    def fault_paths(self) -> List[str]:
        """The poisoned paths, in insertion order."""
        return list(self._faults)

    # -- the poisoned operation ---------------------------------------

    def read_file(self, path: str) -> bytes:
        spec = self._faults.get(path)
        if spec is not None:
            spec.trigger(path)
        return self._inner.read_file(path)

    def read_range(self, path: str, offset: int, length: int) -> bytes:
        # Ranged reads are reads: a poisoned path fires mid-chunk too,
        # which is exactly how the mid-chunk crash tests hit the
        # recovery ladder.
        spec = self._faults.get(path)
        if spec is not None:
            spec.trigger(path)
        from repro.extract.split import read_range as _read_range

        return _read_range(self._inner, path, offset, length)

    # -- transparent delegation ---------------------------------------

    def list_files(self, path: str = "") -> Iterator[FileRef]:
        return self._inner.list_files(path)

    def file_size(self, path: str) -> int:
        return self._inner.file_size(path)

    def stat(self, path: str):
        return self._inner.stat(path)

    def exists(self, path: str) -> bool:
        return self._inner.exists(path)

    def is_dir(self, path: str) -> bool:
        return self._inner.is_dir(path)

    def listdir(self, path: str = ""):
        return self._inner.listdir(path)

    def __repr__(self) -> str:
        return (
            f"FaultInjectingFileSystem({self._inner!r}, "
            f"faults={len(self._faults)})"
        )
