"""Iterative traversals over a virtual directory tree.

Directory trees on real desktops are deep and unbalanced (one of the
paper's arguments against parallelizing stage 1), so both walkers are
iterative rather than recursive and make the visit order explicit.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, List, Tuple

from repro.fsmodel.nodes import VirtualDirectory, VirtualFile


def walk_depth_first(
    root: VirtualDirectory, prefix: str = ""
) -> Iterator[Tuple[str, VirtualFile]]:
    """Yield (path, file) pairs depth-first, left subtree first."""
    stack: List[Tuple[str, VirtualDirectory]] = [(prefix, root)]
    while stack:
        base, directory = stack.pop()
        subdirs = []
        for name, node in directory.entries.items():
            path = f"{base}/{name}" if base else name
            if isinstance(node, VirtualFile):
                yield path, node
            else:
                subdirs.append((path, node))
        stack.extend(reversed(subdirs))


def walk_breadth_first(
    root: VirtualDirectory, prefix: str = ""
) -> Iterator[Tuple[str, VirtualFile]]:
    """Yield (path, file) pairs level by level."""
    queue: deque = deque([(prefix, root)])
    while queue:
        base, directory = queue.popleft()
        for name, node in directory.entries.items():
            path = f"{base}/{name}" if base else name
            if isinstance(node, VirtualFile):
                yield path, node
            else:
                queue.append((path, node))


def count_nodes(root: VirtualDirectory) -> Tuple[int, int]:
    """(number of directories, number of files) under ``root`` inclusive."""
    directories = 1
    files = 0
    stack = [root]
    while stack:
        directory = stack.pop()
        for node in directory.entries.values():
            if isinstance(node, VirtualFile):
                files += 1
            else:
                directories += 1
                stack.append(node)
    return directories, files
