"""Adapter exposing the real OS filesystem behind the VFS protocol.

The threaded engine (:mod:`repro.engine`) is backend-agnostic; pointing
it at an ``OsFileSystem`` indexes actual on-disk directories, which is
how the real-corpus benchmarks run.
"""

from __future__ import annotations

import os
from typing import Iterator, List, Tuple

from repro.fsmodel.nodes import FileRef


class OsFileSystem:
    """Real-filesystem backend rooted at ``base`` (all paths relative)."""

    def __init__(self, base: str) -> None:
        self.base = os.path.abspath(base)
        if not os.path.isdir(self.base):
            raise NotADirectoryError(self.base)

    def _full(self, path: str) -> str:
        full = os.path.normpath(os.path.join(self.base, path))
        if not full.startswith(self.base):
            raise ValueError(f"path escapes the filesystem root: {path!r}")
        return full

    def mkdir(self, path: str, parents: bool = False) -> None:
        """Create a directory under the root."""
        if parents:
            os.makedirs(self._full(path), exist_ok=False)
        else:
            os.mkdir(self._full(path))

    def write_file(self, path: str, content: bytes) -> None:
        """Create a file under the root; parents must exist."""
        full = self._full(path)
        if os.path.exists(full):
            raise FileExistsError(path)
        with open(full, "wb") as fh:
            fh.write(content)

    def replace_file(self, path: str, content: bytes) -> None:
        """Overwrite an existing file's content."""
        full = self._full(path)
        if not os.path.isfile(full):
            raise FileNotFoundError(path)
        with open(full, "wb") as fh:
            fh.write(content)

    def remove_file(self, path: str) -> None:
        """Delete a file."""
        full = self._full(path)
        if not os.path.isfile(full):
            raise FileNotFoundError(path)
        os.remove(full)

    def exists(self, path: str) -> bool:
        """True when a file or directory exists at ``path``."""
        return os.path.exists(self._full(path))

    def is_dir(self, path: str) -> bool:
        """True when ``path`` names a directory."""
        return os.path.isdir(self._full(path))

    def read_file(self, path: str) -> bytes:
        """Content of the file at ``path``."""
        with open(self._full(path), "rb") as fh:
            return fh.read()

    def read_range(self, path: str, offset: int, length: int) -> bytes:
        """``length`` bytes of ``path`` starting at ``offset``.

        The ranged read huge-file chunk extraction relies on: a worker
        pulls only its chunk instead of the whole giant file.
        """
        with open(self._full(path), "rb") as fh:
            fh.seek(offset)
            return fh.read(length)

    def file_size(self, path: str) -> int:
        """Size in bytes of the file at ``path``."""
        return os.path.getsize(self._full(path))

    def stat(self, path: str) -> Tuple[int, int]:
        """(size, mtime_ns) of the file at ``path`` without reading it."""
        st = os.stat(self._full(path))
        return (st.st_size, st.st_mtime_ns)

    def listdir(self, path: str = "") -> List[str]:
        """Entry names of the directory at ``path``."""
        return sorted(os.listdir(self._full(path)))

    def list_files(self, path: str = "") -> Iterator[FileRef]:
        """Stage 1: every file under ``path``, depth-first, as FileRefs.

        Entries are visited in sorted order so repeated runs produce the
        same round-robin assignment.
        """
        start = self._full(path) if path else self.base
        stack = [start]
        while stack:
            current = stack.pop()
            subdirs = []
            for name in sorted(os.listdir(current)):
                full = os.path.join(current, name)
                if os.path.isdir(full):
                    subdirs.append(full)
                elif os.path.isfile(full):
                    rel = os.path.relpath(full, self.base)
                    yield FileRef(rel.replace(os.sep, "/"), os.path.getsize(full))
            stack.extend(reversed(subdirs))
