"""Hash containers built on the FNV-1 hash.

The C++ original stores its index in a Boost ``unordered_map`` and does
per-file duplicate elimination in a ``hash_set``, both parameterized with
the FNV1 hash function.  These classes are the Python stand-ins: a
separate-chaining hash map and hash set whose bucket hash is FNV-1a and
whose growth policy (load factor 1.0, doubling) mirrors common
``unordered_map`` implementations.
"""

from repro.adt.hashmap import FnvHashMap
from repro.adt.hashset import FnvHashSet

__all__ = ["FnvHashMap", "FnvHashSet"]
