"""A separate-chaining hash map keyed by FNV-1a.

``FnvHashMap`` implements the subset of the mapping protocol the index
generator needs (get/set/del/contains/iterate/len) plus ``setdefault``
and ``get``, with amortized O(1) operations.  Keys must be ``str`` or
``bytes`` because the whole point is to hash them with FNV rather than
Python's built-in ``hash``.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Generic,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
    Union,
)

from repro.hashing import fnv1a_64

Key = Union[str, bytes]
V = TypeVar("V")

_INITIAL_BUCKETS = 16
_MAX_LOAD_FACTOR = 1.0


class FnvHashMap(Generic[V]):
    """Hash map from str/bytes keys to arbitrary values, hashed with FNV-1a.

    Collision handling is separate chaining: each bucket is a list of
    ``(hash, key, value)`` entries.  The table doubles when the load
    factor exceeds 1.0, rehashing via the stored hash values so keys are
    never re-hashed.
    """

    __slots__ = ("_buckets", "_size")

    def __init__(self, items: Optional[Iterator[Tuple[Key, V]]] = None) -> None:
        self._buckets: List[List[Tuple[int, Key, V]]] = [
            [] for _ in range(_INITIAL_BUCKETS)
        ]
        self._size = 0
        if items is not None:
            for key, value in items:
                self[key] = value

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, key: Key) -> bool:
        h = fnv1a_64(key)
        buckets = self._buckets
        bucket = buckets[h % len(buckets)]
        return any(eh == h and ek == key for eh, ek, _ in bucket)

    def __getitem__(self, key: Key) -> V:
        h = fnv1a_64(key)
        buckets = self._buckets
        bucket = buckets[h % len(buckets)]
        for eh, ek, value in bucket:
            if eh == h and ek == key:
                return value
        raise KeyError(key)

    def __setitem__(self, key: Key, value: V) -> None:
        h = fnv1a_64(key)
        buckets = self._buckets
        bucket = buckets[h % len(buckets)]
        for i, (eh, ek, _) in enumerate(bucket):
            if eh == h and ek == key:
                bucket[i] = (h, key, value)
                return
        bucket.append((h, key, value))
        self._size += 1
        if self._size > len(buckets) * _MAX_LOAD_FACTOR:
            self._grow()

    def __delitem__(self, key: Key) -> None:
        h = fnv1a_64(key)
        bucket = self._buckets[h % len(self._buckets)]
        for i, (eh, ek, _) in enumerate(bucket):
            if eh == h and ek == key:
                bucket.pop(i)
                self._size -= 1
                return
        raise KeyError(key)

    def __iter__(self) -> Iterator[Key]:
        return self.keys()

    def __repr__(self) -> str:
        preview = ", ".join(f"{k!r}: {v!r}" for k, v in list(self.items())[:4])
        suffix = ", ..." if self._size > 4 else ""
        return f"FnvHashMap({{{preview}{suffix}}}, size={self._size})"

    def get(self, key: Key, default: Optional[V] = None) -> Optional[V]:
        """Value for ``key``, or ``default`` when absent."""
        try:
            return self[key]
        except KeyError:
            return default

    def setdefault(self, key: Key, default: V) -> V:
        """Return the value for ``key``, inserting ``default`` if absent."""
        h = fnv1a_64(key)
        buckets = self._buckets
        bucket = buckets[h % len(buckets)]
        for eh, ek, value in bucket:
            if eh == h and ek == key:
                return value
        bucket.append((h, key, default))
        self._size += 1
        if self._size > len(buckets) * _MAX_LOAD_FACTOR:
            self._grow()
        return default

    def get_or_insert(self, key: Key, factory: Callable[[], V]) -> V:
        """Return the value for ``key``, inserting ``factory()`` if absent.

        The single-probe sibling of :meth:`setdefault` for the index hot
        path: the key is hashed once, the bucket is walked once, and the
        default value is only *constructed* when the key is actually
        missing (``setdefault`` forces callers to allocate it up front).
        """
        h = fnv1a_64(key)
        buckets = self._buckets
        bucket = buckets[h % len(buckets)]
        for eh, ek, value in bucket:
            if eh == h and ek == key:
                return value
        value = factory()
        bucket.append((h, key, value))
        self._size += 1
        if self._size > len(buckets) * _MAX_LOAD_FACTOR:
            self._grow()
        return value

    def insert_absent(self, key: Key, value: V) -> Optional[V]:
        """Insert ``value`` unless ``key`` is present; one hash, one probe.

        Returns the *existing* value when the key was already mapped (the
        insert is skipped), or ``None`` after storing ``value``.  Used by
        the index join to keep its move-semantics fast path without the
        get-then-set double probe.
        """
        h = fnv1a_64(key)
        buckets = self._buckets
        bucket = buckets[h % len(buckets)]
        for eh, ek, existing in bucket:
            if eh == h and ek == key:
                return existing
        bucket.append((h, key, value))
        self._size += 1
        if self._size > len(buckets) * _MAX_LOAD_FACTOR:
            self._grow()
        return None

    def pop(self, key: Key, *default: Any) -> V:
        """Remove and return the value for ``key``.

        With a second positional argument, return it instead of raising
        when the key is absent (mirrors ``dict.pop``).
        """
        try:
            value = self[key]
        except KeyError:
            if default:
                return default[0]
            raise
        del self[key]
        return value

    def keys(self) -> Iterator[Key]:
        """Iterate over keys in bucket order."""
        for bucket in self._buckets:
            for _, key, _ in bucket:
                yield key

    def values(self) -> Iterator[V]:
        """Iterate over values in bucket order."""
        for bucket in self._buckets:
            for _, _, value in bucket:
                yield value

    def items(self) -> Iterator[Tuple[Key, V]]:
        """Iterate over (key, value) pairs in bucket order."""
        for bucket in self._buckets:
            for _, key, value in bucket:
                yield key, value

    def clear(self) -> None:
        """Remove all entries, shrinking back to the initial table size."""
        self._buckets = [[] for _ in range(_INITIAL_BUCKETS)]
        self._size = 0

    @property
    def bucket_count(self) -> int:
        """Current number of buckets (exposed for tests and diagnostics)."""
        return len(self._buckets)

    @property
    def load_factor(self) -> float:
        """Entries per bucket; rehash triggers above 1.0."""
        return self._size / len(self._buckets)

    def _grow(self) -> None:
        old = self._buckets
        self._buckets = [[] for _ in range(len(old) * 2)]
        n = len(self._buckets)
        for bucket in old:
            for entry in bucket:
                self._buckets[entry[0] % n].append(entry)
