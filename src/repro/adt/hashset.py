"""A separate-chaining hash set keyed by FNV-1a.

``FnvHashSet`` is the duplicate-elimination structure each term extractor
keeps per file: terms are added as they are scanned, and the set's
contents become the file's term block.  Only ``str``/``bytes`` elements
are supported (they are what FNV hashes).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple, Union

from repro.hashing import fnv1a_64

Element = Union[str, bytes]

_INITIAL_BUCKETS = 16
_MAX_LOAD_FACTOR = 1.0


class FnvHashSet:
    """Hash set of str/bytes elements, hashed with FNV-1a.

    Supports add/discard/contains/iterate/len, plus set algebra helpers
    (union/intersection) used by the index join tests.
    """

    __slots__ = ("_buckets", "_size")

    def __init__(self, elements: Optional[Iterable[Element]] = None) -> None:
        self._buckets: List[List[Tuple[int, Element]]] = [
            [] for _ in range(_INITIAL_BUCKETS)
        ]
        self._size = 0
        if elements is not None:
            for element in elements:
                self.add(element)

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, element: Element) -> bool:
        h = fnv1a_64(element)
        bucket = self._buckets[h % len(self._buckets)]
        return any(eh == h and el == element for eh, el in bucket)

    def __iter__(self) -> Iterator[Element]:
        for bucket in self._buckets:
            for _, element in bucket:
                yield element

    def __repr__(self) -> str:
        preview = ", ".join(repr(e) for _, e in zip(range(4), self))
        suffix = ", ..." if self._size > 4 else ""
        return f"FnvHashSet({{{preview}{suffix}}}, size={self._size})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FnvHashSet):
            return NotImplemented
        return len(self) == len(other) and all(e in other for e in self)

    def add(self, element: Element) -> bool:
        """Insert ``element``; returns True if it was newly added.

        Single probe: the element is hashed once and the bucket walked
        once whether or not it was already present.
        """
        h = fnv1a_64(element)
        buckets = self._buckets
        bucket = buckets[h % len(buckets)]
        for eh, el in bucket:
            if eh == h and el == element:
                return False
        bucket.append((h, element))
        self._size += 1
        if self._size > len(buckets) * _MAX_LOAD_FACTOR:
            self._grow()
        return True

    def discard(self, element: Element) -> bool:
        """Remove ``element`` if present; returns True if it was removed."""
        h = fnv1a_64(element)
        bucket = self._buckets[h % len(self._buckets)]
        for i, (eh, el) in enumerate(bucket):
            if eh == h and el == element:
                bucket.pop(i)
                self._size -= 1
                return True
        return False

    def clear(self) -> None:
        """Remove all elements, shrinking back to the initial table size."""
        self._buckets = [[] for _ in range(_INITIAL_BUCKETS)]
        self._size = 0

    def union(self, other: Iterable[Element]) -> "FnvHashSet":
        """New set containing the elements of both self and ``other``."""
        result = FnvHashSet(self)
        for element in other:
            result.add(element)
        return result

    def intersection(self, other: "FnvHashSet") -> "FnvHashSet":
        """New set containing the elements present in both sets."""
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        return FnvHashSet(e for e in small if e in large)

    @property
    def bucket_count(self) -> int:
        """Current number of buckets (exposed for tests and diagnostics)."""
        return len(self._buckets)

    def _grow(self) -> None:
        old = self._buckets
        self._buckets = [[] for _ in range(len(old) * 2)]
        n = len(self._buckets)
        for bucket in old:
            for entry in bucket:
                self._buckets[entry[0] % n].append(entry)
