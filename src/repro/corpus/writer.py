"""Materialize a virtual corpus onto the real filesystem.

Used by the on-disk benchmarks and the CLI's ``generate-corpus``
subcommand: the same deterministic corpus the tests index in memory can
be written out and indexed with real file I/O.
"""

from __future__ import annotations

import os

from repro.fsmodel.vfs import VirtualFileSystem


def materialize(fs: VirtualFileSystem, destination: str) -> int:
    """Write every file of ``fs`` under ``destination``; returns file count.

    Parent directories are created as needed.  Refuses to write into a
    non-empty destination to avoid silently mixing corpora.
    """
    os.makedirs(destination, exist_ok=True)
    if os.listdir(destination):
        raise FileExistsError(f"destination is not empty: {destination}")
    count = 0
    for ref in fs.list_files():
        full = os.path.join(destination, *ref.path.split("/"))
        os.makedirs(os.path.dirname(full), exist_ok=True)
        with open(full, "wb") as fh:
            fh.write(fs.read_file(ref.path))
        count += 1
    return count
