"""Empirical Zipf-exponent estimation.

The workload model's unique-term predictions (and the query study's
popularity model) rest on the corpus being Zipfian with a known
exponent.  This module closes the loop: measure the rank-frequency
distribution of an actual corpus and fit the exponent by least squares
in log-log space, so tests can assert the generator produces what the
profile promised.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from repro.text.tokenizer import Tokenizer


def rank_frequencies(terms: Iterable[str]) -> List[int]:
    """Occurrence counts sorted descending (rank 0 first)."""
    counts: Dict[str, int] = {}
    for term in terms:
        counts[term] = counts.get(term, 0) + 1
    return sorted(counts.values(), reverse=True)


def estimate_zipf_exponent(
    frequencies: List[int], min_rank: int = 1, max_rank: int = 200
) -> float:
    """Least-squares slope of log(frequency) against log(rank).

    Under Zipf's law ``f(r) ~ r^-s``, the log-log plot is a line of
    slope ``-s``; the fit uses ranks ``min_rank..max_rank`` (1-based),
    skipping rank ranges the data does not cover.  The very first ranks
    and the singleton tail both deviate from the power law in real
    text, which is why the window is configurable.
    """
    if min_rank < 1 or max_rank <= min_rank:
        raise ValueError("need 1 <= min_rank < max_rank")
    window = frequencies[min_rank - 1 : max_rank]
    if len(window) < 2:
        raise ValueError("not enough distinct terms to fit an exponent")
    points: List[Tuple[float, float]] = [
        (math.log(rank), math.log(freq))
        for rank, freq in enumerate(window, start=min_rank)
        if freq > 0
    ]
    n = len(points)
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    covariance = sum((x - mean_x) * (y - mean_y) for x, y in points)
    variance = sum((x - mean_x) ** 2 for x, _ in points)
    if variance == 0:
        raise ValueError("degenerate rank window")
    return -(covariance / variance)


def corpus_zipf_exponent(
    fs,
    tokenizer: Optional[Tokenizer] = None,
    max_rank: int = 200,
    root: str = "",
) -> float:
    """Fit the Zipf exponent of a whole corpus's term stream."""
    tokenizer = tokenizer or Tokenizer()

    def stream():
        for ref in fs.list_files(root):
            yield from tokenizer.iter_terms(fs.read_file(ref.path))

    return estimate_zipf_exponent(rank_frequencies(stream()),
                                  max_rank=max_rank)
