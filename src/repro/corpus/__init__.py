"""Synthetic benchmark corpus generation.

The paper's benchmark is a private set of ~51,000 ASCII text files
(~869 MB; many small files plus five large ones) converted from
word-processor documents.  We cannot have that data, so this package
generates a statistically equivalent corpus: seeded Zipfian text over a
synthetic vocabulary, laid out in a directory tree with the same
many-small-plus-five-large size profile, at any scale from a few KB
(unit tests) to the full 869 MB.
"""

from repro.corpus.generator import CorpusGenerator, GeneratedCorpus
from repro.corpus.profiles import (
    PAPER_PROFILE,
    SMALL_PROFILE,
    TINY_PROFILE,
    CorpusProfile,
)
from repro.corpus.vocabulary import Vocabulary
from repro.corpus.writer import materialize
from repro.corpus.zipf import ZipfSampler

__all__ = [
    "CorpusGenerator",
    "CorpusProfile",
    "GeneratedCorpus",
    "PAPER_PROFILE",
    "SMALL_PROFILE",
    "TINY_PROFILE",
    "Vocabulary",
    "ZipfSampler",
    "materialize",
]
