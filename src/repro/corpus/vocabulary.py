"""Synthetic vocabulary generation.

Builds a deterministic list of pronounceable pseudo-words.  Word lengths
follow the 4-10 character range typical of English prose, so the bytes
per term (and therefore the scan-cost-per-byte the simulator is
calibrated with) is realistic.
"""

from __future__ import annotations

import random
from typing import List

_CONSONANTS = "bcdfghjklmnprstvwz"
_VOWELS = "aeiou"


class Vocabulary:
    """A deterministic vocabulary of ``size`` distinct pseudo-words.

    Words are generated as alternating consonant/vowel syllables from a
    seeded RNG; duplicates are resolved by appending a numeric suffix, so
    the vocabulary always reaches exactly ``size`` distinct words.
    """

    def __init__(self, size: int, seed: int = 0) -> None:
        if size <= 0:
            raise ValueError(f"vocabulary size must be positive, got {size}")
        self.seed = seed
        self.words: List[str] = _generate_words(size, seed)

    def __len__(self) -> int:
        return len(self.words)

    def __getitem__(self, rank: int) -> str:
        return self.words[rank]

    def __iter__(self):
        return iter(self.words)

    def __contains__(self, word: str) -> bool:
        # Linear scan is fine: membership is only used in tests.
        return word in self.words


def _generate_words(size: int, seed: int) -> List[str]:
    rng = random.Random(seed)
    seen = set()
    words = []
    while len(words) < size:
        syllables = rng.randint(2, 4)
        word = "".join(
            rng.choice(_CONSONANTS) + rng.choice(_VOWELS) for _ in range(syllables)
        )
        if rng.random() < 0.3:
            word += rng.choice(_CONSONANTS)
        if word in seen:
            word = f"{word}{len(words)}"
        seen.add(word)
        words.append(word)
    return words
