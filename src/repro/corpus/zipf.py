"""Zipfian term sampling.

Term frequencies in natural-language text follow Zipf's law: the
frequency of the rank-r word is proportional to 1/r^s.  The benchmark
generator samples terms from this distribution so per-file unique-term
counts (which drive de-duplication and index-update costs) behave like
real prose rather than like uniform noise.

Sampling uses the inverse-CDF method over a precomputed cumulative
table with binary search — O(vocabulary) setup, O(log vocabulary) per
sample, fully deterministic under a seeded RNG.
"""

from __future__ import annotations

import bisect
import random
from typing import List


class ZipfSampler:
    """Samples ranks 0..n-1 with probability proportional to 1/(rank+1)^s."""

    def __init__(self, n: int, s: float = 1.1, seed: int = 0) -> None:
        if n <= 0:
            raise ValueError(f"support size must be positive, got {n}")
        if s <= 0:
            raise ValueError(f"Zipf exponent must be positive, got {s}")
        self.n = n
        self.s = s
        self._rng = random.Random(seed)
        self._cdf = _cumulative(n, s)

    def sample(self) -> int:
        """One rank drawn from the Zipf distribution."""
        return bisect.bisect_right(self._cdf, self._rng.random())

    def sample_many(self, count: int) -> List[int]:
        """``count`` independent ranks."""
        rng = self._rng
        cdf = self._cdf
        return [bisect.bisect_right(cdf, rng.random()) for _ in range(count)]

    def probability(self, rank: int) -> float:
        """Exact probability mass of ``rank``."""
        if not 0 <= rank < self.n:
            raise IndexError(rank)
        low = self._cdf[rank - 1] if rank > 0 else 0.0
        return self._cdf[rank] - low


def _cumulative(n: int, s: float) -> List[float]:
    weights = [1.0 / (rank + 1) ** s for rank in range(n)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    cdf[-1] = 1.0
    return cdf


def expected_unique_terms(total_terms: int, vocabulary: int, s: float = 1.1) -> float:
    """Expected distinct terms in a ``total_terms``-long Zipf sample.

    E[unique] = sum over ranks of (1 - (1 - p_rank)^total).  Used by the
    workload model to estimate per-file unique-term counts without
    generating text.
    """
    cdf = _cumulative(vocabulary, s)
    expected = 0.0
    prev = 0.0
    for value in cdf:
        p = value - prev
        prev = value
        expected += 1.0 - (1.0 - p) ** total_terms
    return expected
