"""Benchmark corpus builder.

``CorpusGenerator`` turns a :class:`~repro.corpus.profiles.CorpusProfile`
into a populated :class:`~repro.fsmodel.vfs.VirtualFileSystem`: a
directory tree of ASCII text files whose term frequencies are Zipfian
and whose size distribution is many-small-plus-a-few-large, matching the
paper's benchmark description.  Generation is fully deterministic given
the profile's seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.corpus.profiles import CorpusProfile
from repro.corpus.vocabulary import Vocabulary
from repro.corpus.zipf import ZipfSampler
from repro.fsmodel.stats import CorpusStats, collect_stats
from repro.fsmodel.vfs import VirtualFileSystem

_LINE_WIDTH = 72


@dataclass
class GeneratedCorpus:
    """The output of a generation run: the filesystem plus metadata."""

    fs: VirtualFileSystem
    profile: CorpusProfile
    vocabulary: Vocabulary

    def stats(self) -> CorpusStats:
        """Aggregate size statistics over the generated files."""
        return collect_stats(self.fs.list_files())


class CorpusGenerator:
    """Generates benchmark corpora from a profile."""

    def __init__(self, profile: CorpusProfile) -> None:
        self.profile = profile
        self.vocabulary = Vocabulary(profile.vocabulary_size, seed=profile.seed)

    def generate(self) -> GeneratedCorpus:
        """Build the full corpus into a fresh virtual filesystem."""
        profile = self.profile
        rng = random.Random(profile.seed + 1)
        sampler = ZipfSampler(
            len(self.vocabulary), s=profile.zipf_exponent, seed=profile.seed + 2
        )
        fs = VirtualFileSystem()

        sizes = self._small_file_sizes(rng)
        directories = self._make_directories(fs, len(sizes))
        for i, size in enumerate(sizes):
            directory = directories[i % len(directories)]
            fs.write_file(
                f"{directory}/doc{i:06d}.txt", self._text(sampler, rng, size)
            )

        fs.mkdir("large")
        per_large = profile.large_file_bytes // profile.large_file_count
        for i in range(profile.large_file_count):
            fs.write_file(
                f"large/big{i}.txt", self._text(sampler, rng, per_large)
            )
        return GeneratedCorpus(fs=fs, profile=profile, vocabulary=self.vocabulary)

    def _small_file_sizes(self, rng: random.Random) -> List[int]:
        """Log-normal-ish sizes for the small files, normalized to budget.

        Desktop document sizes are heavy-tailed; we draw log-normal sizes
        and rescale them so the total matches the profile's byte budget.
        """
        profile = self.profile
        mean = profile.mean_small_size
        raw = [rng.lognormvariate(0.0, 0.8) for _ in range(profile.small_file_count)]
        scale = mean / (sum(raw) / len(raw))
        sizes = [max(16, int(r * scale)) for r in raw]
        # Nudge the last file so the total lands exactly on the budget.
        drift = profile.small_file_bytes - sum(sizes)
        sizes[-1] = max(16, sizes[-1] + drift)
        return sizes

    def _make_directories(self, fs: VirtualFileSystem, n_files: int) -> List[str]:
        """Create a two-level tree with enough leaves for all files."""
        profile = self.profile
        n_leaves = max(1, (n_files + profile.files_per_directory - 1)
                       // profile.files_per_directory)
        leaves = []
        top = 0
        while len(leaves) < n_leaves:
            top_name = f"dir{top:03d}"
            fs.mkdir(top_name)
            for sub in range(profile.directory_fanout):
                if len(leaves) >= n_leaves:
                    break
                leaf = f"{top_name}/sub{sub:03d}"
                fs.mkdir(leaf)
                leaves.append(leaf)
            top += 1
        return leaves

    def _text(self, sampler: ZipfSampler, rng: random.Random, size: int) -> bytes:
        """ASCII prose of approximately ``size`` bytes (never more)."""
        words = self.vocabulary.words
        parts: List[str] = []
        remaining = size
        column = 0
        while remaining > 0:
            word = words[sampler.sample()]
            needed = len(word) + 1
            if needed > remaining:
                break
            if column + needed > _LINE_WIDTH:
                parts.append("\n")
                column = 0
            elif parts:
                parts.append(" ")
            parts.append(word)
            column += needed
            remaining -= needed
        return "".join(parts).encode("ascii")
