"""Corpus shape profiles.

A :class:`CorpusProfile` pins down everything the generator needs:
file counts, the total byte budget, how much of it the five large files
take, directory fan-out, vocabulary size and the Zipf exponent.

``PAPER_PROFILE`` matches the benchmark described in section 3 of the
paper (51,000 files, 869 MB, five large files).  The scaled-down
profiles keep the same *shape* (ratio of large-file bytes, mean small
file size, fan-out) at sizes practical for tests and CI.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CorpusProfile:
    """Parameters defining the shape and size of a generated corpus."""

    name: str
    file_count: int
    total_bytes: int
    large_file_count: int = 5
    large_bytes_fraction: float = 0.35
    directory_fanout: int = 20
    files_per_directory: int = 40
    vocabulary_size: int = 20_000
    zipf_exponent: float = 1.1
    seed: int = 42

    def __post_init__(self) -> None:
        if self.file_count <= self.large_file_count:
            raise ValueError("file_count must exceed large_file_count")
        if not 0.0 <= self.large_bytes_fraction < 1.0:
            raise ValueError("large_bytes_fraction must be in [0, 1)")
        if self.total_bytes < self.file_count:
            raise ValueError("total_bytes must allow at least 1 byte per file")

    @property
    def small_file_count(self) -> int:
        """Number of files outside the five (or so) large ones."""
        return self.file_count - self.large_file_count

    @property
    def large_file_bytes(self) -> int:
        """Byte budget shared by the large files."""
        return int(self.total_bytes * self.large_bytes_fraction)

    @property
    def small_file_bytes(self) -> int:
        """Byte budget shared by the small files."""
        return self.total_bytes - self.large_file_bytes

    @property
    def mean_small_size(self) -> float:
        """Average small-file size in bytes."""
        return self.small_file_bytes / self.small_file_count

    def scaled(self, factor: float, name: str = "") -> "CorpusProfile":
        """A profile with file count and bytes scaled by ``factor``.

        The large-file count and all shape ratios are preserved.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        file_count = max(self.large_file_count + 1, int(self.file_count * factor))
        total_bytes = max(file_count, int(self.total_bytes * factor))
        return replace(
            self,
            name=name or f"{self.name}-x{factor:g}",
            file_count=file_count,
            total_bytes=total_bytes,
        )


# The benchmark of section 3: "about 51.000 ASCII text files, containing
# many small files and five large text files ... about 869 MB of data".
PAPER_PROFILE = CorpusProfile(
    name="paper",
    file_count=51_000,
    total_bytes=869_000_000,
)

# ~1/100 scale: a few seconds to generate, for examples and benchmarks.
SMALL_PROFILE = PAPER_PROFILE.scaled(0.01, name="small")

# ~1/2000 scale: fast enough for unit tests.
TINY_PROFILE = CorpusProfile(
    name="tiny",
    file_count=60,
    total_bytes=400_000,
    vocabulary_size=2_000,
    directory_fanout=4,
    files_per_directory=8,
)
