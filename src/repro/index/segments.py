"""LSM-style segmented incremental indexing.

``Search.refresh()`` used to mutate one monolithic in-memory index —
fine for thousands of files, a dead end for millions.  This module
restructures incremental maintenance the way easily-updatable full-text
indexes are actually built (run→merge, cf. PAPERS.md and the
Web-Search-Engine pipeline in SNIPPETS.md §3):

* **immutable sealed segments** — each refresh seals the batch of
  changed documents into a new :class:`MemorySegment` (or, once
  compacted to disk, a :class:`DiskSegment` served off an mmap'd RIDX2
  file).  Sealed segments are never mutated;
* **tombstones** — deletions never touch old segments: the path goes
  into a global tombstone set and simply stops being visible;
* **newest-wins ownership** — a path may appear in several segments
  (one per revision); only the newest occurrence is live.  The
  :class:`SegmentManifest` resolves ownership once at construction and
  serves ``lookup``/``terms`` over the frozen view, so it can sit
  directly behind :class:`~repro.query.evaluator.QueryEngine` and be
  wrapped by an :class:`~repro.service.snapshot.IndexSnapshot` — publish
  stays one pointer store;
* **layered k-way compaction** — :func:`compact_manifest` merges runs
  of segments ``fanin`` at a time (the ``parallel_merge --fanin``
  pattern), newest-wins within each group, dropping tombstoned docs.
  Merge groups are independent, so they run on the fault-tolerant
  process pool (:class:`~repro.engine.procbackend.CompactionExecutor`)
  with an in-parent fallback.  A fully compacted manifest's canonical
  RIDX2 bytes are identical to a from-scratch rebuild's — the invariant
  the test suite pins after every mutation sequence.

Refresh correctness (the bugfix half of this layer):

* the successor manifest and fingerprint map are built **off to the
  side** and swapped in last, so a crash mid-refresh leaves the old
  state fully intact and a replay trivially converges;
* each changed file is **read once** — the same bytes are hashed and
  extracted, closing the snapshot-then-re-read TOCTOU window;
* removals become tombstones **before** the new segment is appended,
  and a path that was removed and re-added in one interval is excluded
  from the tombstone set (asserted), so tombstones can never shadow the
  segment appended by the same refresh.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.hashing import fnv1a_64
from repro.index.binfmt import dump_index_ridx2, load_index_ridx2
from repro.index.incremental import ChangeReport
from repro.index.inverted import InvertedIndex
from repro.index.ondisk import MmapPostingsReader
from repro.obs import recorder as obsrec
from repro.text.termblock import TermBlock
from repro.text.tokenizer import Tokenizer

#: path -> (size, stamp, content hash).  The stamp is ``st_mtime_ns``
#: on a real filesystem and the VFS's logical clock in memory; 0 when
#: the backend cannot stat.  size+stamp decide *whether to read*, the
#: hash decides *whether content actually changed* once read.
Fingerprint = Tuple[int, int, int]
FingerprintMap = Dict[str, Fingerprint]


# -- segments -----------------------------------------------------------------


class MemorySegment:
    """An immutable sealed batch of documents with its own tiny index."""

    def __init__(self, segment_id: int, docs: Mapping[str, TermBlock]) -> None:
        self.segment_id = segment_id
        self._docs: Dict[str, TermBlock] = {
            path: docs[path] for path in sorted(docs)
        }
        self._index = InvertedIndex()
        for block in self._docs.values():
            self._index.add_block(block)

    def __len__(self) -> int:
        return len(self._docs)

    def __contains__(self, path: str) -> bool:
        return path in self._docs

    def doc_paths(self) -> List[str]:
        """Paths in this segment, sorted."""
        return list(self._docs)

    def doc_terms(self, path: str) -> Tuple[str, ...]:
        """The de-duplicated terms of ``path``'s sealed revision."""
        return self._docs[path].terms

    def lookup(self, term: str) -> List[str]:
        return self._index.lookup(term)

    def terms(self) -> Iterable[str]:
        return self._index.terms()

    def approx_bytes(self) -> int:
        """Rough payload size, for compaction accounting."""
        return sum(
            len(path) + sum(len(t) + 1 for t in block.terms)
            for path, block in self._docs.items()
        )

    def to_ridx2(self) -> bytes:
        """Canonical RIDX2 serialization of this segment alone."""
        return dump_index_ridx2(self._index)

    @classmethod
    def from_ridx2(cls, segment_id: int, data: bytes) -> "MemorySegment":
        """Rehydrate a segment from RIDX2 bytes (a compaction product)."""
        return cls(segment_id, _transpose(load_index_ridx2(data)))

    def __repr__(self) -> str:
        return f"MemorySegment(id={self.segment_id}, docs={len(self._docs)})"


class DiskSegment:
    """A sealed segment served off an mmap'd RIDX2 file.

    Query-path calls (``lookup``/``terms``) go straight to the
    :class:`~repro.index.ondisk.MmapPostingsReader`; the per-document
    transposition needed by compaction is materialized lazily and
    cached — compaction is the only consumer.
    """

    def __init__(self, segment_id: int, path: str) -> None:
        self.segment_id = segment_id
        self.path = path
        self._reader = MmapPostingsReader(path)
        self._doc_terms: Optional[Dict[str, Tuple[str, ...]]] = None

    def __len__(self) -> int:
        return self._reader.doc_count

    def __contains__(self, path: str) -> bool:
        return path in set(self._reader.doc_paths())

    def doc_paths(self) -> List[str]:
        return self._reader.doc_paths()

    def doc_terms(self, path: str) -> Tuple[str, ...]:
        if self._doc_terms is None:
            transposed: Dict[str, List[str]] = {}
            for term in self._reader.terms():
                for doc in self._reader.lookup(term):
                    transposed.setdefault(doc, []).append(term)
            self._doc_terms = {
                doc: tuple(terms) for doc, terms in transposed.items()
            }
        return self._doc_terms[path]

    def lookup(self, term: str) -> List[str]:
        return self._reader.lookup(term)

    def terms(self) -> Iterable[str]:
        return self._reader.terms()

    def approx_bytes(self) -> int:
        return os.path.getsize(self.path)

    def to_ridx2(self) -> bytes:
        with open(self.path, "rb") as fh:
            return fh.read()

    def close(self) -> None:
        self._reader.close()

    def __repr__(self) -> str:
        return f"DiskSegment(id={self.segment_id}, path={self.path!r})"


def _transpose(index: InvertedIndex) -> Dict[str, TermBlock]:
    by_path: Dict[str, List[str]] = {}
    for term, postings in index.items():
        for path in postings:
            by_path.setdefault(path, []).append(term)
    return {
        path: TermBlock(path, tuple(terms))
        for path, terms in by_path.items()
    }


# -- the manifest -------------------------------------------------------------


class SegmentManifest:
    """An immutable ordered view over segments + tombstones.

    ``segments`` is oldest→newest; a path's live revision is its
    occurrence in the **newest** segment containing it, unless the path
    is tombstoned.  The manifest quacks like an index for the query
    layer (``lookup``/``terms``) and like a corpus for snapshots
    (``document_paths``), so the rest of the system needs no new
    concepts: :class:`~repro.service.snapshot.IndexSnapshot` wraps it,
    ``SearchService.publish`` swaps it, one pointer store.
    """

    def __init__(
        self,
        segments: Sequence = (),
        tombstones: Iterable[str] = (),
        generation: int = 0,
    ) -> None:
        self.segments: Tuple = tuple(segments)
        self.tombstones = frozenset(tombstones)
        self.generation = generation
        # Ownership resolved once: path -> position of its newest
        # segment.  Tombstoned paths are simply absent.
        owner: Dict[str, int] = {}
        for position, segment in enumerate(self.segments):
            for path in segment.doc_paths():
                owner[path] = position
        for path in self.tombstones:
            owner.pop(path, None)
        self._owner = owner

    # -- index protocol (QueryEngine duck type) ------------------------

    def lookup(self, term: str) -> List[str]:
        """Live paths containing ``term`` (newest revision only)."""
        owner = self._owner
        hits: List[str] = []
        for position, segment in enumerate(self.segments):
            for path in segment.lookup(term):
                if owner.get(path) == position:
                    hits.append(path)
        return hits

    def terms(self) -> List[str]:
        """Terms with at least one live posting, sorted."""
        candidates = set()
        for segment in self.segments:
            candidates.update(segment.terms())
        return sorted(t for t in candidates if self.lookup(t))

    # -- corpus protocol -----------------------------------------------

    def document_paths(self) -> List[str]:
        """All live paths."""
        return list(self._owner)

    def live_paths(self) -> frozenset:
        return frozenset(self._owner)

    def doc_terms(self, path: str) -> Tuple[str, ...]:
        """The live revision's terms for ``path``."""
        return self.segments[self._owner[path]].doc_terms(path)

    def __contains__(self, path: str) -> bool:
        return path in self._owner

    def __len__(self) -> int:
        return len(self._owner)

    # -- stats / derived -----------------------------------------------

    @property
    def segment_count(self) -> int:
        return len(self.segments)

    @property
    def tombstone_ratio(self) -> float:
        """Tombstones as a fraction of all path slots held by segments."""
        slots = sum(len(s) for s in self.segments)
        return len(self.tombstones) / slots if slots else 0.0

    @property
    def next_segment_id(self) -> int:
        return 1 + max(
            (s.segment_id for s in self.segments), default=-1
        )

    def materialize(self) -> InvertedIndex:
        """Flatten the live view into one plain :class:`InvertedIndex`."""
        index = InvertedIndex()
        for path in sorted(self._owner):
            index.add_block(
                TermBlock(path, tuple(self.doc_terms(path)))
            )
        return index

    def to_ridx2(self) -> bytes:
        """Canonical RIDX2 bytes of the live view.

        Because :func:`~repro.index.binfmt.dump_index_ridx2` is
        canonical, these bytes are identical to a from-scratch rebuild
        of the same filesystem state — the merge-equivalence oracle.
        """
        return dump_index_ridx2(self.materialize())

    def record_metrics(self, prefix: str = "segments") -> None:
        """Publish manifest shape gauges through :mod:`repro.obs`."""
        if not obsrec.enabled():
            return
        metrics = obsrec.metrics()
        metrics.gauge(f"{prefix}.count").set(self.segment_count)
        metrics.gauge(f"{prefix}.tombstones").set(len(self.tombstones))
        metrics.gauge(f"{prefix}.tombstone_ratio").set(self.tombstone_ratio)
        metrics.gauge(f"{prefix}.live_docs").set(len(self._owner))
        metrics.gauge(f"{prefix}.generation").set(self.generation)

    def __repr__(self) -> str:
        return (
            f"SegmentManifest(gen={self.generation}, "
            f"segments={self.segment_count}, live={len(self._owner)}, "
            f"tombstones={len(self.tombstones)})"
        )


# -- compaction ---------------------------------------------------------------


@dataclass(frozen=True)
class CompactionPolicy:
    """When and how wide to compact.

    ``fanin`` is the k-way merge width per layer; compaction triggers
    when the manifest holds more than ``max_segments`` segments or its
    tombstone ratio exceeds ``max_tombstone_ratio``.
    """

    fanin: int = 4
    max_segments: int = 6
    max_tombstone_ratio: float = 0.5

    def __post_init__(self) -> None:
        if self.fanin < 2:
            raise ValueError(f"fanin must be >= 2, got {self.fanin}")
        if self.max_segments < 1:
            raise ValueError(
                f"max_segments must be >= 1, got {self.max_segments}"
            )

    def should_compact(self, manifest: SegmentManifest) -> bool:
        if manifest.segment_count > self.max_segments:
            return True
        return (
            bool(manifest.tombstones)
            and manifest.tombstone_ratio > self.max_tombstone_ratio
        )


def merge_segment_payload(payload) -> bytes:
    """Merge one compaction group into canonical RIDX2 bytes.

    ``payload`` is picklable plain data — ``(groups, tombstones)``
    where ``groups`` is a list of segments oldest→newest, each a list
    of ``(path, terms_tuple)`` documents.  Newest-wins is resolved by
    dict overwrite in order; tombstoned paths are dropped last.  Runs
    in pool workers, so it must stay a module-level function of plain
    data.
    """
    groups, tombstones = payload
    dead = set(tombstones)
    docs: Dict[str, Tuple[str, ...]] = {}
    for group in groups:
        for path, terms in group:
            docs[path] = tuple(terms)
    index = InvertedIndex()
    for path in sorted(docs):
        if path in dead:
            continue
        index.add_block(TermBlock(path, docs[path]))
    return dump_index_ridx2(index)


def _group_payload(segments: Sequence, tombstones: frozenset):
    return (
        [
            [(path, segment.doc_terms(path)) for path in segment.doc_paths()]
            for segment in segments
        ],
        sorted(tombstones),
    )


def compact_manifest(
    manifest: SegmentManifest,
    policy: Optional[CompactionPolicy] = None,
    executor=None,
    segment_dir: Optional[str] = None,
) -> SegmentManifest:
    """Layered k-way merge down to a single sealed segment.

    Each round groups consecutive segments ``fanin`` at a time and
    merges every group independently — on ``executor`` (a
    :class:`~repro.engine.procbackend.CompactionExecutor`) when given,
    in-process otherwise.  Tombstones are applied during the merges,
    so the compacted manifest carries none.  With ``segment_dir`` the
    final product is written as an RIDX2 file and served as a
    :class:`DiskSegment`; otherwise it stays in memory.
    """
    policy = policy or CompactionPolicy()
    segments: List = list(manifest.segments)
    tombstones = manifest.tombstones
    next_id = manifest.next_segment_id
    merged_bytes = 0
    rounds = 0
    with obsrec.span(
        "compaction.run",
        segments=manifest.segment_count,
        tombstones=len(manifest.tombstones),
        fanin=policy.fanin,
    ):
        while len(segments) > 1 or tombstones:
            rounds += 1
            groups = [
                segments[i : i + policy.fanin]
                for i in range(0, len(segments), policy.fanin)
            ] or [[]]
            payloads = [_group_payload(g, tombstones) for g in groups]
            with obsrec.span(
                "compaction.round", round=rounds, groups=len(groups)
            ):
                if executor is not None:
                    blobs = executor.run(merge_segment_payload, payloads)
                else:
                    blobs = [merge_segment_payload(p) for p in payloads]
            merged_bytes += sum(len(b) for b in blobs)
            segments = [
                segment
                for segment in (
                    MemorySegment.from_ridx2(next_id + i, blob)
                    for i, blob in enumerate(blobs)
                )
                if len(segment)
            ]
            next_id += len(blobs)
            # Tombstoned paths are gone from every merged product.
            tombstones = frozenset()
    if segment_dir is not None and segments:
        final = segments[-1]
        os.makedirs(segment_dir, exist_ok=True)
        path = os.path.join(
            segment_dir, f"segment-{final.segment_id:08d}.ridx2"
        )
        with open(path, "wb") as fh:
            fh.write(final.to_ridx2())
        segments[-1] = DiskSegment(final.segment_id, path)
    if obsrec.enabled():
        metrics = obsrec.metrics()
        metrics.counter("compaction.runs").inc()
        metrics.counter("compaction.merged_bytes").inc(merged_bytes)
    compacted = SegmentManifest(
        segments, frozenset(), manifest.generation + 1
    )
    compacted.record_metrics()
    return compacted


# -- the indexer --------------------------------------------------------------


class SegmentedIndexer:
    """Keeps a :class:`SegmentManifest` in sync with a filesystem.

    The mutable ingest state (the memtable) exists only *inside* one
    ``refresh()`` call: changed documents accumulate in a plain dict
    and are sealed into a :class:`MemorySegment` before the swap, so
    every state the outside world can observe is an immutable manifest
    plus the fingerprint map that produced it.
    """

    def __init__(
        self,
        fs,
        tokenizer: Optional[Tokenizer] = None,
        registry=None,
        root: str = "",
        manifest: Optional[SegmentManifest] = None,
        fingerprints: Optional[FingerprintMap] = None,
        segment_dir: Optional[str] = None,
        extractor=None,
    ) -> None:
        from repro.extract.registry import resolve_extractor

        self.fs = fs
        # One Extractor seam (see repro.extract); tokenizer=/registry=
        # still fold in for older callers.
        self.extractor = resolve_extractor(extractor, tokenizer, registry)
        self.tokenizer = self.extractor.tokenizer
        self.registry = self.extractor.registry
        self.root = root
        self.segment_dir = segment_dir
        self._manifest = manifest or SegmentManifest()
        self._fingerprints: FingerprintMap = dict(fingerprints or {})
        self.last_scan_stats: Dict[str, int] = {}

    @property
    def manifest(self) -> SegmentManifest:
        return self._manifest

    @property
    def fingerprints(self) -> FingerprintMap:
        """The fingerprint state to persist alongside the manifest."""
        return dict(self._fingerprints)

    # -- bootstrap ------------------------------------------------------

    def adopt(
        self, index: InvertedIndex, fingerprints: FingerprintMap
    ) -> SegmentManifest:
        """Adopt a bulk-built index as segment 0 of a fresh manifest."""
        segment = MemorySegment(0, _transpose(index))
        self._manifest = SegmentManifest([segment], frozenset(), 0)
        self._fingerprints = dict(fingerprints)
        self._manifest.record_metrics()
        return self._manifest

    def fingerprint_corpus(self) -> FingerprintMap:
        """Fingerprint every file (reading each once) — bootstrap path."""
        fingerprints: FingerprintMap = {}
        for ref in self.fs.list_files(self.root):
            stamp = self._stat_stamp(ref.path)
            content = self.fs.read_file(ref.path)
            fingerprints[ref.path] = (
                len(content),
                stamp,
                fnv1a_64(content),
            )
        return fingerprints

    # -- refresh --------------------------------------------------------

    def refresh(self) -> ChangeReport:
        """Scan, seal the delta into a new segment, swap at the end.

        The stat-first scan is what makes refresh O(delta) in bytes
        read: unchanged files (same size and mtime stamp as recorded)
        are skipped without opening them.  Files that must be read are
        read **once**; the same bytes feed both the fingerprint hash
        and term extraction.  Nothing observable mutates until the
        final two assignments, so a crashed refresh replays cleanly.
        """
        previous = self._fingerprints
        manifest = self._manifest
        fingerprints: FingerprintMap = {}
        changed: Dict[str, TermBlock] = {}
        files_seen = 0
        files_read = 0
        with obsrec.span("segments.refresh", generation=manifest.generation):
            for ref in self.fs.list_files(self.root):
                files_seen += 1
                stamp = self._stat_stamp(ref.path)
                old = previous.get(ref.path)
                if (
                    old is not None
                    and stamp != 0
                    and old[0] == ref.size
                    and old[1] == stamp
                ):
                    # Unchanged by stat: not read, not re-hashed.
                    fingerprints[ref.path] = old
                    continue
                content = self.fs.read_file(ref.path)
                files_read += 1
                digest = fnv1a_64(content)
                # The *pre-read* stamp is recorded: if a writer lands
                # between stat and read, the next scan sees a newer
                # stamp and re-checks — a change can be re-examined,
                # never missed.
                fingerprints[ref.path] = (len(content), stamp, digest)
                if old is not None and old[0] == len(content) and old[2] == digest:
                    # Same bytes as the indexed revision (e.g. removed
                    # and re-added identical content, or a bare mtime
                    # bump): refresh the stamp, skip re-indexing, and —
                    # critically — do not classify it removed/modified.
                    continue
                changed[ref.path] = self._extract(ref.path, content)

            added = sorted(p for p in changed if p not in previous)
            modified = sorted(p for p in changed if p in previous)
            removed = sorted(p for p in previous if p not in fingerprints)
            self.apply_delta(changed, removed, fingerprints)
        self.last_scan_stats = {
            "files_seen": files_seen,
            "files_read": files_read,
        }
        if obsrec.enabled():
            metrics = obsrec.metrics()
            metrics.counter("segments.refreshes").inc()
            metrics.counter("segments.files_read").inc(files_read)
            metrics.counter("segments.files_seen").inc(files_seen)
        return ChangeReport(added=added, removed=removed, modified=modified)

    def reconcile(self) -> ChangeReport:
        """First refresh with no recorded fingerprints (post-``open``).

        Without fingerprints the only truth is the manifest itself, so
        every live file is read once (hash and term extraction share
        the bytes) and compared against the manifest's live revision;
        the computed delta is then applied exactly like a refresh.
        """
        manifest = self._manifest
        fingerprints: FingerprintMap = {}
        changed: Dict[str, TermBlock] = {}
        live = set(manifest.document_paths())
        modified: List[str] = []
        added: List[str] = []
        with obsrec.span("segments.reconcile", live=len(live)):
            for ref in self.fs.list_files(self.root):
                stamp = self._stat_stamp(ref.path)
                content = self.fs.read_file(ref.path)
                fingerprints[ref.path] = (
                    len(content),
                    stamp,
                    fnv1a_64(content),
                )
                block = self._extract(ref.path, content)
                if ref.path in live:
                    if set(manifest.doc_terms(ref.path)) != set(block.terms):
                        changed[ref.path] = block
                        modified.append(ref.path)
                else:
                    changed[ref.path] = block
                    added.append(ref.path)
            removed = sorted(live - set(fingerprints))
            self.apply_delta(changed, removed, fingerprints)
        return ChangeReport(
            added=sorted(added), removed=removed, modified=sorted(modified)
        )

    def apply_delta(
        self,
        changed: Mapping[str, TermBlock],
        removed: Iterable[str],
        fingerprints: FingerprintMap,
    ) -> None:
        """Seal ``changed`` into a new segment, tombstone ``removed``.

        Tombstone-then-append ordering: removals are folded into the
        tombstone set *before* the new segment exists, and any path
        re-appearing in this very delta is excluded — a tombstone must
        never shadow the segment its own refresh appends (asserted).
        The manifest/fingerprint swap is the only observable mutation
        and happens last, so interrupted callers replay cleanly.
        """
        manifest = self._manifest
        if not changed and not removed:
            # Nothing to seal: just remember the verified fingerprints.
            self._fingerprints = dict(fingerprints)
            return
        tombstones = (manifest.tombstones | frozenset(removed)) - set(changed)
        assert not (tombstones & set(changed)), (
            "tombstones may not shadow the appended segment"
        )
        segments = manifest.segments
        if changed:
            with obsrec.span("segments.seal", docs=len(changed)):
                segments = segments + (
                    MemorySegment(manifest.next_segment_id, dict(changed)),
                )
        successor = SegmentManifest(
            segments, tombstones, manifest.generation + 1
        )
        successor.record_metrics()
        self._manifest = successor
        self._fingerprints = dict(fingerprints)

    # -- compaction -----------------------------------------------------

    def compact(
        self,
        policy: Optional[CompactionPolicy] = None,
        executor=None,
        force: bool = True,
    ) -> bool:
        """Compact the current manifest in place (swap on completion).

        With ``force=False`` the policy decides; returns whether a
        compaction ran.
        """
        policy = policy or CompactionPolicy()
        manifest = self._manifest
        if not force and not policy.should_compact(manifest):
            return False
        if manifest.segment_count <= 1 and not manifest.tombstones:
            return False
        self._manifest = compact_manifest(
            manifest, policy, executor=executor, segment_dir=self.segment_dir
        )
        return True

    # -- internals ------------------------------------------------------

    def _stat_stamp(self, path: str) -> int:
        stat = getattr(self.fs, "stat", None)
        if stat is None:
            return 0
        try:
            _, stamp = stat(path)
        except OSError:
            return 0
        return stamp

    def _extract(self, path: str, content: bytes) -> TermBlock:
        return self.extractor.term_block(path, content)


class BackgroundCompactor:
    """Periodically runs a compaction callback on its own thread.

    The callback (typically ``Search.compact`` with ``force=False``)
    owns all index state and locking; this class owns only the cadence
    — an interruptible condition-variable wait, so ``stop()`` returns
    promptly instead of sleeping out the interval.  Built on the
    :class:`~repro.concurrency.provider.SyncProvider` seam like every
    other thread in the system, so schedcheck can drive it.
    """

    def __init__(
        self,
        tick,
        interval_s: float = 5.0,
        sync=None,
        name: str = "compactor",
    ) -> None:
        if interval_s <= 0:
            raise ValueError(
                f"interval_s must be positive, got {interval_s}"
            )
        if sync is None:
            from repro.concurrency.provider import THREADING_SYNC

            sync = THREADING_SYNC
        self._tick = tick
        self._interval_s = interval_s
        self._lock = sync.lock(f"{name}.lock")
        self._cond = sync.condition(self._lock, f"{name}.cond")
        self._stopping = False
        self._thread = sync.thread(self._loop, name=name)
        self.runs = 0
        self.compactions = 0

    def start(self) -> "BackgroundCompactor":
        self._thread.start()
        return self

    def stop(self) -> None:
        """Signal the loop and wait for it to exit."""
        with self._lock:
            self._stopping = True
            self._cond.notify_all()
        self._thread.join()

    def _loop(self) -> None:
        while True:
            with self._lock:
                if not self._stopping:
                    self._cond.wait(timeout=self._interval_s)
                if self._stopping:
                    return
            self.runs += 1
            if self._tick():
                self.compactions += 1
