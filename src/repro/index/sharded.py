"""A lock-striped shared index — an extension beyond the paper.

The paper compares one extreme (a single lock over one shared index,
Implementation 1) against the other (full replication, Implementations
2/3).  The classic middle ground is *striping*: partition the term
space into K shards, each an independent index with its own lock, so
writers only collide when they touch the same shard.

:class:`ShardedInvertedIndex` offers the same read API as
:class:`~repro.index.inverted.InvertedIndex` and an en-bloc
:meth:`add_block` that groups a block's terms by shard and locks each
touched shard exactly once (in shard order, so concurrent writers
cannot deadlock).  The sharded-lock ablation benchmark places this
design on the paper's contention spectrum.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.concurrency.provider import THREADING_SYNC
from repro.hashing import fnv1a_64
from repro.index.inverted import InvertedIndex
from repro.index.postings import PostingsList
from repro.text.termblock import TermBlock


class ShardedInvertedIndex:
    """K independently locked index shards, routed by term hash."""

    def __init__(self, shards: int = 16, sync=None) -> None:
        if shards < 1:
            raise ValueError(f"shards must be at least 1, got {shards}")
        self._sync = sync or THREADING_SYNC
        self._shards: List[InvertedIndex] = [
            InvertedIndex() for _ in range(shards)
        ]
        self._locks: List = [
            self._sync.lock(f"index-shard[{i}].lock") for i in range(shards)
        ]
        self._block_count = 0
        self._block_lock = self._sync.lock("index-shard.block-count")

    @property
    def shard_count(self) -> int:
        """Number of shards."""
        return len(self._shards)

    def shard_for(self, term: str) -> int:
        """The shard a term routes to."""
        return fnv1a_64(term) % len(self._shards)

    def add_block(self, block: TermBlock) -> None:
        """Thread-safe en-bloc update: lock only the shards touched.

        Shards are locked in ascending order, so two writers whose
        blocks overlap on several shards always acquire in the same
        order and cannot deadlock.
        """
        by_shard: Dict[int, List[str]] = {}
        for term in block.terms:
            by_shard.setdefault(self.shard_for(term), []).append(term)
        for shard_id in sorted(by_shard):
            shard = self._shards[shard_id]
            with self._locks[shard_id]:
                self._sync.access(f"index-shard[{shard_id}]")
                for term in by_shard[shard_id]:
                    shard._map.setdefault(term, PostingsList()).append(
                        block.path
                    )
        with self._block_lock:
            self._sync.access("index-shard.block-count")
            self._block_count += 1

    # -- read API (no locking needed after the build barrier) ------------

    def lookup(self, term: str) -> List[str]:
        """Paths containing ``term``."""
        return self._shards[self.shard_for(term)].lookup(term)

    def __contains__(self, term: str) -> bool:
        return term in self._shards[self.shard_for(term)]

    def __len__(self) -> int:
        """Number of distinct terms across shards."""
        return sum(len(shard) for shard in self._shards)

    def terms(self) -> Iterator[str]:
        """All distinct terms (shard by shard)."""
        for shard in self._shards:
            yield from shard.terms()

    def items(self) -> Iterator[Tuple[str, PostingsList]]:
        """All (term, postings) pairs."""
        for shard in self._shards:
            yield from shard.items()

    @property
    def block_count(self) -> int:
        """Number of term blocks added."""
        return self._block_count

    @property
    def posting_count(self) -> int:
        """Total (term, file) pairs."""
        return sum(shard.posting_count for shard in self._shards)

    def to_inverted_index(self) -> InvertedIndex:
        """Flatten the shards into one plain index (for comparisons)."""
        from repro.index.merge import merge_into

        result = InvertedIndex()
        for shard in self._shards:
            merge_into(result, shard, copy=True)
        result._block_count = self._block_count
        return result

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ShardedInvertedIndex):
            return self.to_inverted_index() == other.to_inverted_index()
        if isinstance(other, InvertedIndex):
            return self.to_inverted_index() == other
        return NotImplemented
