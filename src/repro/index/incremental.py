"""Incremental index maintenance.

The paper builds its index in one batch, but a deployed desktop search
tool must track a *changing* file system.  This module adds that layer:

* :class:`IncrementalIndex` — an inverted index plus a document store
  (path -> its term block), supporting add / remove / update of single
  documents while preserving the bulk index's invariants;
* filesystem snapshots and diffs (:func:`take_snapshot`,
  :func:`diff_snapshots`) to detect added, removed and modified files;
* :class:`IncrementalIndexer` — ties the two together: ``refresh()``
  re-scans the filesystem and applies exactly the necessary changes.

The defining invariant, asserted by the test suite: after any sequence
of changes and refreshes, the incremental index equals a from-scratch
rebuild of the current filesystem state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.adt import FnvHashMap
from repro.hashing import fnv1a_64
from repro.index.inverted import InvertedIndex
from repro.text.termblock import TermBlock
from repro.text.tokenizer import Tokenizer


class IncrementalIndex:
    """An inverted index that supports per-document removal.

    Keeps a document store (path -> term block) alongside the index, so
    removing a file walks exactly its own terms.  All bulk-build
    invariants hold between operations: each live (term, path) pair
    appears exactly once.
    """

    def __init__(self) -> None:
        self.index = InvertedIndex()
        self._documents: FnvHashMap[TermBlock] = FnvHashMap()

    def __contains__(self, path: str) -> bool:
        return path in self._documents

    def __len__(self) -> int:
        """Number of indexed documents."""
        return len(self._documents)

    def add(self, block: TermBlock) -> None:
        """Index a new document; raises if the path is already indexed."""
        if block.path in self._documents:
            raise ValueError(
                f"{block.path!r} is already indexed; use update()"
            )
        self.index.add_block(block)
        self._documents[block.path] = block

    def remove(self, path: str) -> bool:
        """Un-index a document; returns False if it was not indexed."""
        block = self._documents.get(path)
        if block is None:
            return False
        for term in block.terms:
            postings = self.index._map.get(term)
            postings.remove(path)
            if not postings:
                del self.index._map[term]
        self.index._block_count -= 1
        del self._documents[path]
        return True

    def update(self, block: TermBlock) -> None:
        """Replace a document's terms (adds it if new).

        Computes the term delta so unchanged terms are not touched —
        the common case for an edited document is a small delta.
        """
        old = self._documents.get(block.path)
        if old is None:
            self.add(block)
            return
        old_terms = set(old.terms)
        new_terms = set(block.terms)
        for term in old_terms - new_terms:
            postings = self.index._map.get(term)
            postings.remove(block.path)
            if not postings:
                del self.index._map[term]
        for term in new_terms - old_terms:
            from repro.index.postings import PostingsList

            self.index._map.setdefault(term, PostingsList()).append(block.path)
        self._documents[block.path] = block

    def lookup(self, term: str) -> List[str]:
        """Paths containing ``term``."""
        return self.index.lookup(term)

    def document_paths(self) -> List[str]:
        """All indexed paths."""
        return list(self._documents.keys())

    def clone(self) -> "IncrementalIndex":
        """A deep copy sharing no mutable state with the original.

        Postings lists are copied; :class:`~repro.text.termblock.TermBlock`
        document records are immutable and shared.  Refreshing a clone
        leaves every reader of the original index untouched — the basis
        of the service layer's copy-then-swap update path.
        """
        twin = IncrementalIndex()
        twin.index = self.index.copy()
        for path, block in self._documents.items():
            twin._documents[path] = block
        return twin

    @classmethod
    def from_inverted(cls, index: InvertedIndex) -> "IncrementalIndex":
        """Adopt an existing bulk-built index.

        The per-document store is reconstructed by transposing the
        postings, so an index persisted with :mod:`repro.index.serialize`
        can resume incremental maintenance after a reload.
        """
        incremental = cls()
        by_path: Dict[str, List[str]] = {}
        for term, postings in index.items():
            for path in postings:
                by_path.setdefault(path, []).append(term)
        incremental.index = index
        for path, terms in by_path.items():
            incremental._documents[path] = TermBlock(path, tuple(terms))
        return incremental


# -- change detection ---------------------------------------------------------

#: path -> (size, content hash).  Hash-based rather than mtime-based so
#: it works identically on the virtual and the real filesystem.
Snapshot = Dict[str, Tuple[int, int]]


def take_snapshot(fs, root: str = "") -> Snapshot:
    """Fingerprint every file under ``root`` (size + FNV-1a of content)."""
    snapshot: Snapshot = {}
    for ref in fs.list_files(root):
        snapshot[ref.path] = (ref.size, fnv1a_64(fs.read_file(ref.path)))
    return snapshot


def diff_snapshots(
    old: Snapshot, new: Snapshot
) -> Tuple[List[str], List[str], List[str]]:
    """(added, removed, modified) paths between two snapshots."""
    added = sorted(path for path in new if path not in old)
    removed = sorted(path for path in old if path not in new)
    modified = sorted(
        path for path in new if path in old and new[path] != old[path]
    )
    return added, removed, modified


@dataclass
class ChangeReport:
    """What one refresh did."""

    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    modified: List[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Number of documents touched."""
        return len(self.added) + len(self.removed) + len(self.modified)


class IncrementalIndexer:
    """Keeps an :class:`IncrementalIndex` in sync with a filesystem."""

    def __init__(
        self,
        fs,
        tokenizer: Optional[Tokenizer] = None,
        registry=None,
        root: str = "",
        index: Optional[IncrementalIndex] = None,
        snapshot: Optional[Snapshot] = None,
        extractor=None,
    ) -> None:
        from repro.extract.registry import resolve_extractor

        self.fs = fs
        # One Extractor seam (see repro.extract); tokenizer=/registry=
        # still fold in for older callers.
        self.extractor = resolve_extractor(extractor, tokenizer, registry)
        self.tokenizer = self.extractor.tokenizer
        self.registry = self.extractor.registry
        self.root = root
        # Passing a previously persisted index + its snapshot resumes
        # maintenance across process restarts (see the CLI's `refresh`).
        self.index = index if index is not None else IncrementalIndex()
        self._snapshot: Snapshot = dict(snapshot) if snapshot else {}

    @property
    def snapshot(self) -> Snapshot:
        """The fingerprint state to persist alongside the index."""
        return dict(self._snapshot)

    def refresh(self) -> ChangeReport:
        """Re-scan the filesystem and apply the delta to the index.

        Correctness properties (each pinned by a test):

        * **single read per file** — the bytes that are fingerprinted are
          the bytes that are indexed.  Hashing in one pass and re-reading
          in a second would let a concurrent writer slip content into the
          index that disagrees with its recorded fingerprint, making the
          change invisible to the next diff (a TOCTOU double-read);
        * **idempotent replay** — a crash mid-refresh leaves the index
          partially mutated while ``_snapshot`` still holds the old
          fingerprints (it is swapped last).  Re-running must converge,
          so changed paths are applied with upsert semantics
          (:meth:`IncrementalIndex.update`) and removals sweep every
          indexed path absent from the new scan — including residue a
          crashed refresh added for files that have since vanished;
        * **removals before adds** — a path must never be live in the
          index twice; the segmented path enforces the same
          tombstone-then-append order.
        """
        new_snapshot: Snapshot = {}
        blocks: Dict[str, TermBlock] = {}
        for ref in self.fs.list_files(self.root):
            content = self.fs.read_file(ref.path)
            fingerprint = (len(content), fnv1a_64(content))
            new_snapshot[ref.path] = fingerprint
            if self._snapshot.get(ref.path) != fingerprint:
                blocks[ref.path] = self._extract_content(ref.path, content)
        added, removed, modified = diff_snapshots(self._snapshot, new_snapshot)
        for path in self.index.document_paths():
            if path not in new_snapshot:
                self.index.remove(path)
        for path in added:
            self.index.update(blocks[path])
        for path in modified:
            self.index.update(blocks[path])
        self._snapshot = new_snapshot
        return ChangeReport(added=added, removed=removed, modified=modified)

    def _extract(self, path: str) -> TermBlock:
        return self._extract_content(path, self.fs.read_file(path))

    def _extract_content(self, path: str, content: bytes) -> TermBlock:
        return self.extractor.term_block(path, content)
