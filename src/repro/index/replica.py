"""Wire-ready index replicas for worker processes.

A multiprocessing worker cannot hand live :class:`InvertedIndex`
objects back to its parent — everything that crosses the process
boundary is bytes.  :class:`ReplicaBuilder` therefore keeps a replica
in exactly the shape the RWIRE1 wire format wants:

* paths are interned to dense doc ids the moment a file is added, so
  each path string is stored once per replica;
* postings are ``array('I')`` doc-id arrays, appended in scan order;
* :meth:`to_bytes` is then just a handful of bulk joins
  (:func:`repro.index.binfmt.pack_wire_sections`) — no per-posting
  work at serialization time.

Appending a doc id costs the same as appending a path reference, so
interning is free at build time; the payoff is that serialization and
the parent's merge both run at C speed.  The builder also fuses
duplicate elimination into the update (:meth:`add_scan`): a worker
pipes the tokenizer straight in and never materializes a term block.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List

from repro.index.binfmt import load_index_wire, pack_wire_sections
from repro.index.inverted import InvertedIndex
from repro.text.termblock import TermBlock


class ReplicaBuilder:
    """One worker's private index replica, built wire-ready."""

    __slots__ = ("_docs", "_postings", "_block_count")

    def __init__(self) -> None:
        self._docs: List[str] = []
        self._postings: Dict[str, "array[int]"] = {}
        self._block_count = 0

    # -- update paths ---------------------------------------------------

    def add_scan(self, path: str, terms: Iterable[str]) -> int:
        """Index one file from a raw (duplicate-bearing) term stream.

        Fuses the per-file duplicate elimination with the replica
        update: each distinct term gets the file's doc id appended to
        its postings array, first-seen order preserved.  Returns the
        number of distinct terms.
        """
        doc_id = len(self._docs)
        self._docs.append(path)
        self._block_count += 1
        postings = self._postings
        get = postings.get
        seen = set()
        seen_add = seen.add
        for term in terms:
            if term not in seen:
                seen_add(term)
                ids = get(term)
                if ids is None:
                    ids = postings[term] = array("I")
                ids.append(doc_id)
        return len(seen)

    def add_block(self, block: TermBlock) -> None:
        """Index one pre-deduplicated term block (same contract as
        :meth:`InvertedIndex.add_block`)."""
        self.add_scan(block.path, block.terms)

    # -- introspection --------------------------------------------------

    def __len__(self) -> int:
        """Number of distinct terms."""
        return len(self._postings)

    @property
    def doc_count(self) -> int:
        """Number of interned documents."""
        return len(self._docs)

    @property
    def block_count(self) -> int:
        """Number of files added."""
        return self._block_count

    @property
    def posting_count(self) -> int:
        """Total (term, file) pairs stored."""
        return sum(len(ids) for ids in self._postings.values())

    # -- conversions ----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize into the RWIRE1 wire format."""
        postings = self._postings
        terms = list(postings)
        return pack_wire_sections(
            self._block_count,
            self._docs,
            terms,
            (len(postings[t]) for t in terms),
            (postings[t].tobytes() for t in terms),
        )

    def to_index(self) -> InvertedIndex:
        """Materialize a plain :class:`InvertedIndex` (test convenience)."""
        return load_index_wire(self.to_bytes())

    def __repr__(self) -> str:
        return (
            f"ReplicaBuilder(docs={self.doc_count}, terms={len(self)}, "
            f"postings={self.posting_count})"
        )
