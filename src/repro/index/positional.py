"""Positional index for phrase queries.

The boolean inverted index answers "which files contain these terms";
a phrase query (``"parallel software design"``) also needs *where* —
consecutive positions.  :class:`PositionalIndex` stores per (term,
file) the ordered list of token positions, built in one scan, and
resolves phrases by intersecting position lists with offsets.

Kept separate from :class:`~repro.index.inverted.InvertedIndex`: the
paper's system is boolean, and positions roughly triple index size, so
they are an opt-in sidecar (like the ranking frequencies).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.adt import FnvHashMap
from repro.text.tokenizer import Tokenizer


class PositionalIndex:
    """term -> {path: sorted token positions}."""

    def __init__(self) -> None:
        self._positions: FnvHashMap[Dict[str, List[int]]] = FnvHashMap()
        self._document_count = 0

    @property
    def document_count(self) -> int:
        """Number of indexed documents."""
        return self._document_count

    def add_document(self, path: str, terms_in_order: Sequence[str]) -> None:
        """Index a document from its term sequence (duplicates and order
        preserved — positions are indices into this sequence)."""
        for position, term in enumerate(terms_in_order):
            per_doc = self._positions.setdefault(term, {})
            per_doc.setdefault(path, []).append(position)
        self._document_count += 1

    def positions(self, term: str, path: str) -> List[int]:
        """Sorted positions of ``term`` in ``path`` (empty if absent)."""
        per_doc = self._positions.get(term)
        return list(per_doc.get(path, ())) if per_doc else []

    def paths_containing(self, term: str) -> List[str]:
        """Documents containing ``term``."""
        per_doc = self._positions.get(term)
        return list(per_doc.keys()) if per_doc else []

    def phrase_paths(self, words: Sequence[str]) -> List[str]:
        """Documents containing the words *consecutively*, sorted.

        Candidate documents are the intersection of the words' document
        sets (rarest word first); each candidate is then verified by
        offset-intersecting the position lists.
        """
        if not words:
            return []
        if len(words) == 1:
            return sorted(self.paths_containing(words[0]))

        doc_sets = []
        for word in words:
            per_doc = self._positions.get(word)
            if not per_doc:
                return []
            doc_sets.append(set(per_doc.keys()))
        candidates = set.intersection(*doc_sets)

        matches = []
        for path in candidates:
            starts = set(self.positions(words[0], path))
            for offset, word in enumerate(words[1:], start=1):
                starts &= {
                    p - offset for p in self.positions(word, path)
                }
                if not starts:
                    break
            if starts:
                matches.append(path)
        return sorted(matches)

    @classmethod
    def from_fs(
        cls,
        fs,
        tokenizer: Optional[Tokenizer] = None,
        registry=None,
        root: str = "",
        extractor=None,
    ) -> "PositionalIndex":
        """Build a positional index by scanning a filesystem."""
        from repro.extract.registry import resolve_extractor

        extractor = resolve_extractor(extractor, tokenizer, registry)
        index = cls()
        for ref in fs.list_files(root):
            content = fs.read_file(ref.path)
            index.add_document(ref.path, extractor.terms(ref.path, content))
        return index

    # -- persistence -------------------------------------------------------

    def save(self, path: str) -> None:
        """Write the positional index as JSON lines (one term per line)."""
        import json

        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({
                "format": "repro-positions-v1",
                "documents": self._document_count,
            }) + "\n")
            for term, per_doc in self._positions.items():
                fh.write(json.dumps([term, per_doc]) + "\n")

    @classmethod
    def load(cls, path: str) -> "PositionalIndex":
        """Read an index written by :meth:`save`."""
        import json

        index = cls()
        with open(path, "r", encoding="utf-8") as fh:
            header = json.loads(fh.readline())
            if header.get("format") != "repro-positions-v1":
                raise ValueError(f"{path}: not a positional index file")
            index._document_count = header.get("documents", 0)
            for line in fh:
                term, per_doc = json.loads(line)
                index._positions[term] = per_doc
        return index
