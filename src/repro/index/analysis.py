"""Index statistics and diagnostics.

Step 1 of the paper's recommended process is measurement; these helpers
summarize what a built index actually contains — term/postings
distributions, heavy hitters, memory estimates — which the examples and
the sizing discussions in the benchmarks use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from repro.index.inverted import InvertedIndex
from repro.index.multi import MultiIndex

AnyIndex = Union[InvertedIndex, MultiIndex]


@dataclass(frozen=True)
class IndexStatistics:
    """Aggregate shape of an index."""

    term_count: int
    posting_count: int
    max_postings: int
    mean_postings: float
    median_postings: float
    singleton_terms: int  # terms occurring in exactly one file

    @property
    def singleton_fraction(self) -> float:
        """Share of terms that occur in a single file (Zipf tail)."""
        return self.singleton_terms / self.term_count if self.term_count else 0.0


def analyze(index: AnyIndex) -> IndexStatistics:
    """Compute :class:`IndexStatistics` for a single or multi index."""
    lengths = sorted(_posting_lengths(index).values())
    if not lengths:
        return IndexStatistics(0, 0, 0, 0.0, 0.0, 0)
    total = sum(lengths)
    n = len(lengths)
    median = (
        lengths[n // 2]
        if n % 2
        else (lengths[n // 2 - 1] + lengths[n // 2]) / 2.0
    )
    return IndexStatistics(
        term_count=n,
        posting_count=total,
        max_postings=lengths[-1],
        mean_postings=total / n,
        median_postings=float(median),
        singleton_terms=sum(1 for length in lengths if length == 1),
    )


def top_terms(index: AnyIndex, n: int = 10) -> List[Tuple[str, int]]:
    """The ``n`` terms with the longest postings, descending."""
    lengths = _posting_lengths(index)
    return sorted(lengths.items(), key=lambda kv: (-kv[1], kv[0]))[:n]


def postings_histogram(
    index: AnyIndex, buckets: int = 8
) -> List[Tuple[int, int, int]]:
    """(lower bound, upper bound, term count) per log2 length bucket."""
    if buckets < 1:
        raise ValueError("buckets must be positive")
    counts = [0] * buckets
    for length in _posting_lengths(index).values():
        bucket = min(buckets - 1, int(math.log2(length)) if length else 0)
        counts[bucket] += 1
    return [
        (2**i, 2 ** (i + 1) - 1 if i < buckets - 1 else -1, counts[i])
        for i in range(buckets)
    ]


def estimate_memory_bytes(index: AnyIndex) -> int:
    """Rough in-memory footprint: strings + postings references.

    Counts term bytes, path bytes per posting reference (8 bytes) and
    hash-table overhead (~48 bytes per term entry) — an estimate for
    capacity planning, not an exact measurement.
    """
    total = 0
    for term, postings in _items(index):
        total += len(term) + 48 + 8 * len(postings)
    return total


def _items(index: AnyIndex):
    if isinstance(index, MultiIndex):
        for replica in index.replicas:
            yield from replica.items()
    else:
        yield from index.items()


def _posting_lengths(index: AnyIndex) -> Dict[str, int]:
    lengths: Dict[str, int] = {}
    for term, postings in _items(index):
        lengths[term] = lengths.get(term, 0) + len(postings)
    return lengths
