"""Multi-index search view (what makes Implementation 3 legitimate).

Implementation 3 never joins the replicas "because the search can work
with multiple indices in parallel".  :class:`MultiIndex` is that search
side: a read-only view over several replicas whose lookup unions the
per-replica postings, optionally with one thread per replica.
"""

from __future__ import annotations

import threading
from typing import List, Sequence

from repro.index.inverted import InvertedIndex


class MultiIndex:
    """Read-only union view over index replicas."""

    def __init__(self, replicas: Sequence[InvertedIndex]) -> None:
        if not replicas:
            raise ValueError("MultiIndex needs at least one replica")
        self.replicas = list(replicas)

    def lookup(self, term: str) -> List[str]:
        """Union of the term's postings across all replicas (sequential)."""
        paths: List[str] = []
        for replica in self.replicas:
            paths.extend(replica.lookup(term))
        return paths

    def lookup_parallel(self, term: str) -> List[str]:
        """Same union, one thread per replica (the paper's future work)."""
        results: List[List[str]] = [[] for _ in self.replicas]

        def work(i: int, replica: InvertedIndex) -> None:
            results[i] = replica.lookup(term)

        threads = [
            threading.Thread(target=work, args=(i, r), daemon=True)
            for i, r in enumerate(self.replicas)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return [path for chunk in results for path in chunk]

    def __contains__(self, term: str) -> bool:
        return any(term in replica for replica in self.replicas)

    def terms(self):
        """Distinct terms across all replicas (arbitrary order)."""
        seen = set()
        for replica in self.replicas:
            for term in replica.terms():
                if term not in seen:
                    seen.add(term)
                    yield term

    def __len__(self) -> int:
        """Number of distinct terms across all replicas."""
        return len({t for replica in self.replicas for t in replica.terms()})

    @property
    def posting_count(self) -> int:
        """Total (term, file) pairs across all replicas."""
        return sum(replica.posting_count for replica in self.replicas)
