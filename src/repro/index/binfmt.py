"""Compact binary index persistence.

The JSON-lines format (:mod:`repro.index.serialize`) is transparent but
large; real search engines store postings as delta-compressed integer
lists.  This module implements that, from scratch:

* LEB128 varints (:func:`encode_varint` / :func:`decode_varint`);
* a document dictionary mapping paths to dense integer ids;
* per-term postings stored as **gap-encoded sorted doc ids**: ids are
  sorted, consecutive differences are varint-coded, so dense postings
  cost ~1 byte per entry.

Layout::

    magic   "RIDX1"
    docs    varint count, then per doc: varint path length, path bytes
    terms   varint count, then per term:
              varint term length, term bytes
              varint postings count
              gap-encoded doc ids (varints)

The format canonicalizes postings order (sorted by doc id); index
equality is order-insensitive, so round-trips preserve equality.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.index.inverted import InvertedIndex
from repro.index.postings import PostingsList

MAGIC = b"RIDX1"


def encode_varint(value: int) -> bytes:
    """LEB128-encode a non-negative integer."""
    if value < 0:
        raise ValueError(f"varints are unsigned, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int) -> Tuple[int, int]:
    """Decode one varint at ``offset``; returns (value, next offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise ValueError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


def encode_gaps(sorted_ids: List[int]) -> bytes:
    """Gap-encode a strictly increasing id list as varints."""
    out = bytearray()
    previous = -1
    for doc_id in sorted_ids:
        if doc_id <= previous:
            raise ValueError("doc ids must be strictly increasing")
        out += encode_varint(doc_id - previous - 1)
        previous = doc_id
    return bytes(out)


def decode_gaps(data: bytes, offset: int, count: int) -> Tuple[List[int], int]:
    """Decode ``count`` gap-encoded ids starting at ``offset``."""
    ids = []
    previous = -1
    for _ in range(count):
        gap, offset = decode_varint(data, offset)
        previous = previous + gap + 1
        ids.append(previous)
    return ids, offset


def dump_index_bytes(index: InvertedIndex) -> bytes:
    """Serialize an index into the binary format."""
    # Dense doc ids in sorted-path order make gap coding effective and
    # the output canonical.
    paths = sorted({p for _, postings in index.items() for p in postings})
    path_id = {path: i for i, path in enumerate(paths)}

    out = bytearray(MAGIC)
    out += encode_varint(len(paths))
    for path in paths:
        encoded = path.encode("utf-8")
        out += encode_varint(len(encoded)) + encoded

    terms = sorted(index.terms())
    out += encode_varint(len(terms))
    for term in terms:
        encoded = term.encode("utf-8")
        out += encode_varint(len(encoded)) + encoded
        ids = sorted(path_id[p] for p in index.lookup(term))
        out += encode_varint(len(ids))
        out += encode_gaps(ids)
    return bytes(out)


def load_index_bytes(data: bytes) -> InvertedIndex:
    """Deserialize binary-format bytes into an index."""
    if not data.startswith(MAGIC):
        raise ValueError("not a RIDX1 binary index")
    offset = len(MAGIC)

    doc_count, offset = decode_varint(data, offset)
    paths: List[str] = []
    for _ in range(doc_count):
        length, offset = decode_varint(data, offset)
        paths.append(data[offset : offset + length].decode("utf-8"))
        offset += length

    term_count, offset = decode_varint(data, offset)
    index = InvertedIndex()
    for _ in range(term_count):
        length, offset = decode_varint(data, offset)
        term = data[offset : offset + length].decode("utf-8")
        offset += length
        postings_count, offset = decode_varint(data, offset)
        ids, offset = decode_gaps(data, offset, postings_count)
        index._map[term] = PostingsList(paths[i] for i in ids)
    return index


def save_index_binary(index: InvertedIndex, path: str) -> int:
    """Write the binary format to ``path``; returns bytes written."""
    data = dump_index_bytes(index)
    with open(path, "wb") as fh:
        fh.write(data)
    return len(data)


def load_index_binary(path: str) -> InvertedIndex:
    """Read an index written by :func:`save_index_binary`."""
    with open(path, "rb") as fh:
        return load_index_bytes(fh.read())
