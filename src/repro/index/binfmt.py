"""Compact binary index persistence.

The JSON-lines format (:mod:`repro.index.serialize`) is transparent but
large; real search engines store postings as delta-compressed integer
lists.  This module implements that, from scratch:

* LEB128 varints (:func:`encode_varint` / :func:`decode_varint`);
* a document dictionary mapping paths to dense integer ids;
* per-term postings stored as **gap-encoded sorted doc ids**: ids are
  sorted, consecutive differences are varint-coded, so dense postings
  cost ~1 byte per entry.

Layout::

    magic   "RIDX1"
    docs    varint count, then per doc: varint path length, path bytes
    terms   varint count, then per term:
              varint term length, term bytes
              varint postings count
              gap-encoded doc ids (varints)

The format canonicalizes postings order (sorted by doc id); index
equality is order-insensitive, so round-trips preserve equality.

Next to RIDX1 lives its speed-first sibling, the **RWIRE1 wire format**
(:func:`dump_index_wire` / :func:`load_index_wire`): the to_bytes /
from_bytes fast path the multiprocessing build backend uses to ship
index replicas from worker processes to the parent.  Where RIDX1
optimizes for bytes on disk (sorted, canonical, ~1 byte per posting),
RWIRE1 optimizes for encode/decode *time*: every section is a bulk
operation over a length-prefixed array — one ``bytes.join`` to encode,
one ``array.frombytes`` to decode — so (de)serialization runs at C
speed instead of a Python loop per posting.

Layout (all integers little-endian)::

    magic        "RWIRE1"
    block_count  u32 — term blocks folded into the replica
    doc section  u32 count, u32 blob length,
                 u32[count] per-path byte lengths, concatenated UTF-8 paths
    term section u32 count, u32 blob length,
                 u32[count] per-term byte lengths, concatenated UTF-8 terms
    postings     u32[term count] postings counts,
                 u32[total] doc ids, grouped per term in term order

Doc ids are replica-local: each path is interned once, in first-seen
order, and postings refer to it by position.  Nothing is sorted — the
wire format preserves build order, which is what makes encoding cheap
and lets the parent's merge reproduce exactly what a threaded join
would have produced.
"""

from __future__ import annotations

import struct
import sys
from array import array
from typing import Iterable, List, Sequence, Tuple

from repro.index.inverted import InvertedIndex
from repro.index.postings import PostingsList

MAGIC = b"RIDX1"
WIRE_MAGIC = b"RWIRE1"

# The wire format stores u32 arrays via the array module for C-speed
# encode/decode; 'I' is 4 bytes on every platform CPython supports.
assert array("I").itemsize == 4, "wire format requires 4-byte unsigned ints"

_U32 = struct.Struct("<I")
_SWAP = sys.byteorder == "big"


def _u32s_to_bytes(values: Iterable[int]) -> bytes:
    out = array("I", values)
    if _SWAP:
        out.byteswap()
    return out.tobytes()


def _u32s_from_bytes(data: bytes) -> "array[int]":
    out = array("I")
    out.frombytes(data)
    if _SWAP:
        out.byteswap()
    return out


def encode_varint(value: int) -> bytes:
    """LEB128-encode a non-negative integer."""
    if value < 0:
        raise ValueError(f"varints are unsigned, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int) -> Tuple[int, int]:
    """Decode one varint at ``offset``; returns (value, next offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise ValueError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


def encode_gaps(sorted_ids: List[int]) -> bytes:
    """Gap-encode a strictly increasing id list as varints."""
    out = bytearray()
    previous = -1
    for doc_id in sorted_ids:
        if doc_id <= previous:
            raise ValueError("doc ids must be strictly increasing")
        out += encode_varint(doc_id - previous - 1)
        previous = doc_id
    return bytes(out)


def decode_gaps(data: bytes, offset: int, count: int) -> Tuple[List[int], int]:
    """Decode ``count`` gap-encoded ids starting at ``offset``."""
    ids = []
    previous = -1
    for _ in range(count):
        gap, offset = decode_varint(data, offset)
        previous = previous + gap + 1
        ids.append(previous)
    return ids, offset


def dump_index_bytes(index: InvertedIndex) -> bytes:
    """Serialize an index into the binary format."""
    # Dense doc ids in sorted-path order make gap coding effective and
    # the output canonical.
    paths = sorted({p for _, postings in index.items() for p in postings})
    path_id = {path: i for i, path in enumerate(paths)}

    out = bytearray(MAGIC)
    out += encode_varint(len(paths))
    for path in paths:
        encoded = path.encode("utf-8")
        out += encode_varint(len(encoded)) + encoded

    terms = sorted(index.terms())
    out += encode_varint(len(terms))
    for term in terms:
        encoded = term.encode("utf-8")
        out += encode_varint(len(encoded)) + encoded
        ids = sorted(path_id[p] for p in index.lookup(term))
        out += encode_varint(len(ids))
        out += encode_gaps(ids)
    return bytes(out)


def load_index_bytes(data: bytes) -> InvertedIndex:
    """Deserialize binary-format bytes into an index."""
    if not data.startswith(MAGIC):
        raise ValueError("not a RIDX1 binary index")
    offset = len(MAGIC)

    doc_count, offset = decode_varint(data, offset)
    paths: List[str] = []
    for _ in range(doc_count):
        length, offset = decode_varint(data, offset)
        paths.append(data[offset : offset + length].decode("utf-8"))
        offset += length

    term_count, offset = decode_varint(data, offset)
    index = InvertedIndex()
    for _ in range(term_count):
        length, offset = decode_varint(data, offset)
        term = data[offset : offset + length].decode("utf-8")
        offset += length
        postings_count, offset = decode_varint(data, offset)
        ids, offset = decode_gaps(data, offset, postings_count)
        index._map[term] = PostingsList(paths[i] for i in ids)
    return index


# -- RWIRE1: the to_bytes/from_bytes fast path ---------------------------


def pack_wire_sections(
    block_count: int,
    docs: Sequence[str],
    terms: Sequence[str],
    counts: Iterable[int],
    postings_blobs: Iterable[bytes],
) -> bytes:
    """Assemble RWIRE1 bytes from pre-grouped sections.

    ``postings_blobs`` are the per-term doc-id arrays already in
    native-endian ``array('I')`` byte form (the replica builder keeps
    them that way), concatenated here with a single ``join``.
    """
    doc_encoded = [d.encode("utf-8") for d in docs]
    term_encoded = [t.encode("utf-8") for t in terms]
    doc_blob = b"".join(doc_encoded)
    term_blob = b"".join(term_encoded)
    ids_blob = b"".join(postings_blobs)
    if _SWAP:
        swapped = array("I")
        swapped.frombytes(ids_blob)
        swapped.byteswap()
        ids_blob = swapped.tobytes()
    return b"".join(
        (
            WIRE_MAGIC,
            _U32.pack(block_count),
            _U32.pack(len(doc_encoded)),
            _U32.pack(len(doc_blob)),
            _u32s_to_bytes(map(len, doc_encoded)),
            doc_blob,
            _U32.pack(len(term_encoded)),
            _U32.pack(len(term_blob)),
            _u32s_to_bytes(map(len, term_encoded)),
            term_blob,
            _u32s_to_bytes(counts),
            ids_blob,
        )
    )


def _unpack_strings(data: bytes, offset: int) -> Tuple[List[str], int]:
    """Decode one length-prefixed string table; returns (strings, offset)."""
    count = _U32.unpack_from(data, offset)[0]
    blob_len = _U32.unpack_from(data, offset + 4)[0]
    offset += 8
    lengths = _u32s_from_bytes(data[offset : offset + 4 * count])
    offset += 4 * count
    blob = data[offset : offset + blob_len]
    if len(blob) != blob_len:
        raise ValueError("truncated RWIRE1 string table")
    offset += blob_len
    strings: List[str] = []
    position = 0
    for length in lengths:
        strings.append(blob[position : position + length].decode("utf-8"))
        position += length
    if position != blob_len:
        raise ValueError("RWIRE1 string table lengths do not match its blob")
    return strings, offset


def _unpack_wire(data: bytes):
    """Decode RWIRE1 into (block_count, docs, terms, counts, doc_ids)."""
    if not data.startswith(WIRE_MAGIC):
        raise ValueError("not an RWIRE1 wire-format index")
    offset = len(WIRE_MAGIC)
    block_count = _U32.unpack_from(data, offset)[0]
    offset += 4
    docs, offset = _unpack_strings(data, offset)
    terms, offset = _unpack_strings(data, offset)
    counts = _u32s_from_bytes(data[offset : offset + 4 * len(terms)])
    offset += 4 * len(terms)
    doc_ids = _u32s_from_bytes(data[offset:])
    if len(doc_ids) != sum(counts):
        raise ValueError(
            f"RWIRE1 postings truncated: counts say {sum(counts)} doc ids, "
            f"found {len(doc_ids)}"
        )
    return block_count, docs, terms, counts, doc_ids


def dump_index_wire(index: InvertedIndex) -> bytes:
    """Serialize ``index`` into RWIRE1 bytes (paths interned once).

    Convenience path for arbitrary indices; worker processes skip it by
    building their replicas directly in wire-ready form
    (:class:`repro.index.replica.ReplicaBuilder`).
    """
    doc_ids = {}
    docs: List[str] = []
    terms: List[str] = []
    counts: List[int] = []
    blobs: List[bytes] = []
    for term, postings in index.items():
        ids = array("I")
        for path in postings:
            doc_id = doc_ids.get(path)
            if doc_id is None:
                doc_id = doc_ids[path] = len(docs)
                docs.append(path)
            ids.append(doc_id)
        terms.append(term)
        counts.append(len(ids))
        blobs.append(ids.tobytes())
    return pack_wire_sections(index.block_count, docs, terms, counts, blobs)


def merge_wire_replica(target: InvertedIndex, data: bytes) -> int:
    """Decode RWIRE1 ``data`` and fold it into ``target``; returns doc count.

    This is the parent side of the "Join Forces" process backend: one
    replica arrives as a blob, and its postings are appended to the
    target per term — the same single-probe merge a threaded join does,
    without materializing an intermediate index.  The en-bloc invariant
    (each file indexed by exactly one replica) makes the append safe.
    """
    block_count, docs, terms, counts, doc_ids = _unpack_wire(data)
    target_map = target._map
    get_or_insert = target_map.get_or_insert
    position = 0
    for term, count in zip(terms, counts):
        chunk = doc_ids[position : position + count]
        position += count
        postings = get_or_insert(term, PostingsList)
        postings._paths.extend([docs[i] for i in chunk])
    target._block_count += block_count
    return len(docs)


def load_index_wire(data: bytes) -> InvertedIndex:
    """Deserialize RWIRE1 bytes into a fresh index."""
    index = InvertedIndex()
    merge_wire_replica(index, data)
    return index


def save_index_binary(index: InvertedIndex, path: str) -> int:
    """Deprecated alias of ``save_index(..., format="binary")``.

    Kept so historical import sites keep working; new code should call
    :func:`repro.index.serialize.save_index` with the ``format``
    keyword (or let ``format="auto"`` pick binary from the extension).
    """
    import warnings

    warnings.warn(
        "save_index_binary() is deprecated; use "
        "repro.index.save_index(index, path, format='binary')",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.index.serialize import save_index

    return save_index(index, path, format="binary")


def load_index_binary(path: str) -> InvertedIndex:
    """Deprecated alias of ``load_index(..., format="binary")``."""
    import warnings

    warnings.warn(
        "load_index_binary() is deprecated; use "
        "repro.index.load_index(path) (the format is sniffed)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.index.serialize import load_index

    return load_index(path, format="binary")
