"""Compact binary index persistence.

The JSON-lines format (:mod:`repro.index.serialize`) is transparent but
large; real search engines store postings as delta-compressed integer
lists.  This module implements that, from scratch:

* LEB128 varints (:func:`encode_varint` / :func:`decode_varint`);
* a document dictionary mapping paths to dense integer ids;
* per-term postings stored as **gap-encoded sorted doc ids**: ids are
  sorted, consecutive differences are varint-coded, so dense postings
  cost ~1 byte per entry.

Layout::

    magic   "RIDX1"
    docs    varint count, then per doc: varint path length, path bytes
    terms   varint count, then per term:
              varint term length, term bytes
              varint postings count
              gap-encoded doc ids (varints)

The format canonicalizes postings order (sorted by doc id); index
equality is order-insensitive, so round-trips preserve equality.

Next to RIDX1 lives its speed-first sibling, the **RWIRE1 wire format**
(:func:`dump_index_wire` / :func:`load_index_wire`): the to_bytes /
from_bytes fast path the multiprocessing build backend uses to ship
index replicas from worker processes to the parent.  Where RIDX1
optimizes for bytes on disk (sorted, canonical, ~1 byte per posting),
RWIRE1 optimizes for encode/decode *time*: every section is a bulk
operation over a length-prefixed array — one ``bytes.join`` to encode,
one ``array.frombytes`` to decode — so (de)serialization runs at C
speed instead of a Python loop per posting.

Layout (all integers little-endian)::

    magic        "RWIRE1"
    block_count  u32 — term blocks folded into the replica
    doc section  u32 count, u32 blob length,
                 u32[count] per-path byte lengths, concatenated UTF-8 paths
    term section u32 count, u32 blob length,
                 u32[count] per-term byte lengths, concatenated UTF-8 terms
    postings     u32[term count] postings counts,
                 u32[total] doc ids, grouped per term in term order

Doc ids are replica-local: each path is interned once, in first-seen
order, and postings refer to it by position.  Nothing is sorted — the
wire format preserves build order, which is what makes encoding cheap
and lets the parent's merge reproduce exactly what a threaded join
would have produced.

The third format, **RIDX2**, is the serving-oriented successor of
RIDX1: postings are split into fixed-size *blocks* (``block_size``
postings each, varbyte gap-coded doc ids plus varbyte per-doc term
frequencies), every section is reachable through fixed-width offset
tables, and the lexicon is sorted so a reader can binary-search a term
in O(log B) *without parsing the file* — which is what lets
:class:`repro.index.ondisk.MmapPostingsReader` serve queries straight
off ``mmap``.  Layout (all integers little-endian, offsets absolute)::

    magic        "RIDX2"
    header       u8 version, u8 flags (bit 0: real term frequencies),
                 u16 block_size,
                 u32 doc_count, u32 term_count,
                 u64 total_doc_len,
                 u64 x 6 section offsets (doc offsets, doc data,
                     lexicon offsets, lexicon data, block directory,
                     block data)
    doc offsets  u32[doc_count + 1] into the doc-data section
    doc data     per doc: varint path length, path bytes,
                 varint document length (term occurrences)
    lex offsets  u32[term_count + 1] into the lexicon-data section
    lex data     per term, sorted by UTF-8 bytes:
                 varint term length, term bytes,
                 varint df, varint first block, varint block count
    directory    per block: u64 offset (into block data),
                 u32 last_docid, u32 count, u32 doc_bytes,
                 u32 freq_bytes, u8 codec
    block data   per block: gap-coded doc ids (``doc_bytes`` bytes),
                 then varbyte ``tf - 1`` values (``freq_bytes`` bytes)

Every block is self-contained (its first doc id is gap-coded against
-1), so a reader can decode any block without touching the previous
one — the precondition for ``last_docid`` block skipping.  Doc ids are
dense and assigned in sorted-path order, making doc-id order equal to
sorted-path order; the DAAT evaluator exploits this for byte-identical
results against the in-memory engine.
"""

from __future__ import annotations

import struct
import sys
from array import array
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.index.inverted import InvertedIndex
from repro.index.postings import PostingsList

MAGIC = b"RIDX1"
WIRE_MAGIC = b"RWIRE1"
MAGIC2 = b"RIDX2"


class IndexFormatError(ValueError):
    """Raised when bytes are not in any recognized index format, or a
    recognized header is truncated/corrupt.  Subclasses ValueError so
    historical ``except ValueError`` call sites keep working."""

# The wire format stores u32 arrays via the array module for C-speed
# encode/decode; 'I' is 4 bytes on every platform CPython supports.
assert array("I").itemsize == 4, "wire format requires 4-byte unsigned ints"

_U32 = struct.Struct("<I")
_SWAP = sys.byteorder == "big"


def _u32s_to_bytes(values: Iterable[int]) -> bytes:
    out = array("I", values)
    if _SWAP:
        out.byteswap()
    return out.tobytes()


def _u32s_from_bytes(data: bytes) -> "array[int]":
    out = array("I")
    out.frombytes(data)
    if _SWAP:
        out.byteswap()
    return out


def encode_varint(value: int) -> bytes:
    """LEB128-encode a non-negative integer."""
    if value < 0:
        raise ValueError(f"varints are unsigned, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int) -> Tuple[int, int]:
    """Decode one varint at ``offset``; returns (value, next offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise ValueError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


def encode_gaps(sorted_ids: List[int]) -> bytes:
    """Gap-encode a strictly increasing id list as varints."""
    out = bytearray()
    previous = -1
    for doc_id in sorted_ids:
        if doc_id <= previous:
            raise ValueError("doc ids must be strictly increasing")
        out += encode_varint(doc_id - previous - 1)
        previous = doc_id
    return bytes(out)


def decode_gaps(data: bytes, offset: int, count: int) -> Tuple[List[int], int]:
    """Decode ``count`` gap-encoded ids starting at ``offset``."""
    ids = []
    previous = -1
    for _ in range(count):
        gap, offset = decode_varint(data, offset)
        previous = previous + gap + 1
        ids.append(previous)
    return ids, offset


def dump_index_bytes(index: InvertedIndex) -> bytes:
    """Serialize an index into the binary format."""
    # Dense doc ids in sorted-path order make gap coding effective and
    # the output canonical.
    paths = sorted({p for _, postings in index.items() for p in postings})
    path_id = {path: i for i, path in enumerate(paths)}

    out = bytearray(MAGIC)
    out += encode_varint(len(paths))
    for path in paths:
        encoded = path.encode("utf-8")
        out += encode_varint(len(encoded)) + encoded

    terms = sorted(index.terms())
    out += encode_varint(len(terms))
    for term in terms:
        encoded = term.encode("utf-8")
        out += encode_varint(len(encoded)) + encoded
        ids = sorted(path_id[p] for p in index.lookup(term))
        out += encode_varint(len(ids))
        out += encode_gaps(ids)
    return bytes(out)


def load_index_bytes(data: bytes) -> InvertedIndex:
    """Deserialize binary-format bytes into an index."""
    if not data.startswith(MAGIC):
        raise ValueError("not a RIDX1 binary index")
    offset = len(MAGIC)

    doc_count, offset = decode_varint(data, offset)
    paths: List[str] = []
    for _ in range(doc_count):
        length, offset = decode_varint(data, offset)
        paths.append(data[offset : offset + length].decode("utf-8"))
        offset += length

    term_count, offset = decode_varint(data, offset)
    index = InvertedIndex()
    for _ in range(term_count):
        length, offset = decode_varint(data, offset)
        term = data[offset : offset + length].decode("utf-8")
        offset += length
        postings_count, offset = decode_varint(data, offset)
        ids, offset = decode_gaps(data, offset, postings_count)
        index._map[term] = PostingsList(paths[i] for i in ids)
    return index


# -- RWIRE1: the to_bytes/from_bytes fast path ---------------------------


def pack_wire_sections(
    block_count: int,
    docs: Sequence[str],
    terms: Sequence[str],
    counts: Iterable[int],
    postings_blobs: Iterable[bytes],
) -> bytes:
    """Assemble RWIRE1 bytes from pre-grouped sections.

    ``postings_blobs`` are the per-term doc-id arrays already in
    native-endian ``array('I')`` byte form (the replica builder keeps
    them that way), concatenated here with a single ``join``.
    """
    doc_encoded = [d.encode("utf-8") for d in docs]
    term_encoded = [t.encode("utf-8") for t in terms]
    doc_blob = b"".join(doc_encoded)
    term_blob = b"".join(term_encoded)
    ids_blob = b"".join(postings_blobs)
    if _SWAP:
        swapped = array("I")
        swapped.frombytes(ids_blob)
        swapped.byteswap()
        ids_blob = swapped.tobytes()
    return b"".join(
        (
            WIRE_MAGIC,
            _U32.pack(block_count),
            _U32.pack(len(doc_encoded)),
            _U32.pack(len(doc_blob)),
            _u32s_to_bytes(map(len, doc_encoded)),
            doc_blob,
            _U32.pack(len(term_encoded)),
            _U32.pack(len(term_blob)),
            _u32s_to_bytes(map(len, term_encoded)),
            term_blob,
            _u32s_to_bytes(counts),
            ids_blob,
        )
    )


def _unpack_strings(data: bytes, offset: int) -> Tuple[List[str], int]:
    """Decode one length-prefixed string table; returns (strings, offset)."""
    count = _U32.unpack_from(data, offset)[0]
    blob_len = _U32.unpack_from(data, offset + 4)[0]
    offset += 8
    lengths = _u32s_from_bytes(data[offset : offset + 4 * count])
    offset += 4 * count
    blob = data[offset : offset + blob_len]
    if len(blob) != blob_len:
        raise ValueError("truncated RWIRE1 string table")
    offset += blob_len
    strings: List[str] = []
    position = 0
    for length in lengths:
        strings.append(blob[position : position + length].decode("utf-8"))
        position += length
    if position != blob_len:
        raise ValueError("RWIRE1 string table lengths do not match its blob")
    return strings, offset


def _unpack_wire(data: bytes):
    """Decode RWIRE1 into (block_count, docs, terms, counts, doc_ids)."""
    if not data.startswith(WIRE_MAGIC):
        raise ValueError("not an RWIRE1 wire-format index")
    offset = len(WIRE_MAGIC)
    block_count = _U32.unpack_from(data, offset)[0]
    offset += 4
    docs, offset = _unpack_strings(data, offset)
    terms, offset = _unpack_strings(data, offset)
    counts = _u32s_from_bytes(data[offset : offset + 4 * len(terms)])
    offset += 4 * len(terms)
    doc_ids = _u32s_from_bytes(data[offset:])
    if len(doc_ids) != sum(counts):
        raise ValueError(
            f"RWIRE1 postings truncated: counts say {sum(counts)} doc ids, "
            f"found {len(doc_ids)}"
        )
    return block_count, docs, terms, counts, doc_ids


def dump_index_wire(index: InvertedIndex) -> bytes:
    """Serialize ``index`` into RWIRE1 bytes (paths interned once).

    Convenience path for arbitrary indices; worker processes skip it by
    building their replicas directly in wire-ready form
    (:class:`repro.index.replica.ReplicaBuilder`).
    """
    doc_ids = {}
    docs: List[str] = []
    terms: List[str] = []
    counts: List[int] = []
    blobs: List[bytes] = []
    for term, postings in index.items():
        ids = array("I")
        for path in postings:
            doc_id = doc_ids.get(path)
            if doc_id is None:
                doc_id = doc_ids[path] = len(docs)
                docs.append(path)
            ids.append(doc_id)
        terms.append(term)
        counts.append(len(ids))
        blobs.append(ids.tobytes())
    return pack_wire_sections(index.block_count, docs, terms, counts, blobs)


def merge_wire_replica(target: InvertedIndex, data: bytes) -> int:
    """Decode RWIRE1 ``data`` and fold it into ``target``; returns doc count.

    This is the parent side of the "Join Forces" process backend: one
    replica arrives as a blob, and its postings are appended to the
    target per term — the same single-probe merge a threaded join does,
    without materializing an intermediate index.  The en-bloc invariant
    (each file indexed by exactly one replica) makes the append safe.
    """
    block_count, docs, terms, counts, doc_ids = _unpack_wire(data)
    target_map = target._map
    get_or_insert = target_map.get_or_insert
    position = 0
    for term, count in zip(terms, counts):
        chunk = doc_ids[position : position + count]
        position += count
        postings = get_or_insert(term, PostingsList)
        postings._paths.extend([docs[i] for i in chunk])
    target._block_count += block_count
    return len(docs)


def load_index_wire(data: bytes) -> InvertedIndex:
    """Deserialize RWIRE1 bytes into a fresh index."""
    index = InvertedIndex()
    merge_wire_replica(index, data)
    return index


# -- RIDX2: blocked, compressed, mmap-servable postings ------------------

RIDX2_VERSION = 1
RIDX2_FLAG_FREQS = 1
RIDX2_CODEC_VARBYTE = 0
RIDX2_DEFAULT_BLOCK = 128

#: Fixed-width header following the 5 magic bytes: version, flags,
#: block_size, doc_count, term_count, total_doc_len, then the six
#: absolute section offsets (doc offsets, doc data, lexicon offsets,
#: lexicon data, block directory, block data).
RIDX2_HEADER = struct.Struct("<BBHIIQQQQQQQ")

#: One block-directory record: offset into the block-data section,
#: last_docid, postings count, doc-id bytes, frequency bytes, codec.
RIDX2_DIR_ENTRY = struct.Struct("<QIIIIB")

#: Offset-table entries (doc and lexicon sections).
_OFF = struct.Struct("<I")


@dataclass(frozen=True)
class Ridx2Header:
    """The parsed fixed-width RIDX2 header."""

    version: int
    flags: int
    block_size: int
    doc_count: int
    term_count: int
    total_doc_len: int
    doc_offsets_off: int
    doc_data_off: int
    lex_offsets_off: int
    lex_data_off: int
    dir_off: int
    blocks_off: int

    @property
    def has_freqs(self) -> bool:
        """True when real term frequencies were baked in at dump time
        (otherwise every stored tf is 1)."""
        return bool(self.flags & RIDX2_FLAG_FREQS)


def parse_ridx2_header(data) -> Ridx2Header:
    """Parse the leading RIDX2 magic + header of ``data`` (bytes or mmap)."""
    if len(data) < len(MAGIC2) or bytes(data[: len(MAGIC2)]) != MAGIC2:
        raise IndexFormatError("not an RIDX2 on-disk index")
    if len(data) < len(MAGIC2) + RIDX2_HEADER.size:
        raise IndexFormatError(
            f"truncated RIDX2 header: need {len(MAGIC2) + RIDX2_HEADER.size} "
            f"bytes, file has {len(data)}"
        )
    return Ridx2Header(*RIDX2_HEADER.unpack_from(data, len(MAGIC2)))


def encode_posting_blocks(
    doc_ids: Sequence[int],
    freqs: Optional[Sequence[int]] = None,
    block_size: int = RIDX2_DEFAULT_BLOCK,
) -> Tuple[List[Tuple[int, int, int, int, int, int]], bytes]:
    """Split one posting list into self-contained fixed-size blocks.

    Returns ``(entries, blob)``: the concatenated block bytes plus one
    directory tuple ``(offset, last_docid, count, doc_bytes,
    freq_bytes, codec)`` per block, offsets relative to ``blob``.
    ``freqs`` (aligned with ``doc_ids``, every value >= 1) are stored
    as varbyte ``tf - 1``; ``None`` stores tf = 1 throughout.
    """
    if block_size < 1:
        raise ValueError(f"block_size must be at least 1, got {block_size}")
    entries: List[Tuple[int, int, int, int, int, int]] = []
    blob = bytearray()
    for start in range(0, len(doc_ids), block_size):
        chunk = list(doc_ids[start : start + block_size])
        doc_blob = encode_gaps(chunk)
        if freqs is None:
            freq_blob = b"\x00" * len(chunk)
        else:
            parts = []
            for tf in freqs[start : start + len(chunk)]:
                if tf < 1:
                    raise ValueError(f"term frequencies must be >= 1, got {tf}")
                parts.append(encode_varint(tf - 1))
            freq_blob = b"".join(parts)
        entries.append(
            (
                len(blob),
                chunk[-1],
                len(chunk),
                len(doc_blob),
                len(freq_blob),
                RIDX2_CODEC_VARBYTE,
            )
        )
        blob += doc_blob
        blob += freq_blob
    return entries, bytes(blob)


def decode_block_docids(data, offset: int, count: int, doc_bytes: int) -> List[int]:
    """Decode one block's doc ids from ``data`` (bytes or mmap)."""
    ids, end = decode_gaps(bytes(data[offset : offset + doc_bytes]), 0, count)
    if end != doc_bytes:
        raise IndexFormatError(
            f"RIDX2 block doc ids consumed {end} of {doc_bytes} bytes"
        )
    return ids


def decode_block_freqs(data, offset: int, count: int, freq_bytes: int) -> List[int]:
    """Decode one block's ``tf`` values from ``data`` (bytes or mmap)."""
    blob = bytes(data[offset : offset + freq_bytes])
    freqs: List[int] = []
    position = 0
    for _ in range(count):
        value, position = decode_varint(blob, position)
        freqs.append(value + 1)
    if position != freq_bytes:
        raise IndexFormatError(
            f"RIDX2 block frequencies consumed {position} of {freq_bytes} bytes"
        )
    return freqs


def _offset_table(lengths: Iterable[int]) -> bytes:
    """A u32 running-offset table with a trailing end sentinel."""
    out = bytearray()
    position = 0
    out += _OFF.pack(0)
    for length in lengths:
        position += length
        out += _OFF.pack(position)
    return bytes(out)


def dump_index_ridx2(
    index: InvertedIndex,
    frequencies=None,
    block_size: int = RIDX2_DEFAULT_BLOCK,
) -> bytes:
    """Serialize ``index`` into the blocked RIDX2 on-disk format.

    ``frequencies`` (a :class:`repro.query.ranking.FrequencyIndex`
    built over the same corpus) bakes real per-(term, doc) term
    frequencies and document lengths in, enabling exact BM25 scoring
    off the file alone; without it every tf is 1 and a document's
    length is its distinct-term count.  Terms whose postings are empty
    (tombstoned away by incremental maintenance) are canonicalized out.
    Output is canonical: equal indices produce equal bytes.
    """
    if block_size < 1 or block_size > 0xFFFF:
        raise ValueError(
            f"block_size must be in [1, 65535], got {block_size}"
        )
    paths = sorted({p for _, postings in index.items() for p in postings})
    path_id = {path: i for i, path in enumerate(paths)}

    # Per-document lengths: distinct-term counts as the fallback when
    # no frequency sidecar is supplied (or it misses a path).
    distinct = [0] * len(paths)
    term_ids: List[Tuple[str, List[int]]] = []
    for term, postings in index.items():
        ids = sorted(path_id[p] for p in set(postings))
        if not ids:
            continue  # canonicalize empty postings away
        term_ids.append((term, ids))
        for i in ids:
            distinct[i] += 1
    term_ids.sort(key=lambda pair: pair[0])

    doc_lengths: List[int] = []
    for i, path in enumerate(paths):
        length = frequencies.document_length(path) if frequencies else 0
        doc_lengths.append(length or distinct[i])

    doc_records = []
    for path, length in zip(paths, doc_lengths):
        encoded = path.encode("utf-8")
        doc_records.append(
            encode_varint(len(encoded)) + encoded + encode_varint(length)
        )

    lex_records = []
    directory = bytearray()
    blocks = bytearray()
    block_first = 0
    for term, ids in term_ids:
        tfs = None
        if frequencies is not None:
            tfs = [max(1, frequencies.tf(term, paths[i])) for i in ids]
        entries, blob = encode_posting_blocks(ids, tfs, block_size)
        for offset, last, count, doc_bytes, freq_bytes, codec in entries:
            directory += RIDX2_DIR_ENTRY.pack(
                offset + len(blocks), last, count, doc_bytes, freq_bytes, codec
            )
        encoded = term.encode("utf-8")
        lex_records.append(
            encode_varint(len(encoded))
            + encoded
            + encode_varint(len(ids))
            + encode_varint(block_first)
            + encode_varint(len(entries))
        )
        blocks += blob
        block_first += len(entries)

    doc_offsets = _offset_table(map(len, doc_records))
    lex_offsets = _offset_table(map(len, lex_records))
    doc_blob = b"".join(doc_records)
    lex_blob = b"".join(lex_records)

    position = len(MAGIC2) + RIDX2_HEADER.size
    doc_offsets_off = position
    position += len(doc_offsets)
    doc_data_off = position
    position += len(doc_blob)
    lex_offsets_off = position
    position += len(lex_offsets)
    lex_data_off = position
    position += len(lex_blob)
    dir_off = position
    position += len(directory)
    blocks_off = position

    flags = RIDX2_FLAG_FREQS if frequencies is not None else 0
    header = RIDX2_HEADER.pack(
        RIDX2_VERSION,
        flags,
        block_size,
        len(paths),
        len(term_ids),
        sum(doc_lengths),
        doc_offsets_off,
        doc_data_off,
        lex_offsets_off,
        lex_data_off,
        dir_off,
        blocks_off,
    )
    return b"".join(
        (
            MAGIC2,
            header,
            doc_offsets,
            doc_blob,
            lex_offsets,
            lex_blob,
            bytes(directory),
            bytes(blocks),
        )
    )


def iter_ridx2_lexicon(data, header: Optional[Ridx2Header] = None):
    """Yield ``(term, df, block_first, block_count)`` in sorted order."""
    h = header or parse_ridx2_header(data)
    for i in range(h.term_count):
        start = _OFF.unpack_from(data, h.lex_offsets_off + 4 * i)[0]
        offset = h.lex_data_off + start
        length, offset = decode_varint(data, offset)
        term = bytes(data[offset : offset + length]).decode("utf-8")
        offset += length
        df, offset = decode_varint(data, offset)
        block_first, offset = decode_varint(data, offset)
        block_count, offset = decode_varint(data, offset)
        yield term, df, block_first, block_count


def read_ridx2_doc(data, header: Ridx2Header, doc_id: int) -> Tuple[str, int]:
    """Decode one document record: ``(path, document length)``."""
    if not 0 <= doc_id < header.doc_count:
        raise IndexError(
            f"doc id {doc_id} out of range [0, {header.doc_count})"
        )
    start = _OFF.unpack_from(data, header.doc_offsets_off + 4 * doc_id)[0]
    offset = header.doc_data_off + start
    length, offset = decode_varint(data, offset)
    path = bytes(data[offset : offset + length]).decode("utf-8")
    doc_length, _ = decode_varint(data, offset + length)
    return path, doc_length


def load_index_ridx2(data: bytes) -> InvertedIndex:
    """Fully materialize RIDX2 bytes into an in-memory index.

    The transparent counterpart of
    :class:`repro.index.ondisk.MmapPostingsReader`: decodes every block
    eagerly (dropping frequencies — the in-memory index is boolean).
    """
    header = parse_ridx2_header(data)
    paths = [
        read_ridx2_doc(data, header, i)[0] for i in range(header.doc_count)
    ]
    index = InvertedIndex()
    for term, df, block_first, block_count in iter_ridx2_lexicon(data, header):
        ids: List[int] = []
        for b in range(block_first, block_first + block_count):
            offset, _last, count, doc_bytes, _freq_bytes, codec = (
                RIDX2_DIR_ENTRY.unpack_from(
                    data, header.dir_off + RIDX2_DIR_ENTRY.size * b
                )
            )
            if codec != RIDX2_CODEC_VARBYTE:
                raise IndexFormatError(f"unknown RIDX2 block codec {codec}")
            ids.extend(
                decode_block_docids(
                    data, header.blocks_off + offset, count, doc_bytes
                )
            )
        if len(ids) != df:
            raise IndexFormatError(
                f"RIDX2 term {term!r}: lexicon says df={df}, "
                f"blocks hold {len(ids)}"
            )
        index._map[term] = PostingsList(paths[i] for i in ids)
    return index


def save_index_binary(index: InvertedIndex, path: str) -> int:
    """Deprecated alias of ``save_index(..., format="binary")``.

    Kept so historical import sites keep working; new code should call
    :func:`repro.index.serialize.save_index` with the ``format``
    keyword (or let ``format="auto"`` pick binary from the extension).
    """
    import warnings

    warnings.warn(
        "save_index_binary() is deprecated; use "
        "repro.index.save_index(index, path, format='binary')",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.index.serialize import save_index

    return save_index(index, path, format="binary")


def load_index_binary(path: str) -> InvertedIndex:
    """Deprecated alias of ``load_index(..., format="binary")``."""
    import warnings

    warnings.warn(
        "load_index_binary() is deprecated; use "
        "repro.index.load_index(path) (the format is sniffed)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.index.serialize import load_index

    return load_index(path, format="binary")
