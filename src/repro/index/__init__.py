"""The inverted index (stage 3) and its merge operations.

An :class:`InvertedIndex` maps each term to the postings list of files
containing it, stored in an FNV-hashed hash map as in the paper's C++
implementation.  Two update paths exist:

* :meth:`InvertedIndex.add_block` — the en-bloc path the paper adopts:
  a file's de-duplicated term block is appended in one call, no
  duplicate check needed;
* :meth:`InvertedIndex.add_term_naive` — the rejected design the paper
  analyses: per-occurrence insertion with a linear (term, file)
  duplicate search.  Kept because the sequential baseline (and one of
  our ablations) exercises it.

Join ("Join Forces" pattern, Implementation 2) lives in
:mod:`repro.index.merge`; the multi-index search view that legitimizes
Implementation 3 lives in :mod:`repro.index.multi`.
"""

from repro.index.binfmt import (
    IndexFormatError,
    dump_index_ridx2,
    dump_index_wire,
    load_index_binary,
    load_index_ridx2,
    load_index_wire,
    merge_wire_replica,
    save_index_binary,
)
from repro.index.incremental import (
    ChangeReport,
    IncrementalIndex,
    IncrementalIndexer,
)
from repro.index.inverted import InvertedIndex
from repro.index.merge import join_indices, join_pairwise_tree, merge_into
from repro.index.multi import MultiIndex
from repro.index.ondisk import BlockCursor, MmapPostingsReader
from repro.index.positional import PositionalIndex
from repro.index.postings import PostingsList
from repro.index.replica import ReplicaBuilder
from repro.index.segments import (
    BackgroundCompactor,
    CompactionPolicy,
    DiskSegment,
    MemorySegment,
    SegmentManifest,
    SegmentedIndexer,
    compact_manifest,
    merge_segment_payload,
)
from repro.index.serialize import (
    INDEX_FORMATS,
    index_from_bytes,
    index_to_bytes,
    load_index,
    load_multi_index,
    save_index,
    save_multi_index,
    sniff_format,
)
from repro.index.sharded import ShardedInvertedIndex

__all__ = [
    "BackgroundCompactor",
    "BlockCursor",
    "ChangeReport",
    "CompactionPolicy",
    "DiskSegment",
    "MemorySegment",
    "SegmentManifest",
    "SegmentedIndexer",
    "INDEX_FORMATS",
    "IncrementalIndex",
    "IncrementalIndexer",
    "IndexFormatError",
    "InvertedIndex",
    "MmapPostingsReader",
    "MultiIndex",
    "PositionalIndex",
    "PostingsList",
    "ReplicaBuilder",
    "ShardedInvertedIndex",
    "compact_manifest",
    "dump_index_ridx2",
    "dump_index_wire",
    "index_from_bytes",
    "index_to_bytes",
    "join_indices",
    "join_pairwise_tree",
    "load_index",
    "load_index_binary",
    "load_index_ridx2",
    "load_index_wire",
    "load_multi_index",
    "merge_into",
    "merge_segment_payload",
    "merge_wire_replica",
    "save_index",
    "save_index_binary",
    "save_multi_index",
    "sniff_format",
]
