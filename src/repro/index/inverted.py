"""The inverted index.

Maps term -> :class:`~repro.index.postings.PostingsList` inside an
:class:`~repro.adt.FnvHashMap`.  The index itself is *not* thread-safe;
concurrency policy (a shared lock, replication, buffering) is exactly
what the three implementations in :mod:`repro.engine` differ in, so it
is layered on top rather than baked in.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.adt import FnvHashMap
from repro.index.postings import PostingsList
from repro.text.termblock import TermBlock


class InvertedIndex:
    """Term -> postings mapping with en-bloc and naive update paths."""

    def __init__(self) -> None:
        self._map: FnvHashMap[PostingsList] = FnvHashMap()
        self._block_count = 0

    # -- update paths ---------------------------------------------------

    def add_block(self, block: TermBlock) -> None:
        """En-bloc update: append ``block.path`` to each term's postings.

        Because the block is de-duplicated and every file is scanned
        exactly once, no (term, file) duplicate check is performed —
        this is the paper's chosen design.  Each term costs exactly one
        FNV hash and one bucket walk (``get_or_insert``); a fresh
        postings list is only allocated for terms not seen before.
        """
        path = block.path
        get_or_insert = self._map.get_or_insert
        for term in block.terms:
            get_or_insert(term, PostingsList).append(path)
        self._block_count += 1

    def add_term_naive(self, term: str, path: str) -> bool:
        """Naive per-occurrence update with a linear duplicate search.

        Returns True when the (term, path) pair was new.  This is the
        rejected design the paper analyses (and the code path its slow
        sequential baseline pays for): every occurrence re-searches the
        postings list for the file.
        """
        postings = self._map.get_or_insert(term, PostingsList)
        if postings.contains(path):
            return False
        postings.append(path)
        return True

    # -- queries ---------------------------------------------------------

    def lookup(self, term: str) -> List[str]:
        """Paths of the files containing ``term`` (empty list if none)."""
        postings = self._map.get(term)
        return postings.paths() if postings is not None else []

    def __contains__(self, term: str) -> bool:
        return term in self._map

    def __len__(self) -> int:
        """Number of distinct terms."""
        return len(self._map)

    def terms(self) -> Iterator[str]:
        """All distinct terms (bucket order)."""
        return self._map.keys()

    def items(self) -> Iterator[Tuple[str, PostingsList]]:
        """All (term, postings) pairs (bucket order)."""
        return self._map.items()

    @property
    def block_count(self) -> int:
        """Number of term blocks added via the en-bloc path."""
        return self._block_count

    @property
    def posting_count(self) -> int:
        """Total number of (term, file) pairs stored."""
        return sum(len(p) for p in self._map.values())

    def subset(self, keep) -> "InvertedIndex":
        """A new index holding only postings whose path is in ``keep``.

        The document-partitioning primitive: a shard's index is the
        full index restricted to the shard's documents.  Posting order
        within a term is preserved, terms whose postings all fall
        outside ``keep`` are dropped entirely, and the source index is
        untouched.  ``keep`` can be any container supporting ``in``
        (pass a set/frozenset; a list would make this quadratic).
        """
        sub = InvertedIndex()
        for term, postings in self.items():
            kept = [path for path in postings.paths() if path in keep]
            if kept:
                sub._map[term] = PostingsList(kept)
        return sub

    def copy(self) -> "InvertedIndex":
        """A deep copy: fresh postings lists, shared (immutable) strings.

        Snapshot isolation rests on this: the service layer publishes a
        copy and mutates only the original (or vice versa), so readers
        of a published snapshot can never observe a half-applied update.
        """
        clone = InvertedIndex()
        for term, postings in self.items():
            clone._map[term] = PostingsList(postings.paths())
        clone._block_count = self._block_count
        return clone

    def __eq__(self, other: object) -> bool:
        """Content equality: same terms with the same posting sets."""
        if not isinstance(other, InvertedIndex):
            return NotImplemented
        if len(self) != len(other):
            return False
        for term, postings in self.items():
            theirs = other._map.get(term)
            if theirs is None or postings != theirs:
                return False
        return True

    def __repr__(self) -> str:
        return (
            f"InvertedIndex(terms={len(self)}, postings={self.posting_count}, "
            f"blocks={self._block_count})"
        )
