"""Index persistence: one save/load pair over every on-disk format.

Three single-index encodings exist:

* ``"json"`` — a transparent JSON-lines file: line 1 a header with a
  format tag and counts, every further line one ``[term, [path, ...]]``
  posting entry;
* ``"binary"`` — the compact RIDX1 encoding from
  :mod:`repro.index.binfmt` (delta-compressed postings, ~1 byte per
  entry);
* ``"ridx2"`` — the blocked, mmap-servable RIDX2 encoding (fixed-size
  varbyte posting blocks + block directory + sorted lexicon), which
  :class:`repro.index.ondisk.MmapPostingsReader` serves without
  loading; ``load_index`` still materializes it when asked.

:func:`save_index` and :func:`load_index` take a ``format`` keyword
covering all three (plus ``"auto"``: save picks by file extension —
``.ridx`` means binary, ``.ridx2`` the blocked format — and load
sniffs the leading magic bytes, so a loader never needs to know what
it holds; RWIRE1 wire bytes load too).  Unrecognized leading bytes
raise :class:`IndexFormatError` naming the bytes found and the
supported formats, instead of whatever decode error would otherwise
escape.  The historical per-format entry points
:func:`repro.index.binfmt.save_index_binary` /
:func:`~repro.index.binfmt.load_index_binary` remain as deprecated
aliases of these two.

A :class:`~repro.index.multi.MultiIndex` is saved as one file per
replica inside a directory, so Implementation 3's unjoined output can
be persisted and searched later without ever paying the join.

For byte-oriented callers, :func:`index_to_bytes` / :func:`index_from_bytes`
dispatch between the binary encodings in :mod:`repro.index.binfmt`:
the canonical, compact RIDX1, the speed-first RWIRE1 wire format the
process build backend uses, and blocked RIDX2.  ``index_from_bytes``
sniffs the magic, so a loader never needs to know which one it holds.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Tuple

from repro.index.binfmt import IndexFormatError
from repro.index.inverted import InvertedIndex
from repro.index.multi import MultiIndex
from repro.index.postings import PostingsList

_FORMAT = "repro-index-v1"

#: The on-disk encodings ``save_index``/``load_index`` understand.
INDEX_FORMATS: Tuple[str, ...] = ("json", "binary", "ridx2", "auto")

#: File extensions ``format="auto"`` maps to each binary encoding on
#: save.  ``.ridx2`` must be checked before ``.ridx``-style suffixes.
_RIDX2_EXTENSIONS = (".ridx2",)
_BINARY_EXTENSIONS = (".ridx", ".bin")

#: What the sniffing loader accepts, for error messages.
_SUPPORTED = "JSON-lines, RIDX1, RIDX2, RWIRE1"


def index_to_bytes(
    index: InvertedIndex, wire: bool = False, format: Optional[str] = None
) -> bytes:
    """Serialize to RIDX1 bytes, RWIRE1 with ``wire=True``, or any of
    ``format="binary"|"wire"|"ridx2"``.

    RIDX1 is canonical (equal indices produce equal bytes) and small;
    RWIRE1 is the fast path — encode/decode are bulk C-level operations
    at the cost of a few bytes per posting; RIDX2 is the blocked,
    mmap-servable layout.
    """
    from repro.index.binfmt import (
        dump_index_bytes,
        dump_index_ridx2,
        dump_index_wire,
    )

    if format is None:
        format = "wire" if wire else "binary"
    if format == "ridx2":
        return dump_index_ridx2(index)
    if format == "wire":
        return dump_index_wire(index)
    if format == "binary":
        return dump_index_bytes(index)
    raise ValueError(
        f"format must be 'binary', 'wire' or 'ridx2', got {format!r}"
    )


def index_from_bytes(data: bytes) -> InvertedIndex:
    """Deserialize RIDX1, RIDX2 or RWIRE1 bytes, sniffing the magic."""
    from repro.index.binfmt import (
        MAGIC,
        MAGIC2,
        WIRE_MAGIC,
        load_index_bytes,
        load_index_ridx2,
        load_index_wire,
    )

    if data.startswith(WIRE_MAGIC):
        return load_index_wire(data)
    if data.startswith(MAGIC2):
        return load_index_ridx2(data)
    if data.startswith(MAGIC):
        return load_index_bytes(data)
    raise IndexFormatError(
        f"unrecognized index bytes: leading bytes {bytes(data[:8])!r} match "
        f"none of the supported binary formats (RIDX1, RIDX2, RWIRE1)"
    )


def _check_format(format: str, allow_auto: bool = True) -> None:
    allowed = INDEX_FORMATS if allow_auto else INDEX_FORMATS[:-1]
    if format not in allowed:
        raise ValueError(
            f"format must be one of {allowed}, got {format!r}"
        )


def save_index(
    index: InvertedIndex,
    path: str,
    format: str = "auto",
    frequencies=None,
) -> int:
    """Write ``index`` to ``path``; returns the bytes written.

    ``format="json"`` writes the JSON-lines encoding, ``"binary"`` the
    compact RIDX1 encoding, ``"ridx2"`` the blocked mmap-servable
    encoding, and ``"auto"`` (the default) picks by extension:
    ``.ridx2`` means RIDX2, ``.ridx``/``.bin`` mean binary, anything
    else JSON-lines.  ``frequencies`` (a
    :class:`~repro.query.ranking.FrequencyIndex`) only applies to
    RIDX2 and bakes real term frequencies and document lengths in for
    exact BM25 scoring off the file.
    """
    _check_format(format)
    if format == "auto":
        lowered = path.lower()
        if lowered.endswith(_RIDX2_EXTENSIONS):
            format = "ridx2"
        elif lowered.endswith(_BINARY_EXTENSIONS):
            format = "binary"
        else:
            format = "json"
    if frequencies is not None and format != "ridx2":
        raise ValueError(
            "frequencies are only stored by the RIDX2 format; "
            f"requested format {format!r} cannot carry them"
        )
    if format == "ridx2":
        from repro.index.binfmt import dump_index_ridx2

        data = dump_index_ridx2(index, frequencies=frequencies)
        with open(path, "wb") as fh:
            fh.write(data)
        return len(data)
    if format == "binary":
        data = index_to_bytes(index)
        with open(path, "wb") as fh:
            fh.write(data)
        return len(data)
    with open(path, "w", encoding="utf-8") as fh:
        header = {
            "format": _FORMAT,
            "terms": len(index),
            "postings": index.posting_count,
            "blocks": index.block_count,
        }
        written = fh.write(json.dumps(header) + "\n")
        for term, postings in index.items():
            written += fh.write(json.dumps([term, postings.paths()]) + "\n")
    return written


def sniff_format(head: bytes) -> Optional[str]:
    """Classify leading file bytes: a format name, or None if unknown.

    Returns ``"binary"`` for RIDX1/RWIRE1, ``"ridx2"`` for RIDX2 and
    ``"json"`` for a plausible JSON-lines header.  ``None`` means the
    bytes match nothing we can load.
    """
    from repro.index.binfmt import MAGIC, MAGIC2, WIRE_MAGIC

    if head.startswith(MAGIC2):
        return "ridx2"
    if head.startswith(MAGIC) or head.startswith(WIRE_MAGIC):
        return "binary"
    # The JSON-lines header is a JSON object on line 1; sniffing just
    # needs plausibility — the JSON parser then validates for real.
    if head[:1] == b"{":
        return "json"
    return None


def load_index(path: str, format: str = "auto") -> InvertedIndex:
    """Read an index saved in any single-index format.

    With ``format="auto"`` (the default) the leading bytes decide:
    RIDX1/RWIRE1 magic means binary, RIDX2 magic the blocked format,
    a ``{`` a JSON-lines header.  Anything else raises
    :class:`IndexFormatError` naming the bytes found.  Passing
    ``"json"``, ``"binary"`` or ``"ridx2"`` enforces that encoding and
    fails loudly on a mismatch.
    """
    _check_format(format)
    if format == "auto":
        with open(path, "rb") as probe:
            head = probe.read(8)
        sniffed = sniff_format(head)
        if sniffed is None:
            detail = (
                f"file is empty"
                if not head
                else f"leading bytes {head!r} match no known magic"
            )
            raise IndexFormatError(
                f"{path}: not a recognized index file ({detail}); "
                f"supported formats: {_SUPPORTED}"
            )
        format = sniffed
    if format == "ridx2":
        from repro.index.binfmt import load_index_ridx2

        with open(path, "rb") as fh:
            return load_index_ridx2(fh.read())
    if format == "binary":
        with open(path, "rb") as fh:
            return index_from_bytes(fh.read())
    index = InvertedIndex()
    with open(path, "r", encoding="utf-8") as fh:
        try:
            header = json.loads(fh.readline())
        except json.JSONDecodeError as exc:
            raise IndexFormatError(
                f"{path}: not a {_FORMAT} file (line 1 is not JSON: {exc}); "
                f"supported formats: {_SUPPORTED}"
            ) from exc
        if not isinstance(header, dict) or header.get("format") != _FORMAT:
            raise IndexFormatError(f"{path}: not a {_FORMAT} file")
        for line in fh:
            term, paths = json.loads(line)
            index._map[term] = PostingsList(paths)
        index._block_count = header.get("blocks", 0)
    if len(index) != header["terms"]:
        raise ValueError(
            f"{path}: header says {header['terms']} terms, "
            f"found {len(index)}"
        )
    return index


def save_multi_index(multi: MultiIndex, directory: str) -> None:
    """Write each replica of ``multi`` as ``replica-NNN.idx`` in a dir."""
    os.makedirs(directory, exist_ok=True)
    existing = [n for n in os.listdir(directory) if n.endswith(".idx")]
    if existing:
        raise FileExistsError(
            f"{directory} already contains index files: {existing[:3]}"
        )
    for i, replica in enumerate(multi.replicas):
        save_index(replica, os.path.join(directory, f"replica-{i:03d}.idx"))


def load_multi_index(directory: str) -> MultiIndex:
    """Read a directory written by :func:`save_multi_index`."""
    names = sorted(n for n in os.listdir(directory) if n.endswith(".idx"))
    if not names:
        raise FileNotFoundError(f"no .idx files in {directory}")
    replicas: List[InvertedIndex] = [
        load_index(os.path.join(directory, name)) for name in names
    ]
    return MultiIndex(replicas)
