"""Index persistence.

A desktop-search index must outlive the process; this module provides a
simple, dependency-free JSON-lines format:

* line 1: a header with a format tag and counts;
* every further line: one ``[term, [path, ...]]`` posting entry.

A :class:`~repro.index.multi.MultiIndex` is saved as one file per
replica inside a directory, so Implementation 3's unjoined output can
be persisted and searched later without ever paying the join.

For byte-oriented callers, :func:`index_to_bytes` / :func:`index_from_bytes`
dispatch between the two binary encodings in :mod:`repro.index.binfmt`:
the canonical, compact RIDX1 and the speed-first RWIRE1 wire format the
process build backend uses.  ``index_from_bytes`` sniffs the magic, so
a loader never needs to know which one it holds.
"""

from __future__ import annotations

import json
import os
from typing import List

from repro.index.inverted import InvertedIndex
from repro.index.multi import MultiIndex
from repro.index.postings import PostingsList

_FORMAT = "repro-index-v1"


def index_to_bytes(index: InvertedIndex, wire: bool = False) -> bytes:
    """Serialize to RIDX1 bytes, or RWIRE1 with ``wire=True``.

    RIDX1 is canonical (equal indices produce equal bytes) and small;
    RWIRE1 is the fast path — encode/decode are bulk C-level operations
    at the cost of a few bytes per posting.
    """
    from repro.index.binfmt import dump_index_bytes, dump_index_wire

    return dump_index_wire(index) if wire else dump_index_bytes(index)


def index_from_bytes(data: bytes) -> InvertedIndex:
    """Deserialize RIDX1 or RWIRE1 bytes, sniffing the magic."""
    from repro.index.binfmt import (
        MAGIC,
        WIRE_MAGIC,
        load_index_bytes,
        load_index_wire,
    )

    if data.startswith(WIRE_MAGIC):
        return load_index_wire(data)
    if data.startswith(MAGIC):
        return load_index_bytes(data)
    raise ValueError("neither an RIDX1 nor an RWIRE1 binary index")


def save_index(index: InvertedIndex, path: str) -> None:
    """Write ``index`` to ``path`` in JSON-lines format."""
    with open(path, "w", encoding="utf-8") as fh:
        header = {
            "format": _FORMAT,
            "terms": len(index),
            "postings": index.posting_count,
            "blocks": index.block_count,
        }
        fh.write(json.dumps(header) + "\n")
        for term, postings in index.items():
            fh.write(json.dumps([term, postings.paths()]) + "\n")


def load_index(path: str) -> InvertedIndex:
    """Read an index previously written by :func:`save_index`."""
    index = InvertedIndex()
    with open(path, "r", encoding="utf-8") as fh:
        header = json.loads(fh.readline())
        if header.get("format") != _FORMAT:
            raise ValueError(f"{path}: not a {_FORMAT} file")
        for line in fh:
            term, paths = json.loads(line)
            index._map[term] = PostingsList(paths)
        index._block_count = header.get("blocks", 0)
    if len(index) != header["terms"]:
        raise ValueError(
            f"{path}: header says {header['terms']} terms, "
            f"found {len(index)}"
        )
    return index


def save_multi_index(multi: MultiIndex, directory: str) -> None:
    """Write each replica of ``multi`` as ``replica-NNN.idx`` in a dir."""
    os.makedirs(directory, exist_ok=True)
    existing = [n for n in os.listdir(directory) if n.endswith(".idx")]
    if existing:
        raise FileExistsError(
            f"{directory} already contains index files: {existing[:3]}"
        )
    for i, replica in enumerate(multi.replicas):
        save_index(replica, os.path.join(directory, f"replica-{i:03d}.idx"))


def load_multi_index(directory: str) -> MultiIndex:
    """Read a directory written by :func:`save_multi_index`."""
    names = sorted(n for n in os.listdir(directory) if n.endswith(".idx"))
    if not names:
        raise FileNotFoundError(f"no .idx files in {directory}")
    replicas: List[InvertedIndex] = [
        load_index(os.path.join(directory, name)) for name in names
    ]
    return MultiIndex(replicas)
