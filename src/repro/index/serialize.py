"""Index persistence: one save/load pair over every on-disk format.

Two single-index encodings exist:

* ``"json"`` — a transparent JSON-lines file: line 1 a header with a
  format tag and counts, every further line one ``[term, [path, ...]]``
  posting entry;
* ``"binary"`` — the compact RIDX1 encoding from
  :mod:`repro.index.binfmt` (delta-compressed postings, ~1 byte per
  entry).

:func:`save_index` and :func:`load_index` take a ``format`` keyword
covering both (plus ``"auto"``: save picks by file extension —
``.ridx`` means binary — and load sniffs the leading magic bytes, so a
loader never needs to know what it holds; RWIRE1 wire bytes load too).
The historical per-format entry points
:func:`repro.index.binfmt.save_index_binary` /
:func:`~repro.index.binfmt.load_index_binary` remain as deprecated
aliases of these two.

A :class:`~repro.index.multi.MultiIndex` is saved as one file per
replica inside a directory, so Implementation 3's unjoined output can
be persisted and searched later without ever paying the join.

For byte-oriented callers, :func:`index_to_bytes` / :func:`index_from_bytes`
dispatch between the two binary encodings in :mod:`repro.index.binfmt`:
the canonical, compact RIDX1 and the speed-first RWIRE1 wire format the
process build backend uses.  ``index_from_bytes`` sniffs the magic, so
a loader never needs to know which one it holds.
"""

from __future__ import annotations

import json
import os
from typing import List, Tuple

from repro.index.inverted import InvertedIndex
from repro.index.multi import MultiIndex
from repro.index.postings import PostingsList

_FORMAT = "repro-index-v1"

#: The on-disk encodings ``save_index``/``load_index`` understand.
INDEX_FORMATS: Tuple[str, ...] = ("json", "binary", "auto")

#: File extensions ``format="auto"`` maps to the binary encoding on save.
_BINARY_EXTENSIONS = (".ridx", ".bin")


def index_to_bytes(index: InvertedIndex, wire: bool = False) -> bytes:
    """Serialize to RIDX1 bytes, or RWIRE1 with ``wire=True``.

    RIDX1 is canonical (equal indices produce equal bytes) and small;
    RWIRE1 is the fast path — encode/decode are bulk C-level operations
    at the cost of a few bytes per posting.
    """
    from repro.index.binfmt import dump_index_bytes, dump_index_wire

    return dump_index_wire(index) if wire else dump_index_bytes(index)


def index_from_bytes(data: bytes) -> InvertedIndex:
    """Deserialize RIDX1 or RWIRE1 bytes, sniffing the magic."""
    from repro.index.binfmt import (
        MAGIC,
        WIRE_MAGIC,
        load_index_bytes,
        load_index_wire,
    )

    if data.startswith(WIRE_MAGIC):
        return load_index_wire(data)
    if data.startswith(MAGIC):
        return load_index_bytes(data)
    raise ValueError("neither an RIDX1 nor an RWIRE1 binary index")


def _check_format(format: str, allow_auto: bool = True) -> None:
    allowed = INDEX_FORMATS if allow_auto else INDEX_FORMATS[:-1]
    if format not in allowed:
        raise ValueError(
            f"format must be one of {allowed}, got {format!r}"
        )


def save_index(
    index: InvertedIndex, path: str, format: str = "auto"
) -> int:
    """Write ``index`` to ``path``; returns the bytes written.

    ``format="json"`` writes the JSON-lines encoding, ``"binary"`` the
    compact RIDX1 encoding, and ``"auto"`` (the default) picks binary
    for ``.ridx``/``.bin`` paths and JSON-lines otherwise.
    """
    _check_format(format)
    if format == "auto":
        format = (
            "binary"
            if path.lower().endswith(_BINARY_EXTENSIONS)
            else "json"
        )
    if format == "binary":
        data = index_to_bytes(index)
        with open(path, "wb") as fh:
            fh.write(data)
        return len(data)
    with open(path, "w", encoding="utf-8") as fh:
        header = {
            "format": _FORMAT,
            "terms": len(index),
            "postings": index.posting_count,
            "blocks": index.block_count,
        }
        written = fh.write(json.dumps(header) + "\n")
        for term, postings in index.items():
            written += fh.write(json.dumps([term, postings.paths()]) + "\n")
    return written


def load_index(path: str, format: str = "auto") -> InvertedIndex:
    """Read an index saved in any single-index format.

    With ``format="auto"`` (the default) the leading bytes decide:
    RIDX1/RWIRE1 magic means binary, anything else is parsed as
    JSON-lines.  Passing ``"json"`` or ``"binary"`` enforces that
    encoding and fails loudly on a mismatch.
    """
    _check_format(format)
    if format == "auto":
        from repro.index.binfmt import MAGIC, WIRE_MAGIC

        with open(path, "rb") as probe:
            head = probe.read(max(len(MAGIC), len(WIRE_MAGIC)))
        format = (
            "binary"
            if head.startswith(MAGIC) or head.startswith(WIRE_MAGIC)
            else "json"
        )
    if format == "binary":
        with open(path, "rb") as fh:
            return index_from_bytes(fh.read())
    index = InvertedIndex()
    with open(path, "r", encoding="utf-8") as fh:
        header = json.loads(fh.readline())
        if header.get("format") != _FORMAT:
            raise ValueError(f"{path}: not a {_FORMAT} file")
        for line in fh:
            term, paths = json.loads(line)
            index._map[term] = PostingsList(paths)
        index._block_count = header.get("blocks", 0)
    if len(index) != header["terms"]:
        raise ValueError(
            f"{path}: header says {header['terms']} terms, "
            f"found {len(index)}"
        )
    return index


def save_multi_index(multi: MultiIndex, directory: str) -> None:
    """Write each replica of ``multi`` as ``replica-NNN.idx`` in a dir."""
    os.makedirs(directory, exist_ok=True)
    existing = [n for n in os.listdir(directory) if n.endswith(".idx")]
    if existing:
        raise FileExistsError(
            f"{directory} already contains index files: {existing[:3]}"
        )
    for i, replica in enumerate(multi.replicas):
        save_index(replica, os.path.join(directory, f"replica-{i:03d}.idx"))


def load_multi_index(directory: str) -> MultiIndex:
    """Read a directory written by :func:`save_multi_index`."""
    names = sorted(n for n in os.listdir(directory) if n.endswith(".idx"))
    if not names:
        raise FileNotFoundError(f"no .idx files in {directory}")
    replicas: List[InvertedIndex] = [
        load_index(os.path.join(directory, name)) for name in names
    ]
    return MultiIndex(replicas)
