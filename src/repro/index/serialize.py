"""Index persistence.

A desktop-search index must outlive the process; this module provides a
simple, dependency-free JSON-lines format:

* line 1: a header with a format tag and counts;
* every further line: one ``[term, [path, ...]]`` posting entry.

A :class:`~repro.index.multi.MultiIndex` is saved as one file per
replica inside a directory, so Implementation 3's unjoined output can
be persisted and searched later without ever paying the join.
"""

from __future__ import annotations

import json
import os
from typing import List

from repro.index.inverted import InvertedIndex
from repro.index.multi import MultiIndex
from repro.index.postings import PostingsList

_FORMAT = "repro-index-v1"


def save_index(index: InvertedIndex, path: str) -> None:
    """Write ``index`` to ``path`` in JSON-lines format."""
    with open(path, "w", encoding="utf-8") as fh:
        header = {
            "format": _FORMAT,
            "terms": len(index),
            "postings": index.posting_count,
            "blocks": index.block_count,
        }
        fh.write(json.dumps(header) + "\n")
        for term, postings in index.items():
            fh.write(json.dumps([term, postings.paths()]) + "\n")


def load_index(path: str) -> InvertedIndex:
    """Read an index previously written by :func:`save_index`."""
    index = InvertedIndex()
    with open(path, "r", encoding="utf-8") as fh:
        header = json.loads(fh.readline())
        if header.get("format") != _FORMAT:
            raise ValueError(f"{path}: not a {_FORMAT} file")
        for line in fh:
            term, paths = json.loads(line)
            index._map[term] = PostingsList(paths)
        index._block_count = header.get("blocks", 0)
    if len(index) != header["terms"]:
        raise ValueError(
            f"{path}: header says {header['terms']} terms, "
            f"found {len(index)}"
        )
    return index


def save_multi_index(multi: MultiIndex, directory: str) -> None:
    """Write each replica of ``multi`` as ``replica-NNN.idx`` in a dir."""
    os.makedirs(directory, exist_ok=True)
    existing = [n for n in os.listdir(directory) if n.endswith(".idx")]
    if existing:
        raise FileExistsError(
            f"{directory} already contains index files: {existing[:3]}"
        )
    for i, replica in enumerate(multi.replicas):
        save_index(replica, os.path.join(directory, f"replica-{i:03d}.idx"))


def load_multi_index(directory: str) -> MultiIndex:
    """Read a directory written by :func:`save_multi_index`."""
    names = sorted(n for n in os.listdir(directory) if n.endswith(".idx"))
    if not names:
        raise FileNotFoundError(f"no .idx files in {directory}")
    replicas: List[InvertedIndex] = [
        load_index(os.path.join(directory, name)) for name in names
    ]
    return MultiIndex(replicas)
