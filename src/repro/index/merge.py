"""Index joining — the "Join Forces" pattern (Implementation 2).

Each updater thread builds a private index replica; at the end the
replicas are merged.  Because every file's block went to exactly one
replica, the replicas' posting sets are disjoint per (term, file) pair
and the merge is a plain postings concatenation per term.

Two strategies, matching the paper's question "Would it be enough to
join the indices with a single thread, or should a parallel reduction
setup with multiple joining processes be used?":

* :func:`join_indices` — a single joiner folds all replicas into one;
* :func:`join_pairwise_tree` — a reduction tree that merges pairs level
  by level, optionally with real threads per level.
"""

from __future__ import annotations

import threading
from typing import List, Sequence

from repro.index.inverted import InvertedIndex
from repro.index.postings import PostingsList


def merge_into(
    target: InvertedIndex, source: InvertedIndex, copy: bool = False
) -> InvertedIndex:
    """Fold ``source`` into ``target`` (postings concatenated per term).

    With ``copy=False`` (the default), postings lists are *moved*: the
    target may alias the source's postings objects, so the source must
    not be used afterwards — this is the cheap path the reduction tree
    takes, since it discards its inputs.  Pass ``copy=True`` to leave
    the source untouched.

    Either way each term costs a single FNV hash and bucket probe
    (``insert_absent`` / ``get_or_insert``), not the get-then-set pair
    this loop used to pay.
    """
    target_map = target._map
    if copy:
        for term, postings in source.items():
            target_map.get_or_insert(term, PostingsList).extend(postings)
    else:
        for term, postings in source.items():
            existing = target_map.insert_absent(term, postings)
            if existing is not None:
                existing.extend(postings)
    target._block_count += source.block_count
    return target


def join_indices(replicas: Sequence[InvertedIndex]) -> InvertedIndex:
    """Single-joiner merge of all ``replicas`` into a fresh index.

    Non-destructive: the replicas remain valid (Implementation 3 users
    may join a snapshot while continuing to search the replicas).
    """
    result = InvertedIndex()
    for replica in replicas:
        merge_into(result, replica, copy=True)
    return result


def join_pairwise_tree(
    replicas: Sequence[InvertedIndex], threads_per_level: int = 1
) -> InvertedIndex:
    """Parallel-reduction merge: pair replicas and merge level by level.

    With ``threads_per_level > 1`` each level's pair merges run on real
    threads (bounded by the requested count).  Consumes the replicas:
    postings objects are moved, not copied.
    """
    if not replicas:
        return InvertedIndex()
    if threads_per_level < 1:
        raise ValueError("threads_per_level must be at least 1")
    level: List[InvertedIndex] = list(replicas)
    while len(level) > 1:
        pairs = [
            (level[i], level[i + 1]) for i in range(0, len(level) - 1, 2)
        ]
        carry = [level[-1]] if len(level) % 2 else []
        if threads_per_level == 1:
            merged = [merge_into(a, b) for a, b in pairs]
        else:
            merged = _merge_pairs_threaded(pairs, threads_per_level)
        level = merged + carry
    return level[0]


def _merge_pairs_threaded(pairs, thread_limit: int) -> List[InvertedIndex]:
    results: List[InvertedIndex] = [None] * len(pairs)  # type: ignore[list-item]
    semaphore = threading.Semaphore(thread_limit)

    def work(i: int, a: InvertedIndex, b: InvertedIndex) -> None:
        with semaphore:
            results[i] = merge_into(a, b)

    threads = [
        threading.Thread(target=work, args=(i, a, b), daemon=True)
        for i, (a, b) in enumerate(pairs)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results
