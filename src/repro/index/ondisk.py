"""Serving an RIDX2 index straight off ``mmap``.

The in-memory :class:`~repro.index.inverted.InvertedIndex` caps corpus
size at RAM and index-open time at full-file decode.
:class:`MmapPostingsReader` removes both limits for serving: opening an
RIDX2 file maps it and parses only the 73-byte header; terms are found
by binary search over the sorted on-disk lexicon (O(log B) record
probes, no lexicon materialization); postings are decoded one
fixed-size block at a time, on demand, through :class:`BlockCursor`.

A cursor is the document-at-a-time primitive: ``docid()`` / ``next()``
walk forward, and ``seek(target)`` advances to the first posting >=
``target`` using the block directory's ``last_docid`` keys to *skip*
whole blocks without decoding them.  The reader counts blocks read vs
skipped (also published as ``ondisk.blocks_read`` /
``ondisk.blocks_skipped`` counters), which is how the benchmark and the
CI smoke prove skipping actually happens.

Readers are single-threaded per cursor but cursors are independent;
the :class:`~repro.service.service.SearchService` integration gives
each query its own cursors over one shared read-only mapping, which the
OS page cache deduplicates across queries and processes.
"""

from __future__ import annotations

import mmap
import os
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Tuple

from repro.index.binfmt import (
    _OFF,
    RIDX2_CODEC_VARBYTE,
    RIDX2_DIR_ENTRY,
    IndexFormatError,
    decode_block_docids,
    decode_block_freqs,
    decode_varint,
    iter_ridx2_lexicon,
    parse_ridx2_header,
    read_ridx2_doc,
)
from repro.obs import recorder as obsrec

#: Sentinel doc id: past every real doc id (they are u32).
DONE = 1 << 32


class TermInfo:
    """One lexicon entry: where a term's postings live."""

    __slots__ = ("term", "df", "block_first", "block_count")

    def __init__(
        self, term: str, df: int, block_first: int, block_count: int
    ) -> None:
        self.term = term
        self.df = df
        self.block_first = block_first
        self.block_count = block_count

    def __repr__(self) -> str:
        return (
            f"TermInfo({self.term!r}, df={self.df}, "
            f"blocks={self.block_first}..{self.block_first + self.block_count})"
        )


class BlockCursor:
    """A forward iterator over one term's posting blocks.

    Decodes at most one block at a time; ``seek`` consults the
    directory's ``last_docid`` keys first, so blocks wholly below the
    target are skipped, never decoded.  Frequencies are decoded lazily
    per block, only when :meth:`freq` is called (boolean queries never
    pay for them).
    """

    __slots__ = (
        "_reader",
        "_entries",
        "_lasts",
        "_block",
        "_ids",
        "_freqs",
        "_pos",
        "_done",
    )

    def __init__(self, reader: "MmapPostingsReader", info: TermInfo) -> None:
        self._reader = reader
        self._entries = reader._directory_entries(info)
        self._lasts = [entry[1] for entry in self._entries]
        self._block = -1
        self._ids: List[int] = []
        self._freqs: Optional[List[int]] = None
        self._pos = 0
        self._done = False
        self._load_block(0)

    def docid(self) -> int:
        """The current doc id, or :data:`DONE` when exhausted."""
        return DONE if self._done else self._ids[self._pos]

    def freq(self) -> int:
        """The current posting's term frequency (decoded lazily)."""
        if self._done:
            raise IndexError("cursor is exhausted")
        if self._freqs is None:
            offset, _last, count, doc_bytes, freq_bytes, _codec = (
                self._entries[self._block]
            )
            self._freqs = decode_block_freqs(
                self._reader._mm,
                self._reader._header.blocks_off + offset + doc_bytes,
                count,
                freq_bytes,
            )
        return self._freqs[self._pos]

    def next(self) -> int:
        """Advance one posting; returns the new doc id (or DONE)."""
        if self._done:
            return DONE
        self._pos += 1
        if self._pos >= len(self._ids):
            self._load_block(self._block + 1)
        return self.docid()

    def seek(self, target: int) -> int:
        """Advance to the first posting >= ``target``; returns it.

        Already-positioned cursors are a no-op; block skipping happens
        here: every block whose ``last_docid`` is below the target is
        jumped over via the directory, without decoding.
        """
        if self._done or self._ids[self._pos] >= target:
            return self.docid()
        if target > self._lasts[self._block]:
            nxt = bisect_left(self._lasts, target, lo=self._block + 1)
            skipped = nxt - self._block - 1
            if skipped:
                self._reader._count_skipped(skipped)
            self._load_block(nxt)
            if self._done:
                return DONE
            self._pos = bisect_left(self._ids, target)
        else:
            self._pos = bisect_left(self._ids, target, lo=self._pos + 1)
        # A block's last_docid >= target guarantees an in-block match.
        return self._ids[self._pos]

    # -- internals --------------------------------------------------------

    def _load_block(self, block: int) -> None:
        if block >= len(self._entries):
            self._done = True
            self._ids = []
            self._freqs = None
            self._pos = 0
            return
        offset, _last, count, doc_bytes, _freq_bytes, codec = self._entries[
            block
        ]
        if codec != RIDX2_CODEC_VARBYTE:
            raise IndexFormatError(f"unknown RIDX2 block codec {codec}")
        reader = self._reader
        self._ids = decode_block_docids(
            reader._mm, reader._header.blocks_off + offset, count, doc_bytes
        )
        self._freqs = None
        self._pos = 0
        self._block = block
        reader._count_read(1)


class MmapPostingsReader:
    """Query-serving view of an RIDX2 file, backed by ``mmap``.

    Opening parses only the fixed-size header — postings, lexicon and
    doc table all stay on disk until a query touches them.  Use as a
    context manager or call :meth:`close`.
    """

    def __init__(self, path: str) -> None:
        with obsrec.span("ondisk.open", path=path):
            self.path = path
            self._file = open(path, "rb")
            try:
                size = os.fstat(self._file.fileno()).st_size
                if size == 0:
                    raise IndexFormatError(f"{path}: empty file")
                self._mm = mmap.mmap(
                    self._file.fileno(), 0, access=mmap.ACCESS_READ
                )
                self._header = parse_ridx2_header(self._mm)
            except Exception:
                self._file.close()
                raise
        self._paths: Optional[List[str]] = None
        self._doc_cache: Dict[int, Tuple[str, int]] = {}
        self.blocks_read = 0
        self.blocks_skipped = 0
        metrics = obsrec.metrics()
        self._read_counter = metrics.counter("ondisk.blocks_read")
        self._skip_counter = metrics.counter("ondisk.blocks_skipped")

    @classmethod
    def open(cls, path: str) -> "MmapPostingsReader":
        return cls(path)

    def close(self) -> None:
        if self._mm is not None:
            self._mm.close()
            self._file.close()
            self._mm = None

    def __enter__(self) -> "MmapPostingsReader":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- corpus statistics -------------------------------------------------

    @property
    def doc_count(self) -> int:
        return self._header.doc_count

    @property
    def term_count(self) -> int:
        return self._header.term_count

    @property
    def total_doc_len(self) -> int:
        """Sum of every document's length (term occurrences)."""
        return self._header.total_doc_len

    @property
    def average_document_length(self) -> float:
        return (
            self._header.total_doc_len / self._header.doc_count
            if self._header.doc_count
            else 0.0
        )

    @property
    def block_size(self) -> int:
        return self._header.block_size

    @property
    def has_freqs(self) -> bool:
        """True when real term frequencies were baked in at dump time."""
        return self._header.has_freqs

    # -- documents ---------------------------------------------------------

    def doc_path(self, doc_id: int) -> str:
        """The path of ``doc_id`` (decoded on demand, memoized)."""
        if self._paths is not None:
            return self._paths[doc_id]
        return self._doc(doc_id)[0]

    def doc_length(self, doc_id: int) -> int:
        """Term occurrences in ``doc_id``."""
        return self._doc(doc_id)[1]

    def doc_paths(self) -> List[str]:
        """Every indexed path in doc-id order == sorted-path order.

        Materializes the doc table once and caches it; queries that
        only return a few hits never need this.
        """
        if self._paths is None:
            self._paths = [
                read_ridx2_doc(self._mm, self._header, i)[0]
                for i in range(self._header.doc_count)
            ]
        return list(self._paths)

    # -- terms -------------------------------------------------------------

    def term_info(self, term: str) -> Optional[TermInfo]:
        """Binary-search the on-disk lexicon; None when absent."""
        probe = term.encode("utf-8")
        mm = self._mm
        header = self._header
        lo, hi = 0, header.term_count
        while lo < hi:
            mid = (lo + hi) // 2
            start = _u32_at(mm, header.lex_offsets_off + 4 * mid)
            offset = header.lex_data_off + start
            length, offset = decode_varint(mm, offset)
            found = bytes(mm[offset : offset + length])
            if found < probe:
                lo = mid + 1
            elif found > probe:
                hi = mid
            else:
                offset += length
                df, offset = decode_varint(mm, offset)
                block_first, offset = decode_varint(mm, offset)
                block_count, offset = decode_varint(mm, offset)
                return TermInfo(term, df, block_first, block_count)
        return None

    def __contains__(self, term: str) -> bool:
        return self.term_info(term) is not None

    def cursor(self, term: str) -> Optional[BlockCursor]:
        """A fresh posting cursor for ``term``; None when absent."""
        info = self.term_info(term)
        return BlockCursor(self, info) if info is not None else None

    def terms(self) -> Iterator[str]:
        """All terms in sorted order (sequential lexicon walk)."""
        for term, _df, _first, _count in iter_ridx2_lexicon(
            self._mm, self._header
        ):
            yield term

    def lookup(self, term: str) -> List[str]:
        """Paths containing ``term`` — the InvertedIndex-compatible
        entry point (decodes all of the term's blocks)."""
        cursor = self.cursor(term)
        if cursor is None:
            return []
        paths = []
        doc_id = cursor.docid()
        while doc_id < DONE:
            paths.append(self.doc_path(doc_id))
            doc_id = cursor.next()
        return paths

    def stats(self) -> Dict[str, int]:
        """Block-level I/O counters since open."""
        return {
            "ondisk.blocks_read": self.blocks_read,
            "ondisk.blocks_skipped": self.blocks_skipped,
        }

    def __repr__(self) -> str:
        return (
            f"MmapPostingsReader({self.path!r}, docs={self.doc_count}, "
            f"terms={self.term_count}, block_size={self.block_size})"
        )

    # -- internals --------------------------------------------------------

    def _doc(self, doc_id: int) -> Tuple[str, int]:
        record = self._doc_cache.get(doc_id)
        if record is None:
            record = read_ridx2_doc(self._mm, self._header, doc_id)
            self._doc_cache[doc_id] = record
        return record

    def _directory_entries(self, info: TermInfo):
        header = self._header
        start = header.dir_off + RIDX2_DIR_ENTRY.size * info.block_first
        end = start + RIDX2_DIR_ENTRY.size * info.block_count
        return list(RIDX2_DIR_ENTRY.iter_unpack(self._mm[start:end]))

    def _count_read(self, n: int) -> None:
        self.blocks_read += n
        self._read_counter.inc(n)

    def _count_skipped(self, n: int) -> None:
        self.blocks_skipped += n
        self._skip_counter.inc(n)


def _u32_at(mm, offset: int) -> int:
    return _OFF.unpack_from(mm, offset)[0]
