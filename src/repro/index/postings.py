"""Postings lists.

A postings list is the sequence of file paths a term occurs in.  The
en-bloc update discipline guarantees each file is appended at most once
per index, so the list needs no internal de-duplication — but
:meth:`PostingsList.contains` still offers the linear duplicate search
the paper's analysis talks about, for the naive update path.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional


class PostingsList:
    """An append-only list of file paths for one term."""

    __slots__ = ("_paths",)

    def __init__(self, paths: Optional[Iterable[str]] = None) -> None:
        self._paths: List[str] = list(paths) if paths is not None else []

    def append(self, path: str) -> None:
        """Append a file path without any duplicate check (en-bloc path)."""
        self._paths.append(path)

    def contains(self, path: str) -> bool:
        """Linear duplicate search — the cost the en-bloc design avoids."""
        return path in self._paths

    def extend(self, other: "PostingsList") -> None:
        """Append all of ``other``'s paths (used by index joins)."""
        self._paths.extend(other._paths)

    def remove(self, path: str) -> bool:
        """Remove one occurrence of ``path``; True if it was present.

        Linear, like :meth:`contains` — removal only happens on the
        incremental-maintenance path, never during bulk builds.
        """
        try:
            self._paths.remove(path)
            return True
        except ValueError:
            return False

    def paths(self) -> List[str]:
        """A copy of the stored paths, in insertion order."""
        return list(self._paths)

    def __iter__(self) -> Iterator[str]:
        return iter(self._paths)

    def __len__(self) -> int:
        return len(self._paths)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PostingsList):
            return NotImplemented
        return sorted(self._paths) == sorted(other._paths)

    def __repr__(self) -> str:
        return f"PostingsList({self._paths!r})"
