"""Command-line interface: ``repro-desktopsearch``.

Subcommands:

* ``generate-corpus`` — materialize a synthetic benchmark corpus on disk
  (optionally mixed-format);
* ``index`` — build an index over a directory with one of the three
  implementations (or sequentially) and optionally save it (JSON, the
  compact binary format, or blocked RIDX2 for ``.ridx2`` paths —
  RIDX2 additionally bakes in term frequencies for BM25);
* ``search`` — run a boolean/wildcard query against a saved index,
  optionally ranked (tf-idf or BM25 top-K) and optionally ``--ondisk``:
  an RIDX2 file is then served straight off ``mmap`` without loading
  postings into memory;
* ``serve`` — long-running query serving over a directory: a
  :class:`~repro.service.service.SearchService` answers a query stream
  concurrently while ``--watch`` refreshes the index in the background;
  with ``--ondisk`` the service queries an mmap'd RIDX2 file instead;
* ``refresh`` — incrementally update a saved index after file changes;
* ``simulate`` — run one configuration on a simulated platform;
* ``tune`` — auto-tune the thread configuration on a simulated platform;
* ``tables`` — regenerate the paper's Tables 1-4.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.autotune import (
    ConfigurationSpace,
    ExhaustiveSearch,
    HillClimbing,
    RandomSearch,
)
from repro.corpus import CorpusGenerator, PAPER_PROFILE, materialize
from repro.engine import Implementation, IndexGenerator, SequentialIndexer, ThreadConfig
from repro.experiments import (
    render_best_config_table,
    render_table1,
    run_best_config_table,
    run_table1,
)
from repro.fsmodel import OsFileSystem
from repro.index import (
    MultiIndex,
    load_index,
    load_multi_index,
    save_index,
    save_multi_index,
)
from repro.platforms import ALL_PLATFORMS, platform_by_name
from repro.query import QueryEngine
from repro.simengine import SimPipeline, Workload, WorkloadSpec


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if not hasattr(args, "func"):
        parser.print_help()
        return 2
    return args.func(args)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-desktopsearch",
        description="Parallel index generation for desktop search "
        "(reproduction of Meder & Tichy 2010)",
    )
    sub = parser.add_subparsers(title="commands")

    p = sub.add_parser("generate-corpus", help="write a synthetic corpus to disk")
    p.add_argument("destination", help="empty or missing target directory")
    p.add_argument(
        "--scale", type=float, default=0.01,
        help="fraction of the paper's 51,000-file / 869 MB benchmark "
        "(default 0.01)",
    )
    p.add_argument("--seed", type=int, default=42)
    p.add_argument(
        "--mixed", action="store_true",
        help="emit a mix of plain/HTML/Markdown/CSV/DocZ files instead of "
        "plain text only",
    )
    p.set_defaults(func=_cmd_generate_corpus)

    p = sub.add_parser("index", help="index a directory")
    p.add_argument("directory")
    p.add_argument(
        "--implementation", "-i", type=int, choices=(1, 2, 3), default=None,
        help="1=shared+locked, 2=replicated+joined, 3=replicated unjoined "
        "(default: 3, or 2 with --backend process)",
    )
    p.add_argument("-x", "--extractors", type=int, default=3)
    p.add_argument("-y", "--updaters", type=int, default=None,
                   help="updater threads (default: 2; fixed at 0 with "
                   "--backend process)")
    p.add_argument("-z", "--joiners", type=int, default=None,
                   help="joiner threads (default: 0, or 1 with "
                   "--backend process)")
    p.add_argument("--backend", choices=("thread", "process"),
                   default="thread",
                   help="run the (x, y, z) tuple on Python threads (the "
                   "paper's design) or on OS worker processes "
                   "(Implementation 2 only, GIL-free)")
    p.add_argument("--oversubscribe", action="store_true",
                   help="allow more worker processes than CPUs "
                   "(--backend process only)")
    p.add_argument("--sequential", action="store_true",
                   help="use the naive sequential baseline instead")
    p.add_argument("--save", help="file (impl 1/2) or directory (impl 3) "
                   "to save the index to")
    p.add_argument("--binary", action="store_true",
                   help="save in the compact binary format (impl 1/2 only)")
    p.add_argument("--formats", action="store_true",
                   help="extract text per file format (HTML, DocZ, ...) "
                   "before tokenizing")
    p.add_argument("--extractor", choices=("ascii", "code", "tsv"),
                   default="ascii",
                   help="extraction pipeline: 'ascii' (the paper's "
                   "tokenizer), 'code' (splits identifiers on camelCase "
                   "and snake_case), 'tsv' (indexes tab-separated "
                   "records line by line)")
    p.add_argument("--split-threshold", type=int, default=None,
                   metavar="BYTES",
                   help="chunk files larger than BYTES across workers "
                   "on separator boundaries (parallel builds only; "
                   "default: never split)")
    p.add_argument("--dynamic", choices=("steal", "queue"),
                   help="acquire work at runtime (work stealing or a "
                   "shared queue) instead of static round-robin vectors")
    p.add_argument("--on-error", choices=("strict", "skip"),
                   default="strict",
                   help="per-file error policy: 'strict' aborts the build "
                   "on the first unreadable file (default), 'skip' drops "
                   "the file, records it, and keeps building")
    p.add_argument("--max-retries", type=int, default=None,
                   help="times a batch whose worker crashed or timed out "
                   "is re-dispatched, split in half, before falling back "
                   "to in-parent indexing (--backend process only; "
                   "default 2)")
    p.add_argument("--batch-timeout", type=float, default=None,
                   help="seconds a dispatch round may run before its "
                   "unfinished batches count as hung and are retried "
                   "(--backend process only; default: no timeout)")
    _add_observability_args(p)
    p.set_defaults(func=_cmd_index)

    p = sub.add_parser("search", help="query a saved index")
    p.add_argument("index_path", help="an .idx/.ridx file or a replica "
                   "directory")
    p.add_argument("query", help='boolean query, e.g. "cat AND (dog* OR '
                   'NOT fox)"; a trailing * makes a term a prefix wildcard')
    p.add_argument("--parallel", action="store_true",
                   help="search replicas with one thread each")
    p.add_argument("--ranked", metavar="CORPUS_DIR",
                   help="tf-idf rank the hits, computing term frequencies "
                   "from the given corpus directory (with --rank bm25: "
                   "the frequency source for in-memory BM25)")
    p.add_argument("--ondisk", action="store_true",
                   help="serve the query straight off the mmap'd RIDX2 "
                   "file (no in-memory postings); index_path must be an "
                   "RIDX2 index")
    p.add_argument("--rank", choices=("bool", "bm25"), default="bool",
                   help="result ordering: plain sorted boolean match "
                   "(default) or BM25 top-K")
    p.add_argument("--topk", type=int, default=10,
                   help="number of BM25 hits to return (default 10)")
    _add_observability_args(p)
    p.set_defaults(func=_cmd_search)

    p = sub.add_parser(
        "serve",
        help="serve a stream of queries concurrently over a directory",
    )
    p.add_argument("directory", help="corpus directory to index and serve")
    p.add_argument("--index", metavar="PATH",
                   help="open this saved index instead of building one "
                   "(the directory is still used for --watch refreshes)")
    p.add_argument("--workers", type=int, default=2,
                   help="query worker threads (default 2)")
    p.add_argument("--max-inflight", type=int, default=32,
                   help="admission-control bound on queued+running "
                   "queries; excess queries are shed (default 32)")
    p.add_argument("--watch", type=float, metavar="SECONDS",
                   help="re-scan the directory every SECONDS and swap in "
                   "the refreshed index without stopping queries")
    p.add_argument("--queries", metavar="FILE",
                   help="newline-separated query file (default: stdin; "
                   "'#' lines are comments)")
    p.add_argument("--ondisk", action="store_true",
                   help="serve queries straight off the mmap'd RIDX2 file "
                   "given by --index (no in-memory postings; incompatible "
                   "with --watch)")
    p.add_argument("--rank", choices=("bool", "bm25"), default="bool",
                   help="answer queries with the boolean match (default) "
                   "or BM25 top-K (needs --ondisk)")
    p.add_argument("--topk", type=int, default=10,
                   help="number of BM25 hits per query (default 10)")
    p.add_argument("--compact-every", type=float, metavar="SECONDS",
                   help="run the background segment compactor every "
                   "SECONDS: refresh-sealed segments are folded back "
                   "down with layered k-way merges when the policy "
                   "says the manifest is due")
    p.add_argument("--fanin", type=int, default=4,
                   help="k-way merge width for segment compaction "
                   "(default 4)")
    p.add_argument("--max-segments", type=int, default=6,
                   help="compaction triggers once the manifest holds "
                   "more than this many segments (default 6)")
    p.add_argument("--compact-workers", type=int, default=0,
                   help="run compaction merges on a process pool of "
                   "this size (default 0 = in-process)")
    p.add_argument("--async", dest="async_frontend", action="store_true",
                   help="serve through the batched asyncio front end: "
                   "the whole query stream is submitted up front, "
                   "duplicate in-flight queries coalesce (single-"
                   "flight) and bursts are admitted batch-at-a-time "
                   "with one snapshot load each")
    p.add_argument("--batch-window", type=float, default=0.002,
                   metavar="SECONDS",
                   help="with --async: hold each admission flush open "
                   "this long so a burst accumulates into one batch "
                   "(default 0.002; 0 flushes immediately)")
    p.add_argument("--single-flight", dest="single_flight",
                   action="store_true", default=True,
                   help="with --async: coalesce duplicate in-flight "
                   "queries onto one evaluation (default)")
    p.add_argument("--no-single-flight", dest="single_flight",
                   action="store_false",
                   help="with --async: evaluate every query, even "
                   "duplicates")
    p.add_argument("--shards", type=int, default=0, metavar="N",
                   help="document-partition the corpus across N shard "
                   "services behind a scatter-gather broker: boolean "
                   "results merge by set-union, BM25 by a global "
                   "top-K heap-merge of shard-local scores "
                   "(incompatible with --watch, --ondisk and "
                   "--compact-every)")
    p.add_argument("--replicas", type=int, default=1,
                   help="with --shards: replicas per shard; the "
                   "broker rotates to the next replica when one "
                   "dies (default 1)")
    p.add_argument("--partial", choices=("degrade", "fail"),
                   default="degrade",
                   help="with --shards: once every replica of a "
                   "shard is dead, answer from the live shards and "
                   "mark the result degraded (default) or fail the "
                   "query with a typed error")
    p.add_argument("--shard-strategy",
                   choices=("roundrobin", "sizebalanced"),
                   default="roundrobin",
                   help="with --shards: how documents are assigned "
                   "to shards (default roundrobin)")
    _add_observability_args(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("analyze", help="print statistics of a saved index")
    p.add_argument("index_path", help="an .idx/.ridx file or a replica "
                   "directory")
    p.add_argument("--top", type=int, default=10,
                   help="number of heavy-hitter terms to list")
    _add_observability_args(p)
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser(
        "refresh",
        help="incrementally update a saved index after file changes",
    )
    p.add_argument("directory", help="the indexed corpus directory")
    p.add_argument("--index", required=True,
                   help="index file (.idx); created on first run")
    p.add_argument("--state", required=True,
                   help="snapshot state file (JSON); created on first run")
    _add_observability_args(p)
    p.set_defaults(func=_cmd_refresh)

    p = sub.add_parser("simulate", help="simulate one run on a paper platform")
    p.add_argument("--platform", default="quad-core",
                   choices=[pl.name for pl in ALL_PLATFORMS])
    p.add_argument("--implementation", "-i", type=int, choices=(1, 2, 3), default=3)
    p.add_argument("-x", "--extractors", type=int, default=3)
    p.add_argument("-y", "--updaters", type=int, default=2)
    p.add_argument("-z", "--joiners", type=int, default=0)
    p.add_argument("--sequential", action="store_true")
    p.add_argument("--scale", type=float, default=1.0,
                   help="workload scale relative to the paper benchmark")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("tune", help="auto-tune thread counts on a platform")
    p.add_argument("--platform", default="quad-core",
                   choices=[pl.name for pl in ALL_PLATFORMS])
    p.add_argument("--implementation", "-i", type=int, choices=(1, 2, 3), default=3)
    p.add_argument("--strategy", choices=("exhaustive", "random", "hill"),
                   default="hill")
    p.add_argument("--budget", type=int, default=40,
                   help="evaluation budget for random/hill strategies")
    p.set_defaults(func=_cmd_tune)

    p = sub.add_parser("tables", help="regenerate the paper's tables")
    p.add_argument("--fast", action="store_true",
                   help="coarser simulation and a narrower sweep (~6x faster)")
    p.add_argument("--markdown", metavar="FILE",
                   help="additionally write a paper-vs-measured markdown "
                   "report to FILE")
    p.set_defaults(func=_cmd_tables)

    return parser


def _add_observability_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace-out", metavar="PATH",
                   help="write a Chrome trace_event JSON of the run to "
                   "PATH (load it in chrome://tracing or "
                   "https://ui.perfetto.dev)")
    p.add_argument("--stats", action="store_true",
                   help="print per-stage timings, worker lanes and "
                   "throughput/cache metrics after the run")


def _observability_requested(args: argparse.Namespace) -> bool:
    """Enable global span recording when --trace-out/--stats ask for it."""
    if getattr(args, "trace_out", None) or getattr(args, "stats", False):
        from repro import obs

        obs.enable()
        return True
    return False


def _emit_observability(args: argparse.Namespace, report=None) -> None:
    """Write the trace file and/or print the --stats digest."""
    from repro import obs

    spans = obs.get_recorder().spans
    if getattr(args, "trace_out", None):
        written = obs.write_chrome_trace(args.trace_out, spans)
        print(f"trace written to {args.trace_out} "
              f"({len(spans)} spans, {written} bytes)", file=sys.stderr)
    if getattr(args, "stats", False):
        metrics = (
            report.metrics
            if report is not None and report.metrics
            else obs.metrics().snapshot()
        )
        print(obs.human_summary(spans, metrics))


def _config_from(args: argparse.Namespace) -> ThreadConfig:
    return ThreadConfig(
        args.extractors,
        args.updaters,
        args.joiners,
        backend=getattr(args, "backend", "thread"),
    )


def _resolve_index_defaults(args: argparse.Namespace) -> None:
    """Fill the -i/-y/-z defaults the chosen backend implies.

    The threaded default reproduces the CLI's historical behaviour
    (Implementation 3 at (3, 2, 0)); the process backend defaults to its
    only valid shape, Implementation 2 at (x, 0, 1).
    """
    process = args.backend == "process"
    if args.implementation is None:
        args.implementation = 2 if process else 3
    if args.updaters is None:
        args.updaters = 0 if process else 2
    if args.joiners is None:
        args.joiners = 1 if process else 0


def _cmd_generate_corpus(args: argparse.Namespace) -> int:
    profile = PAPER_PROFILE.scaled(args.scale)
    if args.seed != 42:
        from dataclasses import replace

        profile = replace(profile, seed=args.seed)
    print(f"generating {profile.file_count} files, "
          f"{profile.total_bytes / 1e6:.1f} MB ...")
    if args.mixed:
        from repro.formats.mixed import generate_mixed_corpus

        mixed = generate_mixed_corpus(profile)
        count = materialize(mixed.fs, args.destination)
        breakdown = ", ".join(
            f"{name}: {n}" for name, n in sorted(mixed.format_counts.items())
        )
        print(f"wrote {count} files under {args.destination} ({breakdown})")
    else:
        corpus = CorpusGenerator(profile).generate()
        count = materialize(corpus.fs, args.destination)
        print(f"wrote {count} files under {args.destination}")
    return 0


def _reject_incompatible_index_args(args: argparse.Namespace) -> Optional[str]:
    """Flag combinations that silently do nothing (or fail deep inside
    a constructor) are rejected up front with a clear message."""
    if args.backend == "thread":
        if args.oversubscribe:
            return ("--oversubscribe only applies to --backend process "
                    "(threads share one interpreter; there is no pool "
                    "to oversubscribe)")
        if args.max_retries is not None:
            return "--max-retries only applies to --backend process"
        if args.batch_timeout is not None:
            return "--batch-timeout only applies to --backend process"
    if args.backend == "process" and args.dynamic:
        return ("--dynamic is incompatible with --backend process: the "
                "process backend distributes work as static batches; "
                "use --backend thread for work stealing or a shared "
                "queue")
    if args.sequential and args.split_threshold is not None:
        return ("--split-threshold only applies to parallel builds "
                "(chunks are extracted concurrently; the sequential "
                "baseline reads files whole)")
    if args.split_threshold is not None and args.split_threshold < 1:
        return "--split-threshold must be at least 1 byte"
    return None


def _print_failure_summary(report) -> None:
    """Echo skipped files, retries and degradation to stderr."""
    if report.degraded:
        print("warning: process pool unavailable; build degraded to the "
              "threaded Implementation 2 engine", file=sys.stderr)
    if report.retries:
        print(f"warning: {report.retries} batch(es) re-dispatched after "
              "worker crashes or timeouts", file=sys.stderr)
    if not report.failures:
        return
    print(f"warning: skipped {len(report.failures)} file(s):",
          file=sys.stderr)
    shown = 10
    for failure in report.failures[:shown]:
        print(f"  {failure}", file=sys.stderr)
    if len(report.failures) > shown:
        print(f"  ... and {len(report.failures) - shown} more",
              file=sys.stderr)


def _cmd_index(args: argparse.Namespace) -> int:
    from repro.extract import get_extractor
    from repro.formats import default_registry

    conflict = _reject_incompatible_index_args(args)
    if conflict is not None:
        print(f"error: {conflict}", file=sys.stderr)
        return 2
    observing = _observability_requested(args)
    fs = OsFileSystem(args.directory)
    registry = default_registry() if args.formats else None
    extractor = get_extractor(args.extractor, registry=registry)
    if args.sequential:
        try:
            report = SequentialIndexer(
                fs, extractor=extractor, on_error=args.on_error
            ).build()
        except OSError as exc:
            print(f"error: build failed: {exc}", file=sys.stderr)
            return 1
    else:
        _resolve_index_defaults(args)
        implementation = Implementation(args.implementation)
        try:
            config = _config_from(args)
            config.validate_for(implementation)
            report = IndexGenerator(
                fs,
                extractor=extractor,
                split_threshold=args.split_threshold,
                dynamic=args.dynamic,
                oversubscribe=args.oversubscribe,
                on_error=args.on_error,
                max_retries=(
                    args.max_retries if args.max_retries is not None else 2
                ),
                batch_timeout=args.batch_timeout,
            ).build(implementation, config)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except OSError as exc:
            # Under --on-error strict an unreadable file aborts the
            # build; report it as a build failure, not a traceback.
            print(f"error: build failed: {exc}", file=sys.stderr)
            return 1
    _print_failure_summary(report)
    print(report.summary())
    if observing:
        _emit_observability(args, report)
    if args.save:
        if isinstance(report.index, MultiIndex):
            if args.binary:
                print("error: --binary supports single-index "
                      "implementations (1 and 2)", file=sys.stderr)
                return 2
            save_multi_index(report.index, args.save)
            print(f"index saved to {args.save}")
        elif not args.binary and args.save.lower().endswith(".ridx2"):
            # RIDX2 can carry real term frequencies and document
            # lengths; re-scan the corpus for them so BM25 served off
            # this file scores exactly like the in-memory ranker.
            from repro.query import FrequencyIndex

            frequencies = FrequencyIndex.from_fs(fs, extractor=extractor)
            written = save_index(
                report.index, args.save, format="ridx2",
                frequencies=frequencies,
            )
            print(f"index saved to {args.save} ({written} bytes, "
                  "RIDX2 with frequencies)")
        else:
            # --binary forces the compact encoding; otherwise the
            # extension decides (.ridx/.bin binary, .ridx2 blocked,
            # anything else JSON).
            written = save_index(
                report.index,
                args.save,
                format="binary" if args.binary else "auto",
            )
            print(f"index saved to {args.save} ({written} bytes)")
    return 0


def _load_any_index(path: str):
    import os

    if os.path.isdir(path):
        return load_multi_index(path)
    # load_index sniffs the leading bytes, so renamed files still load.
    return load_index(path)


def _print_ranked_hits(hits) -> None:
    for hit in hits:
        print(f"{hit.score:8.3f}  {hit.path}")
    print(f"-- {len(hits)} file(s)", file=sys.stderr)


def _cmd_search(args: argparse.Namespace) -> int:
    if args.topk < 1:
        print("error: --topk must be at least 1", file=sys.stderr)
        return 2
    observing = _observability_requested(args)

    if args.ondisk:
        from repro.index import IndexFormatError, MmapPostingsReader
        from repro.query.daat import DaatQueryEngine

        try:
            reader = MmapPostingsReader(args.index_path)
        except (IndexFormatError, OSError) as exc:
            print(f"error: --ondisk needs an RIDX2 index file: {exc}",
                  file=sys.stderr)
            return 2
        with reader:
            daat = DaatQueryEngine(reader)
            if args.rank == "bm25":
                _print_ranked_hits(
                    daat.search_bm25(args.query, topk=args.topk)
                )
            else:
                paths = daat.search(args.query, parallel=args.parallel)
                for path in paths:
                    print(path)
                print(f"-- {len(paths)} file(s)", file=sys.stderr)
            stats = reader.stats()
        print(f"-- blocks: {stats['ondisk.blocks_read']} read, "
              f"{stats['ondisk.blocks_skipped']} skipped", file=sys.stderr)
        if observing:
            _emit_observability(args)
        return 0

    index = _load_any_index(args.index_path)
    engine = QueryEngine(index)
    if args.rank == "bm25":
        from repro.query import BM25Ranker, FrequencyIndex, search_bm25

        if not args.ranked:
            print("error: in-memory BM25 needs term frequencies; pass "
                  "--ranked CORPUS_DIR (or use --ondisk against an RIDX2 "
                  "index with frequencies baked in)", file=sys.stderr)
            return 2
        frequencies = FrequencyIndex.from_fs(OsFileSystem(args.ranked))
        _print_ranked_hits(search_bm25(
            engine, BM25Ranker(frequencies), args.query,
            topk=args.topk, parallel=args.parallel,
        ))
        if observing:
            _emit_observability(args)
        return 0
    if args.ranked:
        from repro.query import FrequencyIndex, TfIdfRanker, search_ranked

        frequencies = FrequencyIndex.from_fs(OsFileSystem(args.ranked))
        hits = search_ranked(
            engine, TfIdfRanker(frequencies), args.query, parallel=args.parallel
        )
        _print_ranked_hits(hits)
        if observing:
            _emit_observability(args)
        return 0
    paths = engine.search(args.query, parallel=args.parallel)
    for path in paths:
        print(path)
    print(f"-- {len(paths)} file(s)", file=sys.stderr)
    if observing:
        _emit_observability(args)
    return 0


def _drive_async_frontend(frontend, texts, rank="bool", topk=10):
    """Run a query stream through the asyncio face, preserving order.

    All queries are in flight at once — this is what lets the frontend
    coalesce duplicates and batch admissions across the whole stream.
    Returns ``(text, result, error)`` triples in submission order.
    """
    import asyncio

    from repro.query.parser import ParseError
    from repro.service import ServiceOverloadedError, ShardDeadError

    async def run():
        tasks = [
            asyncio.ensure_future(
                frontend.query_async(text, rank=rank, topk=topk)
            )
            for text in texts
        ]
        outcomes = []
        for text, task in zip(texts, tasks):
            try:
                outcomes.append((text, await task, None))
            except (ParseError, ServiceOverloadedError, ShardDeadError,
                    ValueError) as exc:
                outcomes.append((text, None, exc))
        return outcomes

    return asyncio.run(run())


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.api import Search
    from repro.query.parser import ParseError
    from repro.service import ServiceOverloadedError, ShardDeadError

    if args.watch is not None and args.watch <= 0:
        print("error: --watch requires a positive interval in seconds",
              file=sys.stderr)
        return 2
    if args.workers < 1 or args.max_inflight < 1:
        print("error: --workers and --max-inflight must be at least 1",
              file=sys.stderr)
        return 2
    if args.topk < 1:
        print("error: --topk must be at least 1", file=sys.stderr)
        return 2
    if args.batch_window < 0:
        print("error: --batch-window must be non-negative",
              file=sys.stderr)
        return 2
    if args.shards:
        if args.shards < 2:
            print("error: --shards needs at least 2 shards (omit it "
                  "for a single-service deployment)", file=sys.stderr)
            return 2
        if args.replicas < 1:
            print("error: --replicas must be at least 1",
                  file=sys.stderr)
            return 2
        if args.watch:
            print("error: --shards serves an immutable document "
                  "partition; --watch cannot refresh it (rebuild and "
                  "restart instead)", file=sys.stderr)
            return 2
        if args.ondisk:
            print("error: --shards partitions the in-memory index; "
                  "--ondisk is the single-file mmap serving path",
                  file=sys.stderr)
            return 2
        if args.compact_every is not None:
            print("error: --shards serves an immutable document "
                  "partition; --compact-every cannot restructure it",
                  file=sys.stderr)
            return 2
    if args.ondisk:
        if not args.index:
            print("error: --ondisk needs --index pointing at an RIDX2 "
                  "file", file=sys.stderr)
            return 2
        if args.watch:
            print("error: --ondisk serves an immutable mmap'd file; "
                  "--watch cannot refresh it (rebuild and restart "
                  "instead)", file=sys.stderr)
            return 2
    elif args.rank == "bm25" and not args.shards:
        print("error: --rank bm25 under serve needs --ondisk (BM25 is "
              "scored from the RIDX2 file's frequencies) or --shards "
              "(scored from per-shard frequencies)", file=sys.stderr)
        return 2
    if args.compact_every is not None:
        if args.compact_every <= 0:
            print("error: --compact-every requires a positive interval "
                  "in seconds", file=sys.stderr)
            return 2
        if args.ondisk:
            print("error: --ondisk serves an immutable mmap'd file; "
                  "--compact-every cannot restructure it", file=sys.stderr)
            return 2
    if args.fanin < 2 or args.max_segments < 1 or args.compact_workers < 0:
        print("error: --fanin must be >= 2, --max-segments >= 1 and "
              "--compact-workers >= 0", file=sys.stderr)
        return 2
    observing = _observability_requested(args)

    reader = None
    if args.ondisk:
        from repro.index import IndexFormatError, MmapPostingsReader
        from repro.service import SearchService
        from repro.service.snapshot import IndexSnapshot

        try:
            reader = MmapPostingsReader(args.index)
        except (IndexFormatError, OSError) as exc:
            print(f"error: --ondisk needs an RIDX2 index file: {exc}",
                  file=sys.stderr)
            return 2
        snapshot = IndexSnapshot.from_ondisk(reader)
        # Behind --async the frontend evaluates; the service keeps one
        # worker only for completeness.
        service_cm = SearchService(
            snapshot,
            workers=1 if args.async_frontend else args.workers,
            max_inflight=args.max_inflight,
        )
        print(f"serving {reader.doc_count} file(s) off mmap "
              f"({reader.term_count} terms) with {args.workers} worker(s)",
              file=sys.stderr)
    session = None
    if not args.ondisk:
        if args.index:
            session = Search.open(args.index, source=args.directory)
        else:
            session = Search.build(args.directory)
        if args.shards:
            service_cm = session.serve_sharded(
                shards=args.shards,
                replicas=args.replicas,
                strategy=args.shard_strategy,
                partial=args.partial,
                workers=1 if args.async_frontend else args.workers,
                max_inflight=args.max_inflight,
                bm25=(args.rank == "bm25"),
            )
            print(f"serving {len(session)} file(s) across "
                  f"{args.shards} shard(s) x {args.replicas} "
                  f"replica(s), partial={args.partial}",
                  file=sys.stderr)
        else:
            service_cm = session.serve(
                workers=1 if args.async_frontend else args.workers,
                max_inflight=args.max_inflight,
            )
            print(f"serving {len(session)} file(s) with {args.workers} "
                  f"worker(s)", file=sys.stderr)

    stream = (
        open(args.queries, "r", encoding="utf-8")
        if args.queries
        else sys.stdin
    )
    served = failed = 0
    compactor = None
    try:
        with service_cm as service:
            if args.watch:
                service.start_watch(args.watch)
            if args.compact_every and session is not None:
                from repro.index.segments import CompactionPolicy

                compactor = session.start_compactor(
                    args.compact_every,
                    policy=CompactionPolicy(
                        fanin=args.fanin, max_segments=args.max_segments
                    ),
                    workers=args.compact_workers,
                )
            frontend = None
            if args.async_frontend:
                from repro.service import AsyncSearchFrontend

                frontend = AsyncSearchFrontend(
                    service,
                    batch_window=args.batch_window,
                    single_flight=args.single_flight,
                    workers=args.workers,
                    max_inflight=args.max_inflight,
                )
            try:
                def run_one(text):
                    return service.query(text, rank=args.rank,
                                         topk=args.topk)

                def emit(text, result):
                    print(f"[gen {result.generation}] {text} "
                          f"-> {len(result)} file(s)")
                    if result.hits is not None:
                        for hit in result.hits:
                            print(f"  {hit.score:8.3f}  {hit.path}")
                    else:
                        for path in result:
                            print(f"  {path}")

                texts = [
                    text for text in (line.strip() for line in stream)
                    if text and not text.startswith("#")
                ]
                if frontend is not None:
                    outcomes = _drive_async_frontend(
                        frontend, texts, rank=args.rank, topk=args.topk
                    )
                else:
                    outcomes = []
                    for text in texts:
                        try:
                            outcomes.append((text, run_one(text), None))
                        except (ParseError, ServiceOverloadedError,
                                ShardDeadError, ValueError) as exc:
                            outcomes.append((text, None, exc))
                for text, result, error in outcomes:
                    if error is not None:
                        print(f"error: {text}: {error}", file=sys.stderr)
                        failed += 1
                        continue
                    emit(text, result)
                    served += 1
            finally:
                if frontend is not None:
                    frontend.close()
                if stream is not sys.stdin:
                    stream.close()
        stats = service.stats()
        if args.shards:
            print(f"-- served {served} query(ies), {failed} failed; "
                  f"shards {stats['broker.shards_ok']:.0f}/"
                  f"{stats['broker.shards_total']:.0f} alive, "
                  f"{stats['broker.degraded']:.0f} degraded, "
                  f"{stats['broker.shed']:.0f} shed, "
                  f"{stats['broker.failed']:.0f} dead-shard "
                  f"failure(s)", file=sys.stderr)
        else:
            print(f"-- served {served} query(ies), {failed} failed; "
                  f"generation {stats['service.generation']:.0f}, "
                  f"shed {stats['service.shed']:.0f}", file=sys.stderr)
        if frontend is not None:
            fstats = frontend.stats()
            print(f"-- frontend: {fstats['frontend.batches']:.0f} "
                  f"batch(es), {fstats['frontend.coalesced']:.0f} "
                  f"coalesced, {fstats['frontend.shed']:.0f} shed, "
                  f"{fstats['frontend.evaluations']:.0f} evaluation(s)",
                  file=sys.stderr)
        if reader is not None:
            io_stats = reader.stats()
            print(f"-- blocks: {io_stats['ondisk.blocks_read']} read, "
                  f"{io_stats['ondisk.blocks_skipped']} skipped",
                  file=sys.stderr)
        if session is not None:
            manifest = session.manifest
            print(f"-- segments: {manifest.segment_count}, "
                  f"tombstones {len(manifest.tombstones)}, "
                  f"generation {manifest.generation}", file=sys.stderr)
    finally:
        if compactor is not None:
            compactor.stop()
        if reader is not None:
            reader.close()
    if observing:
        _emit_observability(args)
    return 0 if failed == 0 else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.index.analysis import (
        analyze,
        estimate_memory_bytes,
        postings_histogram,
        top_terms,
    )

    observing = _observability_requested(args)
    index = _load_any_index(args.index_path)
    stats = analyze(index)
    print(f"terms:            {stats.term_count}")
    print(f"postings:         {stats.posting_count}")
    print(f"postings/term:    mean {stats.mean_postings:.2f}, "
          f"median {stats.median_postings:.1f}, max {stats.max_postings}")
    print(f"singleton terms:  {stats.singleton_terms} "
          f"({stats.singleton_fraction:.0%})")
    print(f"est. memory:      {estimate_memory_bytes(index) / 1e6:.2f} MB")
    print(f"top {args.top} terms by document frequency:")
    for term, count in top_terms(index, args.top):
        print(f"  {count:>8}  {term}")
    print("postings-length histogram (log2 buckets):")
    for low, high, count in postings_histogram(index):
        label = f"{low}..{high}" if high != -1 else f"{low}+"
        print(f"  {label:>12}: {count}")
    if observing:
        _emit_observability(args)
    return 0


def _cmd_refresh(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.index import IncrementalIndexer
    from repro.index.incremental import IncrementalIndex

    observing = _observability_requested(args)
    fs = OsFileSystem(args.directory)
    if os.path.exists(args.index) and os.path.exists(args.state):
        index = IncrementalIndex.from_inverted(load_index(args.index))
        with open(args.state, "r", encoding="utf-8") as fh:
            snapshot = {
                path: tuple(entry) for path, entry in json.load(fh).items()
            }
        indexer = IncrementalIndexer(fs, index=index, snapshot=snapshot)
    else:
        indexer = IncrementalIndexer(fs)

    report = indexer.refresh()
    print(f"refresh: +{len(report.added)} added, "
          f"-{len(report.removed)} removed, "
          f"~{len(report.modified)} modified")

    if os.path.exists(args.index):
        os.remove(args.index)
    save_index(indexer.index.index, args.index)
    with open(args.state, "w", encoding="utf-8") as fh:
        json.dump({p: list(e) for p, e in indexer.snapshot.items()}, fh)
    print(f"index: {args.index}, state: {args.state}")
    if observing:
        _emit_observability(args)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    platform = platform_by_name(args.platform)
    workload = _workload_at_scale(args.scale)
    pipeline = SimPipeline(platform, workload)
    if args.sequential:
        result = pipeline.run_sequential()
    else:
        implementation = Implementation(args.implementation)
        config = _config_from(args)
        try:
            config.validate_for(implementation)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        result = pipeline.run(implementation, config)
    print(result.summary())
    print(f"  disk utilization {result.disk_utilization:.0%}, "
          f"cpu utilization {result.cpu_utilization:.0%}")
    if result.lock_acquires:
        print(f"  index lock: {result.lock_acquires} acquires, "
              f"{result.lock_contended} contended, "
              f"{result.lock_wait_s:.1f}s total wait")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    platform = platform_by_name(args.platform)
    implementation = Implementation(args.implementation)
    workload = _workload_at_scale(1.0)
    pipeline = SimPipeline(platform, workload)
    space = ConfigurationSpace(implementation)
    strategies = {
        "exhaustive": ExhaustiveSearch(),
        "random": RandomSearch(budget=args.budget),
        "hill": HillClimbing(restarts=3, budget=args.budget),
    }
    result = strategies[args.strategy].run(
        space, lambda config: pipeline.run(implementation, config).total_s
    )
    print(f"{implementation.paper_name} on {platform.name}: "
          f"best {result.best_config} -> {result.best_value:.1f}s "
          f"({result.evaluations} evaluations)")
    for config, value in result.top(5):
        print(f"  {config}: {value:.1f}s")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    workload = _workload_at_scale(1.0)
    sweep = (
        dict(max_extractors=8, max_updaters=4, batches_per_extractor=60)
        if args.fast
        else {}
    )
    table1_rows = run_table1(workload)
    print(render_table1(table1_rows))
    results = {"table1": table1_rows}
    for platform in ALL_PLATFORMS:
        table = run_best_config_table(platform, workload, **sweep)
        results[platform.name] = table
        print()
        print(render_best_config_table(table))
    if args.markdown:
        from repro.experiments import comparison_report

        with open(args.markdown, "w", encoding="utf-8") as fh:
            fh.write(comparison_report(results) + "\n")
        print(f"\nmarkdown report written to {args.markdown}")
    return 0


def _workload_at_scale(scale: float) -> Workload:
    if scale == 1.0:
        return Workload.synthesize()
    profile = PAPER_PROFILE.scaled(scale)
    return Workload.synthesize(WorkloadSpec(profile=profile))


if __name__ == "__main__":
    sys.exit(main())
