"""The platform parameter set.

Times are in seconds *on that platform* (Table 1 already includes each
machine's clock speed and compiler, so CPU costs are calibrated as
platform-seconds rather than cycles).  Disk bandwidths are in MB/s
(10^6 bytes per second, matching the paper's "869 MB").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PlatformProfile:
    """Everything the simulator knows about one machine.

    Calibrated fields (from Table 1 and the sequential totals):

    * ``filename_gen_s`` — stage 1 time;
    * ``per_stream_mbps`` — single-stream read bandwidth, derived from
      the "read files" time net of seeks;
    * ``scan_cpu_s`` — total term-extraction CPU ("read and extract"
      minus "read files");
    * ``update_prep_s`` / ``update_critical_s`` — the en-bloc "index
      update" time, split into the part a shared-index design can do
      outside the lock (hashing, allocation) and the part that must be
      serialized (bucket mutation);
    * ``naive_update_s`` — the sequential baseline's per-occurrence
      update cost (sequential total minus the other stages).

    Fitted fields (not directly observable in the paper):

    * ``aggregate_mbps`` — disk bandwidth ceiling for concurrent streams;
    * ``read_cpu_fraction`` — CPU consumed per second of reading
      (syscalls, copies) which keeps extractor threads off the disk;
    * ``shared_coherence`` — per-extra-sharer inflation of the shared
      index's critical section (cache-line ping-pong);
    * ``lock_op_us`` / ``buffer_op_us`` — fixed cost of a lock pair and
      of a buffer put/get;
    * ``lock_handoff_us`` — per-block cost paid *inside* the shared
      index's critical section when the lock changes hands (futex wake,
      cache-line transfer, convoy effects); unlike ``lock_op_us`` it is
      serialized, which is what keeps Implementation 1 slow even at low
      thread counts on the 8- and 32-core machines;
    * ``join_mpairs_per_s`` — postings merged per second during joins.
    """

    name: str
    cores: int
    clock_ghz: float
    # calibrated from the paper
    filename_gen_s: float
    per_stream_mbps: float
    scan_cpu_s: float
    update_prep_s: float
    update_critical_s: float
    naive_update_s: float
    sequential_total_s: float
    # fitted
    aggregate_mbps: float
    read_cpu_fraction: float
    shared_coherence: float
    lock_op_us: float
    buffer_op_us: float
    join_mpairs_per_s: float
    seek_ms: float = 0.05
    disk_thrash: float = 0.0
    lock_handoff_us: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be at least 1")
        if self.per_stream_mbps <= 0 or self.aggregate_mbps <= 0:
            raise ValueError("disk bandwidths must be positive")
        if self.aggregate_mbps < self.per_stream_mbps:
            raise ValueError(
                "aggregate bandwidth cannot be below single-stream bandwidth"
            )
        if not 0 <= self.read_cpu_fraction < 1:
            raise ValueError("read_cpu_fraction must be in [0, 1)")
        if self.shared_coherence < 0:
            raise ValueError("shared_coherence cannot be negative")

    @property
    def update_total_s(self) -> float:
        """Table 1's en-bloc "index update" time."""
        return self.update_prep_s + self.update_critical_s

    def coherence_multiplier(self, sharers: int) -> float:
        """Critical-section inflation when ``sharers`` threads touch the
        shared index's cache lines."""
        return 1.0 + self.shared_coherence * max(0, sharers - 1)

    def seek_multiplier(self, streams: int) -> float:
        """Seek-cost inflation with ``streams`` concurrent readers.

        Concurrent streams destroy the head locality a single sequential
        reader enjoys, so per-file positioning gets more expensive the
        more extractors read at once.  This is what makes the optimal
        extractor count an interior point rather than "as many as
        possible", as the paper observed on all three machines.
        """
        return 1.0 + self.disk_thrash * max(0, streams - 1)
