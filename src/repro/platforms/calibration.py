"""Deriving platform profiles from measurements — "more platforms".

The paper's future work includes running on more platforms.  This
module packages the calibration procedure used for the three built-in
machines so a new platform needs only the paper's own methodology:

1. measure the four Table-1 stage times and the sequential total on the
   target machine (the real engine's
   :func:`repro.engine.runner.measure_stage_times` produces exactly
   these four numbers);
2. call :func:`derive_profile` with them plus the machine's core count
   and clock;
3. optionally tune the fitted contention parameters against observed
   parallel runs (they default to mid-range values).

:func:`hypothetical` additionally spins variants of an existing profile
(different core counts, faster disks) for what-if studies like the
core-count scaling benchmark.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.platforms.profile import PlatformProfile

_MB = 1_000_000.0


@dataclass(frozen=True)
class StageMeasurements:
    """The five measured inputs of a calibration (all in seconds)."""

    filename_generation: float
    read_files: float
    read_and_extract: float
    index_update: float
    sequential_total: float

    def __post_init__(self) -> None:
        if self.read_and_extract < self.read_files:
            raise ValueError(
                "read+extract cannot be faster than reading alone"
            )
        if min(
            self.filename_generation,
            self.read_files,
            self.index_update,
            self.sequential_total,
        ) <= 0:
            raise ValueError("all measurements must be positive")


def derive_profile(
    name: str,
    cores: int,
    clock_ghz: float,
    measurements: StageMeasurements,
    corpus_megabytes: float = 869.0,
    file_count: int = 51_000,
    seek_ms: float = 0.05,
    read_cpu_fraction: float = 0.10,
    # fitted parameters: mid-range defaults, tune against parallel runs
    aggregate_ratio: float = 2.0,
    shared_coherence: float = 0.3,
    lock_op_us: float = 10.0,
    lock_handoff_us: float = 100.0,
    buffer_op_us: float = 30.0,
    join_mpairs_per_s: float = 5.0,
    disk_thrash: float = 0.2,
    description: str = "",
) -> PlatformProfile:
    """Build a :class:`PlatformProfile` from stage measurements.

    The derivations mirror ``repro.platforms.calibrated``:
    single-stream bandwidth comes from the read time net of seeks and
    inflated by the read-CPU share; scan CPU is the read+extract delta;
    the en-bloc update splits evenly into preparation and critical
    work; the naive sequential update is the residual of the
    sequential total.
    """
    if cores < 1:
        raise ValueError("cores must be at least 1")
    seeks_s = file_count * seek_ms / 1000.0
    transfer_s = measurements.read_files - seeks_s
    if transfer_s <= 0:
        raise ValueError(
            "seek time exceeds the whole read time; lower seek_ms"
        )
    per_stream = corpus_megabytes * (1.0 + read_cpu_fraction) / transfer_s

    scan_cpu = measurements.read_and_extract - measurements.read_files
    naive = measurements.sequential_total - (
        measurements.filename_generation + measurements.read_and_extract
    )
    if naive <= 0:
        raise ValueError(
            "sequential total is not larger than the stage sum; "
            "measure the naive sequential implementation"
        )
    return PlatformProfile(
        name=name,
        cores=cores,
        clock_ghz=clock_ghz,
        description=description,
        filename_gen_s=measurements.filename_generation,
        per_stream_mbps=round(per_stream, 2),
        scan_cpu_s=scan_cpu,
        update_prep_s=measurements.index_update / 2.0,
        update_critical_s=measurements.index_update / 2.0,
        naive_update_s=naive,
        sequential_total_s=measurements.sequential_total,
        aggregate_mbps=round(per_stream * max(1.0, aggregate_ratio), 2),
        read_cpu_fraction=read_cpu_fraction,
        shared_coherence=shared_coherence,
        lock_op_us=lock_op_us,
        lock_handoff_us=lock_handoff_us,
        buffer_op_us=buffer_op_us,
        join_mpairs_per_s=join_mpairs_per_s,
        seek_ms=seek_ms,
        disk_thrash=disk_thrash,
    )


def hypothetical(base: PlatformProfile, name: str = "", **overrides) -> PlatformProfile:
    """A variant of ``base`` with fields overridden (what-if studies).

    Example: ``hypothetical(MANYCORE_32, cores=64)`` asks how the
    paper's 32-core machine would behave with twice the cores and the
    same disk — the question behind the scaling benchmark.
    """
    if not name:
        parts = [f"{key}={value}" for key, value in sorted(overrides.items())]
        name = f"{base.name}[{', '.join(parts)}]"
    return dataclasses.replace(base, name=name, **overrides)
