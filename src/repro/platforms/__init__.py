"""Platform models of the paper's three Intel machines.

A :class:`PlatformProfile` collects everything the simulator needs to
behave like one machine: core count, disk bandwidths, per-stage CPU
costs, and contention coefficients.  The three calibrated profiles in
:mod:`repro.platforms.calibrated` are derived directly from the paper's
Table 1 stage times and sequential totals; the handful of parameters
Table 1 does not pin down (aggregate disk bandwidth, cache-coherence
penalty, join rate) are fitted so the configuration sweep lands on the
paper's Tables 2-4.
"""

from repro.platforms.calibrated import (
    ALL_PLATFORMS,
    MANYCORE_32,
    OCTO_CORE,
    QUAD_CORE,
    platform_by_name,
)
from repro.platforms.calibration import (
    StageMeasurements,
    derive_profile,
    hypothetical,
)
from repro.platforms.profile import PlatformProfile

__all__ = [
    "ALL_PLATFORMS",
    "MANYCORE_32",
    "OCTO_CORE",
    "PlatformProfile",
    "QUAD_CORE",
    "StageMeasurements",
    "derive_profile",
    "hypothetical",
    "platform_by_name",
]
