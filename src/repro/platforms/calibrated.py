"""The three calibrated platforms.

Derivations from the paper (benchmark: 51,000 files, 869 MB):

========================  ========  ========  =========
quantity                  4-core    8-core    32-core
========================  ========  ========  =========
filename generation (s)     5.0       4.0       5.0
read files (s)             77.0      47.0      73.0
read + extract (s)         88.0      61.0      80.0
index update (s)           22.0      29.0      28.0
sequential total (s)      220.0     105.0      90.0
========================  ========  ========  =========

* per-stream bandwidth = 869 MB / (read time − seek time), with seeks
  at 0.05 ms × 51,000 files ≈ 2.55 s;
* scan CPU = read+extract − read;
* en-bloc update = Table 1's index update, split 50/50 into
  parallelizable preparation and lock-serialized mutation;
* naive update = sequential total − filename generation − read+extract.
  (On the 32-core machine this comes out *smaller* than the en-bloc
  update — an internal inconsistency of the paper's Table 1 vs. its
  quoted sequential totals, almost certainly OS-cache state; we keep
  the value because the speed-ups of Table 4 are quoted against it.)

The fitted fields (aggregate bandwidth, coherence, lock/buffer costs,
join rate) were chosen by sweeping the full configuration space and
matching Tables 2-4; see ``benchmarks/`` and EXPERIMENTS.md for the
resulting paper-vs-simulated comparison.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.platforms.profile import PlatformProfile

QUAD_CORE = PlatformProfile(
    name="quad-core",
    cores=4,
    clock_ghz=2.4,
    description="Intel Core2Quad Q6600, 2.4 GHz, 4 GB RAM, Windows 7 64 bit",
    filename_gen_s=5.0,
    per_stream_mbps=12.84,  # 869 * 1.10 / (77.0 - 2.55), see CostModel.read_cpu
    scan_cpu_s=11.0,  # 88 - 77
    update_prep_s=11.0,
    update_critical_s=11.0,
    naive_update_s=127.0,  # 220 - 5 - 88
    sequential_total_s=220.0,
    aggregate_mbps=23.0,
    read_cpu_fraction=0.10,
    shared_coherence=0.20,
    lock_op_us=8.0,
    buffer_op_us=25.0,
    join_mpairs_per_s=60.0,
    disk_thrash=0.13,
    lock_handoff_us=40.0,
)

OCTO_CORE = PlatformProfile(
    name="octo-core",
    cores=8,
    clock_ghz=1.86,
    description="Intel Xeon E5320, 1.86 GHz, 8 GB RAM, Ubuntu 8.10 64 bit",
    filename_gen_s=4.0,
    per_stream_mbps=21.65,  # 869 * 1.12 / (47.0 - 2.04)
    scan_cpu_s=14.0,  # 61 - 47
    update_prep_s=14.5,
    update_critical_s=14.5,
    naive_update_s=40.0,  # 105 - 4 - 61
    sequential_total_s=105.0,
    # A single stream nearly saturates this disk: parallel reads barely
    # help, which is why the 8-core machine's best speed-up is only ~2.
    aggregate_mbps=22.5,
    read_cpu_fraction=0.12,
    # FSB-based Clovertown: cache lines bounce through the front-side
    # bus, so the shared index's critical section degrades quickly.
    shared_coherence=0.60,
    lock_op_us=12.0,
    buffer_op_us=30.0,
    join_mpairs_per_s=2.3,
    seek_ms=0.04,
    disk_thrash=0.48,
    lock_handoff_us=150.0,
)

MANYCORE_32 = PlatformProfile(
    name="manycore-32",
    cores=32,
    clock_ghz=2.27,
    description="Intel Xeon X7560, 2.27 GHz, 8 GB RAM, RHEL 4 64 bit "
    "(Intel Manycore Testing Lab)",
    filename_gen_s=5.0,
    per_stream_mbps=13.57,  # 869 * 1.10 / (73.0 - 2.55)
    scan_cpu_s=7.0,  # 80 - 73
    update_prep_s=14.0,
    update_critical_s=14.0,
    naive_update_s=5.0,  # 90 - 5 - 80 (see module docstring)
    sequential_total_s=90.0,
    aggregate_mbps=46.5,
    read_cpu_fraction=0.10,
    shared_coherence=0.155,
    lock_op_us=10.0,
    buffer_op_us=28.0,
    join_mpairs_per_s=2.0,
    seek_ms=0.05,
    disk_thrash=0.08,
    lock_handoff_us=220.0,
)

ALL_PLATFORMS: Tuple[PlatformProfile, ...] = (QUAD_CORE, OCTO_CORE, MANYCORE_32)

_BY_NAME: Dict[str, PlatformProfile] = {p.name: p for p in ALL_PLATFORMS}


def platform_by_name(name: str) -> PlatformProfile:
    """Look up a calibrated platform by its name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown platform {name!r}; known: {known}") from None
