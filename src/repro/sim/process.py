"""Simulated process records."""

from __future__ import annotations

import enum
from typing import Generator, Optional


class ProcessState(enum.Enum):
    """Lifecycle of a simulated process."""

    READY = "ready"
    RUNNING = "running"  # active inside a fair-share resource
    BLOCKED = "blocked"  # waiting on a lock, buffer, barrier or timer
    FINISHED = "finished"


class Process:
    """A simulated thread: a generator plus bookkeeping.

    ``finish_time`` is the virtual time the generator returned;
    ``blocked_time`` accumulates time spent waiting on locks, buffers
    and barriers (not on resources), which the experiment reports use to
    attribute slowdowns to contention.
    """

    __slots__ = (
        "name",
        "generator",
        "state",
        "started_at",
        "finish_time",
        "blocked_time",
        "_blocked_since",
    )

    def __init__(self, name: str, generator: Generator, started_at: float) -> None:
        self.name = name
        self.generator = generator
        self.state = ProcessState.READY
        self.started_at = started_at
        self.finish_time: Optional[float] = None
        self.blocked_time = 0.0
        self._blocked_since: Optional[float] = None

    def mark_blocked(self, now: float) -> None:
        """Record the start of a blocking wait."""
        self.state = ProcessState.BLOCKED
        self._blocked_since = now

    def mark_unblocked(self, now: float) -> None:
        """Record the end of a blocking wait, accumulating the span."""
        if self._blocked_since is not None:
            self.blocked_time += now - self._blocked_since
            self._blocked_since = None
        self.state = ProcessState.READY

    def __repr__(self) -> str:
        return f"Process({self.name!r}, {self.state.value})"
