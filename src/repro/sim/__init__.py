"""A discrete-event simulator for multicore execution.

This is the substitution for the hardware we do not have: the paper's
4-, 8- and 32-core Intel machines.  The simulator executes
generator-based *processes* (simulated threads) against *fluid*
processor-sharing resources:

* a CPU with ``cores`` cores — when more processes compute than there
  are cores, each advances at ``cores / runnable`` of full speed (OS
  time slicing);
* a disk whose streams share an aggregate bandwidth under a per-stream
  cap — the two regimes behind the paper's platforms (a disk one reader
  already saturates vs. one with parallel headroom);
* FIFO locks with contention accounting, bounded buffers with close
  semantics, and barriers.

Processes yield request objects (:class:`Use`, :class:`Delay`,
:class:`Acquire`, :class:`Release`, :class:`Put`, :class:`Get`,
:class:`Close`, :class:`WaitBarrier`); the :class:`Kernel` advances
virtual time to the next completion and resumes them.  Everything is
deterministic: the same program yields the same virtual timings.
"""

from repro.sim.errors import DeadlockError, SimulationError
from repro.sim.events import (
    BUFFER_CLOSED,
    Acquire,
    Close,
    Delay,
    Get,
    Put,
    Release,
    Use,
    WaitBarrier,
)
from repro.sim.kernel import Kernel
from repro.sim.process import Process, ProcessState
from repro.sim.resources import FairShareResource, SimBarrier, SimBuffer, SimLock

__all__ = [
    "Acquire",
    "BUFFER_CLOSED",
    "Close",
    "DeadlockError",
    "Delay",
    "FairShareResource",
    "Get",
    "Kernel",
    "Process",
    "ProcessState",
    "Put",
    "Release",
    "SimBarrier",
    "SimBuffer",
    "SimLock",
    "SimulationError",
    "Use",
    "WaitBarrier",
]
