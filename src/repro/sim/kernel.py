"""The discrete-event kernel.

Drives simulated processes (generators yielding request objects) over
fair-share resources, locks, buffers and barriers in virtual time.  The
loop alternates two phases:

1. *drain* — step every ready process until it suspends on a request;
   stepping costs no virtual time;
2. *advance* — jump virtual time to the earliest of: the next timer
   expiry, the next fair-share job completion; complete it and mark the
   affected processes ready.

If neither phase can make progress while unfinished processes remain,
the run raises :class:`~repro.sim.errors.DeadlockError` naming them.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Any, Deque, Generator, List, Optional, Tuple

from repro.sim.errors import DeadlockError, SimulationError
from repro.sim.events import (
    BUFFER_CLOSED,
    Acquire,
    Close,
    Delay,
    Get,
    Put,
    Release,
    Use,
    WaitBarrier,
)
from repro.sim.process import Process, ProcessState
from repro.sim.resources import FairShareResource, SimBarrier, SimBuffer

_EPS = 1e-9


class Kernel:
    """A deterministic discrete-event simulation kernel.

    Pass a :class:`repro.sim.trace.Tracer` to record every request each
    process issues (see :func:`repro.sim.trace.render_timeline`).
    """

    def __init__(self, tracer=None) -> None:
        self.now = 0.0
        self.tracer = tracer
        self._resources: List[FairShareResource] = []
        self._processes: List[Process] = []
        self._ready: Deque[Tuple[Process, Any]] = deque()
        self._timers: List[Tuple[float, int, Process]] = []
        self._timer_seq = 0

    # -- construction -----------------------------------------------------

    def resource(
        self, name: str, total_rate: float, per_job_cap: Optional[float] = None
    ) -> FairShareResource:
        """Create and register a fair-share resource."""
        res = FairShareResource(name, total_rate, per_job_cap)
        res._last_advance = self.now
        self._resources.append(res)
        return res

    def spawn(self, name: str, generator: Generator) -> Process:
        """Register a process; it takes its first step when `run` drains."""
        process = Process(name, generator, started_at=self.now)
        self._processes.append(process)
        self._ready.append((process, None))
        return process

    # -- execution ---------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run to completion (or ``until``); returns the final virtual time."""
        stalled_iterations = 0
        while True:
            self._drain_ready()
            next_time = self._next_event_time()
            if next_time is math.inf:
                self._check_deadlock()
                return self.now
            if until is not None and next_time > until:
                self._advance_resources(until)
                self.now = until
                return self.now
            self._advance_resources(next_time)
            self.now = next_time
            self._complete_resource_jobs()
            self._fire_timers()
            # Guard against numerical stalls: every iteration must either
            # advance time or make a process ready.
            if self._ready:
                stalled_iterations = 0
            else:
                stalled_iterations += 1
                if stalled_iterations > 1000:
                    raise SimulationError(
                        f"kernel made no progress at t={self.now}; "
                        "a resource job is numerically stuck"
                    )

    @property
    def unfinished(self) -> List[Process]:
        """Processes that have not yet returned."""
        return [p for p in self._processes if p.state is not ProcessState.FINISHED]

    # -- main-loop pieces ---------------------------------------------------

    def _next_event_time(self) -> float:
        candidates = [self._timers[0][0]] if self._timers else []
        for res in self._resources:
            rel = res.next_completion_in()
            if rel is not math.inf:
                candidates.append(self.now + rel)
        return min(candidates) if candidates else math.inf

    def _advance_resources(self, now: float) -> None:
        for res in self._resources:
            res.advance(now)

    def _complete_resource_jobs(self) -> None:
        for res in self._resources:
            for process in res.pop_completed():
                process.state = ProcessState.READY
                self._ready.append((process, None))

    def _fire_timers(self) -> None:
        while self._timers and self._timers[0][0] <= self.now + _EPS:
            _, _, process = heapq.heappop(self._timers)
            process.mark_unblocked(self.now)
            self._ready.append((process, None))

    def _drain_ready(self) -> None:
        while self._ready:
            process, value = self._ready.popleft()
            self._step(process, value)

    def _check_deadlock(self) -> None:
        blocked = [
            p for p in self._processes if p.state is ProcessState.BLOCKED
        ]
        if blocked:
            raise DeadlockError(p.name for p in blocked)

    # -- stepping and request dispatch ---------------------------------------

    def _step(self, process: Process, value: Any) -> None:
        try:
            request = process.generator.send(value)
        except StopIteration:
            process.state = ProcessState.FINISHED
            process.finish_time = self.now
            if self.tracer is not None:
                self.tracer.record(self.now, process.name, "Finish")
            return
        if self.tracer is not None:
            self.tracer.record(
                self.now, process.name, type(request).__name__
            )
        self._dispatch(process, request)

    def _dispatch(self, process: Process, request: Any) -> None:
        if isinstance(request, Use):
            if request.amount <= 0:
                self._ready.append((process, None))
                return
            process.state = ProcessState.RUNNING
            request.resource.add_job(process, request.amount)
        elif isinstance(request, Delay):
            if request.seconds <= 0:
                self._ready.append((process, None))
                return
            process.mark_blocked(self.now)
            self._timer_seq += 1
            heapq.heappush(
                self._timers,
                (self.now + request.seconds, self._timer_seq, process),
            )
        elif isinstance(request, Acquire):
            if request.lock.try_acquire(process, self.now):
                self._ready.append((process, None))
            else:
                process.mark_blocked(self.now)
        elif isinstance(request, Release):
            woken = request.lock.release(process, self.now)
            self._ready.append((process, None))
            if woken is not None:
                woken.mark_unblocked(self.now)
                self._ready.append((woken, None))
        elif isinstance(request, Put):
            self._do_put(process, request.buffer, request.item)
        elif isinstance(request, Get):
            self._do_get(process, request.buffer)
        elif isinstance(request, Close):
            self._do_close(process, request.buffer)
        elif isinstance(request, WaitBarrier):
            self._do_barrier(process, request.barrier)
        else:
            raise SimulationError(
                f"{process.name} yielded an unknown request: {request!r}"
            )

    # -- buffer operations ----------------------------------------------------

    def _do_put(self, process: Process, buffer: SimBuffer, item: Any) -> None:
        if buffer.closed:
            raise SimulationError(
                f"{process.name} put into closed buffer {buffer.name!r}"
            )
        buffer.puts += 1
        if buffer.blocked_getters:
            getter = buffer.blocked_getters.popleft()
            getter.mark_unblocked(self.now)
            self._ready.append((getter, item))
            self._ready.append((process, None))
        elif len(buffer.items) < buffer.capacity:
            buffer.items.append(item)
            buffer.note_occupancy()
            self._ready.append((process, None))
        else:
            process.mark_blocked(self.now)
            buffer.blocked_putters.append((process, item))

    def _do_get(self, process: Process, buffer: SimBuffer) -> None:
        buffer.gets += 1
        if buffer.items:
            item = buffer.items.popleft()
            if buffer.blocked_putters:
                putter, pending = buffer.blocked_putters.popleft()
                buffer.items.append(pending)
                putter.mark_unblocked(self.now)
                self._ready.append((putter, None))
            self._ready.append((process, item))
        elif buffer.closed:
            self._ready.append((process, BUFFER_CLOSED))
        else:
            process.mark_blocked(self.now)
            buffer.blocked_getters.append(process)

    def _do_close(self, process: Process, buffer: SimBuffer) -> None:
        if buffer.blocked_putters:
            names = ", ".join(p.name for p, _ in buffer.blocked_putters)
            raise SimulationError(
                f"buffer {buffer.name!r} closed while putters blocked: {names}"
            )
        buffer.closed = True
        while buffer.blocked_getters:
            getter = buffer.blocked_getters.popleft()
            getter.mark_unblocked(self.now)
            self._ready.append((getter, BUFFER_CLOSED))
        self._ready.append((process, None))

    def _do_barrier(self, process: Process, barrier: SimBarrier) -> None:
        barrier.waiting.append(process)
        if len(barrier.waiting) >= barrier.parties:
            barrier.generations += 1
            for waiter in barrier.waiting:
                if waiter is not process:
                    waiter.mark_unblocked(self.now)
                self._ready.append((waiter, None))
            barrier.waiting = []
        else:
            process.mark_blocked(self.now)
