"""Simulator error types."""

from __future__ import annotations


class SimulationError(RuntimeError):
    """A process violated the simulator's protocol (e.g. released a lock
    it does not hold, or put into a closed buffer)."""


class DeadlockError(SimulationError):
    """Virtual time cannot advance but processes are still blocked."""

    def __init__(self, blocked_names):
        self.blocked_names = list(blocked_names)
        super().__init__(
            "simulation deadlocked; blocked processes: "
            + ", ".join(self.blocked_names)
        )
