"""Request objects simulated processes yield to the kernel.

A simulated thread is a Python generator; each ``yield`` hands the
kernel one of these requests and suspends the process until the kernel
completes it.  ``Get`` is the only request whose completion carries a
value (the item, or :data:`BUFFER_CLOSED` after drain-and-close).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, TYPE_CHECKING

if TYPE_CHECKING:
    from repro.sim.resources import FairShareResource, SimBarrier, SimBuffer, SimLock

#: Sentinel a blocked ``Get`` receives once the buffer is closed and drained.
BUFFER_CLOSED = object()


@dataclass(frozen=True)
class Use:
    """Consume ``amount`` of a fair-share resource (CPU work or disk bytes)."""

    resource: "FairShareResource"
    amount: float

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise ValueError(f"amount must be non-negative, got {self.amount}")


@dataclass(frozen=True)
class Delay:
    """Suspend for a fixed span of virtual time (e.g. a disk seek)."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(f"delay must be non-negative, got {self.seconds}")


@dataclass(frozen=True)
class Acquire:
    """Block until the FIFO lock is granted to this process."""

    lock: "SimLock"


@dataclass(frozen=True)
class Release:
    """Release a held lock, waking the next waiter if any."""

    lock: "SimLock"


@dataclass(frozen=True)
class Put:
    """Enqueue ``item`` into a bounded buffer, blocking while full."""

    buffer: "SimBuffer"
    item: Any


@dataclass(frozen=True)
class Get:
    """Dequeue from a bounded buffer, blocking while empty.

    Completion value is the item, or :data:`BUFFER_CLOSED` when the
    buffer has been closed and fully drained.
    """

    buffer: "SimBuffer"


@dataclass(frozen=True)
class Close:
    """Close a buffer: no further puts; blocked getters drain then wake."""

    buffer: "SimBuffer"


@dataclass(frozen=True)
class WaitBarrier:
    """Block until all of the barrier's parties have arrived."""

    barrier: "SimBarrier"
