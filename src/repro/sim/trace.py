"""Execution tracing for the simulator.

The paper's step 1 is "use benchmarks and measurements to identify the
components with the highest parallelization potential" — which needs
visibility into *where virtual time goes*.  A :class:`Tracer` attached
to a kernel records every request each process issues, with timestamps;
:func:`render_timeline` turns the trace into an ASCII timeline (one row
per process, one glyph per time bucket) that makes lock convoys and
disk saturation visually obvious.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

#: Glyph per request kind in the rendered timeline.
_GLYPHS = {
    "Use": "#",
    "Delay": ".",
    "Acquire": "L",
    "Release": "l",
    "Put": ">",
    "Get": "<",
    "Close": "x",
    "WaitBarrier": "B",
    "Finish": " ",
}


@dataclass(frozen=True)
class TraceEvent:
    """One recorded simulator event."""

    time: float
    process: str
    kind: str
    detail: str = ""


class Tracer:
    """Collects :class:`TraceEvent` records from a kernel."""

    def __init__(self, limit: int = 1_000_000) -> None:
        if limit < 1:
            raise ValueError("limit must be positive")
        self.limit = limit
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def record(self, time: float, process: str, kind: str, detail: str = "") -> None:
        """Append one event (silently counts drops past the limit)."""
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, process, kind, detail))

    def processes(self) -> List[str]:
        """Distinct process names in first-appearance order."""
        seen = []
        for event in self.events:
            if event.process not in seen:
                seen.append(event.process)
        return seen

    def events_for(self, process: str) -> List[TraceEvent]:
        """All events of one process, in time order."""
        return [e for e in self.events if e.process == process]

    def count_by_kind(self) -> Dict[str, int]:
        """Histogram of request kinds."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    @property
    def end_time(self) -> float:
        """Timestamp of the last recorded event (0.0 when empty)."""
        return self.events[-1].time if self.events else 0.0


def render_timeline(
    tracer: Tracer,
    width: int = 64,
    processes: Optional[Sequence[str]] = None,
) -> str:
    """ASCII timeline: one row per process, one glyph per time bucket.

    Each bucket shows the request the process most recently issued —
    ``#`` compute/IO service, ``L`` waiting-or-holding a lock, ``<``/``>``
    buffer traffic, ``B`` barrier, ``.`` sleeping.
    """
    if width < 8:
        raise ValueError("width must be at least 8")
    names = list(processes) if processes is not None else tracer.processes()
    if not names or tracer.end_time <= 0:
        return "(empty trace)"
    span = tracer.end_time
    label_width = max(len(name) for name in names)
    lines = [
        f"{'':<{label_width}}  0.0s{'':<{width - 12}}{span:.1f}s"
    ]
    for name in names:
        row = [" "] * width
        for event in tracer.events_for(name):
            bucket = min(width - 1, int(event.time / span * width))
            glyph = _GLYPHS.get(event.kind, "?")
            # Fill forward from this bucket until overwritten.
            for i in range(bucket, width):
                row[i] = glyph
        # Trim trailing run after Finish (already spaces via glyph map).
        lines.append(f"{name:<{label_width}}  {''.join(row)}")
    legend = "  ".join(f"{glyph}={kind}" for kind, glyph in _GLYPHS.items()
                       if glyph.strip())
    lines.append(f"{'':<{label_width}}  [{legend}]")
    return "\n".join(lines)
