"""Simulated resources: fair-share devices, locks, buffers, barriers.

The fair-share resource is a fluid model: all active jobs progress
simultaneously at ``min(per_job_cap, total_rate / n_jobs)``.  With
``total_rate = cores * clock`` and ``per_job_cap = clock`` it models an
OS time-slicing ``n`` runnable threads over ``cores`` cores; with
``total_rate = aggregate_bw`` and ``per_job_cap = stream_bw`` it models
a disk whose concurrent streams share platter bandwidth.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.sim.errors import SimulationError
from repro.sim.process import Process

_EPS = 1e-9


class FairShareResource:
    """A fluid processor-sharing resource."""

    def __init__(
        self, name: str, total_rate: float, per_job_cap: Optional[float] = None
    ) -> None:
        if total_rate <= 0:
            raise ValueError(f"total_rate must be positive, got {total_rate}")
        if per_job_cap is not None and per_job_cap <= 0:
            raise ValueError(f"per_job_cap must be positive, got {per_job_cap}")
        self.name = name
        self.total_rate = total_rate
        self.per_job_cap = per_job_cap
        self._jobs: Dict[Process, float] = {}
        self._last_advance = 0.0
        self.work_done = 0.0
        self.peak_concurrency = 0

    # -- kernel interface -------------------------------------------------

    def add_job(self, process: Process, amount: float) -> None:
        """Admit a job with ``amount`` units of demand."""
        if process in self._jobs:
            raise SimulationError(
                f"{process.name} already has a job on resource {self.name}"
            )
        self._jobs[process] = amount
        self.peak_concurrency = max(self.peak_concurrency, len(self._jobs))

    def current_rate(self) -> float:
        """Per-job progress rate at the current job count (0 when idle)."""
        n = len(self._jobs)
        if n == 0:
            return 0.0
        rate = self.total_rate / n
        if self.per_job_cap is not None:
            rate = min(rate, self.per_job_cap)
        return rate

    def next_completion_in(self) -> float:
        """Seconds from the last advance until the earliest job finishes."""
        if not self._jobs:
            return math.inf
        return min(self._jobs.values()) / self.current_rate()

    def advance(self, now: float) -> None:
        """Progress every active job up to virtual time ``now``."""
        dt = now - self._last_advance
        self._last_advance = now
        if dt <= 0 or not self._jobs:
            return
        rate = self.current_rate()
        progress = rate * dt
        for process in self._jobs:
            done = min(progress, self._jobs[process])
            self._jobs[process] -= done
            self.work_done += done

    def pop_completed(self, time_epsilon: float = 1e-9) -> List[Process]:
        """Remove and return jobs that are done to within ``time_epsilon``
        seconds of service.

        The threshold is *time*-based (remaining demand divided by the
        current rate) rather than demand-based: demands span many orders
        of magnitude (CPU seconds vs. disk bytes), and a leftover demand
        smaller than one representable tick of virtual time would
        otherwise stall the clock forever.
        """
        if not self._jobs:
            return []
        threshold = max(_EPS, self.current_rate() * time_epsilon)
        finished = [
            p for p, remaining in self._jobs.items() if remaining <= threshold
        ]
        for process in finished:
            del self._jobs[process]
        return finished

    @property
    def active_jobs(self) -> int:
        """Number of jobs currently in service."""
        return len(self._jobs)

    def utilization(self, elapsed: float) -> float:
        """Fraction of total capacity used over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return self.work_done / (self.total_rate * elapsed)

    def __repr__(self) -> str:
        return (
            f"FairShareResource({self.name!r}, rate={self.total_rate}, "
            f"cap={self.per_job_cap}, active={len(self._jobs)})"
        )


class SimLock:
    """A FIFO mutex with contention statistics.

    ``acquires`` counts all grants; ``contended_acquires`` counts those
    that had to wait; ``total_wait_time`` integrates the waiting —
    the quantities that explain Implementation 1's scaling collapse.
    """

    def __init__(self, name: str = "lock") -> None:
        self.name = name
        self._owner: Optional[Process] = None
        self._waiters: Deque[Tuple[Process, float]] = deque()
        self.acquires = 0
        self.contended_acquires = 0
        self.total_wait_time = 0.0
        self.max_queue_length = 0

    @property
    def owner(self) -> Optional[Process]:
        """The process currently holding the lock (None when free)."""
        return self._owner

    @property
    def queue_length(self) -> int:
        """Processes currently waiting."""
        return len(self._waiters)

    def try_acquire(self, process: Process, now: float) -> bool:
        """Grant immediately if free; otherwise enqueue.  Returns granted."""
        if self._owner is None:
            self._owner = process
            self.acquires += 1
            return True
        self._waiters.append((process, now))
        self.contended_acquires += 1
        self.max_queue_length = max(self.max_queue_length, len(self._waiters))
        return False

    def release(self, process: Process, now: float) -> Optional[Process]:
        """Release; returns the next owner to wake (None if none waited)."""
        if self._owner is not process:
            raise SimulationError(
                f"{process.name} released lock {self.name!r} it does not hold"
            )
        if self._waiters:
            next_owner, enqueued_at = self._waiters.popleft()
            self.total_wait_time += now - enqueued_at
            self._owner = next_owner
            self.acquires += 1
            return next_owner
        self._owner = None
        return None


class SimBuffer:
    """A bounded FIFO between simulated producers and consumers."""

    def __init__(self, name: str = "buffer", capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self.blocked_putters: Deque[Tuple[Process, Any]] = deque()
        self.blocked_getters: Deque[Process] = deque()
        self.closed = False
        self.puts = 0
        self.gets = 0
        self.peak_occupancy = 0

    def note_occupancy(self) -> None:
        """Record the high-water mark (kernel calls after mutations)."""
        self.peak_occupancy = max(self.peak_occupancy, len(self.items))


class SimBarrier:
    """All ``parties`` processes block until the last one arrives."""

    def __init__(self, parties: int, name: str = "barrier") -> None:
        if parties < 1:
            raise ValueError(f"parties must be at least 1, got {parties}")
        self.name = name
        self.parties = parties
        self.waiting: List[Process] = []
        self.generations = 0
