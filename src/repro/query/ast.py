"""Query abstract syntax tree.

Immutable node types; :meth:`Query.terms` enumerates the positive terms
a node needs from the index, which the parallel evaluator prefetches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple


class Query:
    """Base class for query AST nodes."""

    def terms(self) -> FrozenSet[str]:
        """All term literals mentioned anywhere in the query."""
        raise NotImplementedError


@dataclass(frozen=True)
class Term(Query):
    """A single search term (already lower-cased by the parser)."""

    value: str

    def terms(self) -> FrozenSet[str]:
        return frozenset((self.value,))

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Phrase(Query):
    """A quoted phrase ``"a b c"``: the words must appear consecutively.

    Evaluation needs a :class:`~repro.index.positional.PositionalIndex`
    (positions are an opt-in sidecar of the boolean index).
    """

    words: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.words) < 2:
            raise ValueError(
                "a phrase needs at least two words (a single quoted word "
                "is just a term)"
            )

    def terms(self) -> FrozenSet[str]:
        return frozenset(self.words)

    def __str__(self) -> str:
        return '"' + " ".join(self.words) + '"'


@dataclass(frozen=True)
class Prefix(Query):
    """A wildcard term ``value*``: matches every term with that prefix.

    Carries no postings itself — :func:`repro.query.wildcard.expand_prefixes`
    rewrites it into an :class:`Or` of concrete terms against a term
    dictionary before evaluation.
    """

    value: str

    def __post_init__(self) -> None:
        if not self.value:
            raise ValueError("a prefix query needs at least one character")

    def terms(self) -> FrozenSet[str]:
        return frozenset()

    def __str__(self) -> str:
        return f"{self.value}*"


@dataclass(frozen=True)
class And(Query):
    """Conjunction: files matching every operand."""

    operands: Tuple[Query, ...]

    def terms(self) -> FrozenSet[str]:
        return frozenset().union(*(op.terms() for op in self.operands))

    def __str__(self) -> str:
        return "(" + " AND ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Or(Query):
    """Disjunction: files matching any operand."""

    operands: Tuple[Query, ...]

    def terms(self) -> FrozenSet[str]:
        return frozenset().union(*(op.terms() for op in self.operands))

    def __str__(self) -> str:
        return "(" + " OR ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Not(Query):
    """Negation: files not matching the operand."""

    operand: Query

    def terms(self) -> FrozenSet[str]:
        return self.operand.terms()

    def __str__(self) -> str:
        return f"(NOT {self.operand})"
