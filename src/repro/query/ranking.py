"""Ranked retrieval: tf-idf and BM25 scoring on top of boolean matching.

The paper's index is boolean (term -> files); a usable desktop search
also ranks hits.  :class:`FrequencyIndex` keeps what boolean postings
drop — per-(term, file) occurrence counts plus document lengths — and
two rankers order a boolean result set:

* :class:`TfIdfRanker` — the classic ``sum of tf(term, file) *
  idf(term)`` with log-scaled term frequency and smoothed inverse
  document frequency;
* :class:`BM25Ranker` — Okapi BM25 with the usual saturation (``k1``)
  and length-normalization (``b``) knobs, truncating to a top-K.

The frequency index is an optional sidecar: the boolean engines stay
exactly as the paper describes them.  BM25 is deliberately written to
match :meth:`repro.query.daat.DaatQueryEngine.search_bm25` operation
for operation — the same formula, the same sorted-term accumulation
order, the same (score desc, path asc) tie-break — so the in-memory
and mmap paths produce *identical* hits over the same corpus, which is
what the differential suite asserts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.adt import FnvHashMap
from repro.query.parser import parse_query
from repro.text.tokenizer import Tokenizer

#: The standard Okapi BM25 knobs: term-frequency saturation and
#: document-length normalization.
BM25_K1 = 1.2
BM25_B = 0.75


class FrequencyIndex:
    """term -> {path: occurrence count}, plus document statistics."""

    def __init__(self) -> None:
        self._counts: FnvHashMap[Dict[str, int]] = FnvHashMap()
        self._document_lengths: FnvHashMap[int] = FnvHashMap()

    @property
    def document_count(self) -> int:
        """Number of indexed documents."""
        return len(self._document_lengths)

    @property
    def total_length(self) -> int:
        """Sum of every document's length (total term occurrences)."""
        return sum(self._document_lengths.values())

    @property
    def average_document_length(self) -> float:
        """Mean document length; 0.0 for an empty index."""
        count = len(self._document_lengths)
        return self.total_length / count if count else 0.0

    def add_document(self, path: str, terms: Iterable[str]) -> None:
        """Index a document from its term *occurrences* (with duplicates)."""
        if path in self._document_lengths:
            raise ValueError(f"{path!r} already indexed")
        length = 0
        for term in terms:
            length += 1
            per_doc = self._counts.setdefault(term, {})
            per_doc[path] = per_doc.get(path, 0) + 1
        self._document_lengths[path] = length

    def tf(self, term: str, path: str) -> int:
        """Occurrences of ``term`` in ``path`` (0 if absent)."""
        per_doc = self._counts.get(term)
        return per_doc.get(path, 0) if per_doc else 0

    def df(self, term: str) -> int:
        """Number of documents containing ``term``."""
        per_doc = self._counts.get(term)
        return len(per_doc) if per_doc else 0

    def document_length(self, path: str) -> int:
        """Total term occurrences in ``path``."""
        return self._document_lengths.get(path, 0)

    def subset(self, keep) -> "FrequencyIndex":
        """A new frequency index restricted to documents in ``keep``.

        Exact decomposition for document-partitioned sharding: the
        per-(term, path) counts and per-document lengths are copied for
        kept paths only, so the shard's ``df``/``avgdl``/``N`` become
        genuinely *shard-local* statistics — which is what the
        distributed BM25 scoring contract (``docs/sharded.md``) scores
        with.  ``keep`` is any ``in``-supporting container (use a set).
        """
        sub = FrequencyIndex()
        for term, per_doc in self._counts.items():
            kept = {
                path: count
                for path, count in per_doc.items()
                if path in keep
            }
            if kept:
                sub._counts[term] = kept
        for path, length in self._document_lengths.items():
            if path in keep:
                sub._document_lengths[path] = length
        return sub

    @classmethod
    def from_fs(cls, fs, tokenizer: Optional[Tokenizer] = None,
                registry=None, root: str = "",
                extractor=None) -> "FrequencyIndex":
        """Build a frequency index by scanning a filesystem."""
        from repro.extract.registry import resolve_extractor

        extractor = resolve_extractor(extractor, tokenizer, registry)
        index = cls()
        for ref in fs.list_files(root):
            content = fs.read_file(ref.path)
            index.add_document(ref.path, extractor.terms(ref.path, content))
        return index


@dataclass(frozen=True)
class RankedHit:
    """One scored search result."""

    path: str
    score: float


class TfIdfRanker:
    """Scores boolean hits with log-tf x smoothed-idf."""

    def __init__(self, frequencies: FrequencyIndex) -> None:
        self.frequencies = frequencies

    def idf(self, term: str) -> float:
        """Smoothed inverse document frequency of ``term``."""
        n = self.frequencies.document_count
        df = self.frequencies.df(term)
        return math.log((n + 1) / (df + 1)) + 1.0

    def score(self, path: str, terms: Sequence[str]) -> float:
        """tf-idf score of one document against the query terms."""
        total = 0.0
        for term in terms:
            tf = self.frequencies.tf(term, path)
            if tf:
                total += (1.0 + math.log(tf)) * self.idf(term)
        return total

    def rank(self, paths: Iterable[str], terms: Sequence[str]) -> List[RankedHit]:
        """Hits ordered by descending score (ties broken by path)."""
        hits = [RankedHit(path, self.score(path, terms)) for path in paths]
        hits.sort(key=lambda hit: (-hit.score, hit.path))
        return hits


class BM25Ranker:
    """Okapi BM25 over a :class:`FrequencyIndex`.

    score(d) = sum over query terms of
        idf(t) * tf * (k1 + 1) / (tf + k1 * (1 - b + b * |d| / avgdl))

    with the non-negative idf ``ln(1 + (N - df + 0.5) / (df + 0.5))``.
    Mirrors the mmap-side scorer in
    :meth:`repro.query.daat.DaatQueryEngine.search_bm25` exactly.
    """

    def __init__(
        self,
        frequencies: FrequencyIndex,
        k1: float = BM25_K1,
        b: float = BM25_B,
    ) -> None:
        self.frequencies = frequencies
        self.k1 = k1
        self.b = b

    def idf(self, term: str) -> float:
        """Non-negative BM25 inverse document frequency."""
        n = self.frequencies.document_count
        df = self.frequencies.df(term)
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5))

    def score(self, path: str, terms: Sequence[str]) -> float:
        """BM25 score of one document against the query terms."""
        frequencies = self.frequencies
        avgdl = frequencies.average_document_length
        length = frequencies.document_length(path)
        norm = self.k1 * (
            1.0 - self.b + self.b * (length / avgdl if avgdl else 0.0)
        )
        total = 0.0
        for term in terms:
            tf = frequencies.tf(term, path)
            if tf:
                total += self.idf(term) * (tf * (self.k1 + 1.0)) / (tf + norm)
        return total

    def rank(
        self, paths: Iterable[str], terms: Sequence[str],
        topk: Optional[int] = None,
    ) -> List[RankedHit]:
        """Top-``topk`` hits by (score desc, path asc); all if None."""
        hits = [RankedHit(path, self.score(path, terms)) for path in paths]
        hits.sort(key=lambda hit: (-hit.score, hit.path))
        return hits if topk is None else hits[:topk]


def search_ranked(
    engine, ranker: TfIdfRanker, query_text: str, parallel: bool = False
) -> List[RankedHit]:
    """Boolean match via ``engine``, then tf-idf ordering via ``ranker``.

    The query's positive terms drive the scoring; operators only decide
    the match set (a NOT-ed term contributes no score to survivors).
    Wildcards are expanded against the engine's term dictionary so
    their concrete matches are scored too.
    """
    from repro.query.wildcard import expand_prefixes, has_prefixes

    paths = engine.search(query_text, parallel=parallel)
    query = parse_query(query_text)
    if has_prefixes(query):
        query = expand_prefixes(query, engine.prefix_dictionary())
    return ranker.rank(paths, sorted(query.terms()))


def search_bm25(
    engine,
    ranker: BM25Ranker,
    query_text: str,
    topk: int = 10,
    parallel: bool = False,
) -> List[RankedHit]:
    """Boolean match via ``engine``, then BM25 top-``topk`` ordering.

    The in-memory ranked-query scenario: same match-then-score shape as
    :func:`search_ranked`, scoring with BM25 and truncating to the
    top-K.  Its on-disk twin is
    :meth:`repro.query.daat.DaatQueryEngine.search_bm25`.
    """
    from repro.query.wildcard import expand_prefixes, has_prefixes

    if topk < 1:
        raise ValueError(f"topk must be at least 1, got {topk}")
    paths = engine.search(query_text, parallel=parallel)
    query = parse_query(query_text)
    if has_prefixes(query):
        query = expand_prefixes(query, engine.prefix_dictionary())
    return ranker.rank(paths, sorted(query.terms()), topk=topk)
