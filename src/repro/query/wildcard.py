"""Prefix (wildcard) query support.

``inter*`` matches every indexed term starting with ``inter``.  The
expansion needs a *term dictionary*: a sorted list of the index's terms
over which a prefix is a binary-searchable range.  Expansion rewrites
each :class:`~repro.query.ast.Prefix` node into an ``Or`` of concrete
terms, after which the ordinary boolean evaluator (including its
parallel multi-index fetch) applies unchanged.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List

from repro.query.ast import And, Not, Or, Prefix, Query, Term


class PrefixDictionary:
    """A sorted term dictionary supporting prefix-range expansion."""

    def __init__(self, terms: Iterable[str]) -> None:
        self._terms: List[str] = sorted(set(terms))

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: str) -> bool:
        i = bisect.bisect_left(self._terms, term)
        return i < len(self._terms) and self._terms[i] == term

    def expand(self, prefix: str, limit: int = 1000) -> List[str]:
        """All terms starting with ``prefix`` (at most ``limit``).

        The limit guards against degenerate wildcards like ``a*`` on a
        large vocabulary blowing the rewritten query up; desktop-search
        UIs impose the same kind of cap.
        """
        if not prefix:
            raise ValueError("empty prefix")
        low = bisect.bisect_left(self._terms, prefix)
        high = bisect.bisect_left(self._terms, prefix + "\U0010ffff")
        matches = self._terms[low:high]
        return matches[:limit]


def expand_prefixes(
    query: Query, dictionary: PrefixDictionary, limit: int = 1000
) -> Query:
    """Rewrite every Prefix node into an Or over matching terms.

    A prefix matching nothing becomes a term that cannot match
    (wildcards never raise; they just find nothing).
    """
    if isinstance(query, Prefix):
        matches = dictionary.expand(query.value, limit)
        if not matches:
            # An impossible term: evaluates to the empty posting set.
            return Term(query.value + "\x00unmatchable")
        if len(matches) == 1:
            return Term(matches[0])
        return Or(tuple(Term(m) for m in matches))
    if isinstance(query, And):
        return And(
            tuple(expand_prefixes(op, dictionary, limit) for op in query.operands)
        )
    if isinstance(query, Or):
        return Or(
            tuple(expand_prefixes(op, dictionary, limit) for op in query.operands)
        )
    if isinstance(query, Not):
        return Not(expand_prefixes(query.operand, dictionary, limit))
    return query


def has_prefixes(query: Query) -> bool:
    """Whether the AST contains any Prefix node."""
    if isinstance(query, Prefix):
        return True
    if isinstance(query, (And, Or)):
        return any(has_prefixes(op) for op in query.operands)
    if isinstance(query, Not):
        return has_prefixes(query.operand)
    return False
