"""Query optimization: AST normalization and simplification.

Users type redundant queries (``cat AND cat AND (dog OR dog)``); naive
evaluation fetches and intersects the same postings repeatedly.  The
optimizer rewrites a query into a smaller equivalent one:

* **flattening** — nested same-operator nodes collapse
  (``And(And(a, b), c)`` -> ``And(a, b, c)``);
* **deduplication** — repeated operands drop (``a AND a`` -> ``a``);
* **double negation** — ``NOT NOT q`` -> ``q``;
* **absorption** — ``a AND (a OR b)`` -> ``a``; ``a OR (a AND b)`` -> ``a``;
* **complement laws** — ``a AND NOT a`` -> nothing (an unmatchable
  term); ``a OR NOT a`` -> everything (a NOT over the unmatchable term);
* **singleton unwrap** — one-operand And/Or nodes unwrap.

Every rewrite preserves boolean-evaluation semantics; the property
tests verify equivalence on randomized indices.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.query.ast import And, Not, Or, Phrase, Prefix, Query, Term

#: A term no tokenizer can ever produce ("\x00" is not a term byte), so
#: its posting set is empty: the optimizer's canonical FALSE.  NOT of it
#: is the canonical TRUE (the whole universe).
NOTHING = Term("\x00nothing")
EVERYTHING = Not(NOTHING)


def optimize(query: Query) -> Query:
    """Return a smaller query with identical evaluation semantics."""
    return _simplify(query)


def _simplify(query: Query) -> Query:
    if isinstance(query, (Term, Prefix, Phrase)):
        return query
    if isinstance(query, Not):
        inner = _simplify(query.operand)
        if isinstance(inner, Not):  # double negation
            return inner.operand
        return Not(inner)
    if isinstance(query, And):
        return _simplify_nary(query, And, Or, NOTHING, EVERYTHING)
    if isinstance(query, Or):
        return _simplify_nary(query, Or, And, EVERYTHING, NOTHING)
    raise TypeError(f"unknown query node: {type(query).__name__}")


def _simplify_nary(query, node_cls, dual_cls, absorbing, identity) -> Query:
    """Shared And/Or logic; ``absorbing`` annihilates, ``identity`` drops.

    For And: absorbing=NOTHING (a AND false = false), identity=EVERYTHING.
    For Or:  absorbing=EVERYTHING (a OR true = true), identity=NOTHING.
    """
    # Flatten nested nodes of the same class and simplify children.
    operands: List[Query] = []
    for raw in query.operands:
        child = _simplify(raw)
        if isinstance(child, node_cls):
            operands.extend(child.operands)
        else:
            operands.append(child)

    # Deduplicate (order-preserving) and apply identity/absorbing laws.
    seen: List[Query] = []
    for operand in operands:
        if operand == absorbing:
            return absorbing
        if operand == identity:
            continue
        if operand not in seen:
            seen.append(operand)

    # Complement law: q and NOT q together.
    for operand in seen:
        complement = operand.operand if isinstance(operand, Not) else Not(operand)
        if complement in seen:
            return absorbing

    # Absorption: for And, drop any Or-operand containing another
    # operand (a AND (a OR b) = a); dually for Or.
    survivors: List[Query] = []
    for operand in seen:
        if isinstance(operand, dual_cls) and any(
            other in operand.operands for other in seen if other is not operand
        ):
            continue
        survivors.append(operand)

    if not survivors:
        return identity
    if len(survivors) == 1:
        return survivors[0]
    return node_cls(tuple(survivors))


def node_count(query: Query) -> int:
    """Number of AST nodes (the optimizer's cost metric)."""
    if isinstance(query, (Term, Prefix, Phrase)):
        return 1
    if isinstance(query, Not):
        return 1 + node_count(query.operand)
    return 1 + sum(node_count(op) for op in query.operands)


def describe_rewrites(original: Query, optimized: Query) -> Tuple[int, int]:
    """(original node count, optimized node count) for reporting."""
    return node_count(original), node_count(optimized)
