"""Search queries over the generated index.

The paper's index generator exists to serve desktop search: "In its
simplest form, it returns a list of files that contain a given
combination of search terms."  Its stated future work is integrating
and parallelizing query evaluation, "for instance by using multiple
indices" — which is exactly what makes Implementation 3 viable.

This package implements that search side: a boolean query language
(terms, AND/OR/NOT, parentheses, implicit AND), an evaluator over a
single index, a parallel evaluator over the replicas of an unjoined
multi-index, and a document-at-a-time evaluator
(:class:`~repro.query.daat.DaatQueryEngine`) that serves the same
language off an mmap'd RIDX2 file with block skipping and BM25 top-K
ranking.
"""

from repro.query.ast import And, Not, Or, Phrase, Prefix, Query, Term
from repro.query.cache import (
    CachingQueryEngine,
    QueryCache,
    cache_key,
    normalize_query,
)
from repro.query.daat import DaatQueryEngine
from repro.query.evaluator import QueryEngine
from repro.query.optimizer import node_count, optimize
from repro.query.parser import ParseError, parse_query
from repro.query.ranking import (
    BM25_B,
    BM25_K1,
    BM25Ranker,
    FrequencyIndex,
    RankedHit,
    TfIdfRanker,
    search_bm25,
    search_ranked,
)
from repro.query.wildcard import PrefixDictionary, expand_prefixes, has_prefixes

__all__ = [
    "And",
    "BM25_B",
    "BM25_K1",
    "BM25Ranker",
    "CachingQueryEngine",
    "DaatQueryEngine",
    "FrequencyIndex",
    "Not",
    "Or",
    "ParseError",
    "Phrase",
    "Prefix",
    "PrefixDictionary",
    "Query",
    "QueryEngine",
    "RankedHit",
    "Term",
    "TfIdfRanker",
    "QueryCache",
    "cache_key",
    "normalize_query",
    "expand_prefixes",
    "has_prefixes",
    "node_count",
    "optimize",
    "parse_query",
    "search_bm25",
    "search_ranked",
]
