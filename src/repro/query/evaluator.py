"""Query evaluation over single and replicated indices.

:class:`QueryEngine` evaluates a parsed query against either one
:class:`~repro.index.inverted.InvertedIndex` or a
:class:`~repro.index.multi.MultiIndex`.  For a multi-index it can
prefetch every term's postings with one thread per replica — the
paper's proposed parallel-search-over-multiple-indices design.

``NOT`` is evaluated as set difference against the universe of indexed
files, which the engine is given at construction (the engine-produced
build reports know their file set).
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Union

from repro.index.inverted import InvertedIndex
from repro.index.multi import MultiIndex
from repro.obs import recorder as obsrec
from repro.query.ast import And, Not, Or, Phrase, Query, Term
from repro.query.parser import parse_query
from repro.query.wildcard import PrefixDictionary, expand_prefixes, has_prefixes

AnyIndex = Union[InvertedIndex, MultiIndex]


class QueryEngine:
    """Evaluates boolean queries against an index.

    ``positions`` (a :class:`~repro.index.positional.PositionalIndex`)
    enables quoted phrase queries; without it a phrase query raises.
    """

    def __init__(
        self,
        index: AnyIndex,
        universe: Optional[Iterable[str]] = None,
        positions=None,
    ) -> None:
        self.index = index
        self.positions = positions
        self._universe: Optional[FrozenSet[str]] = (
            frozenset(universe) if universe is not None else None
        )
        self._prefix_dictionary: Optional[PrefixDictionary] = None

    def search(
        self, query_text: str, parallel: bool = False, optimize: bool = True
    ) -> List[str]:
        """Parse and evaluate ``query_text``; returns sorted file paths.

        With ``parallel=True`` and a multi-index, the term postings are
        fetched with one thread per replica before evaluation.  Wildcard
        terms (``inter*``) are expanded against the index's term
        dictionary, built lazily on the first wildcard query.  The AST
        is simplified first (``optimize=False`` disables, for tests).
        """
        from repro.query.optimizer import optimize as optimize_query

        with obsrec.span("query.search", parallel=parallel):
            obsrec.metrics().counter("query.searches").inc()
            query = parse_query(query_text)
            if has_prefixes(query):
                query = expand_prefixes(query, self.prefix_dictionary())
            if optimize:
                query = optimize_query(query)
            with obsrec.span("query.fetch"):
                postings = self._fetch_postings(query.terms(), parallel)
            return sorted(self._evaluate(query, postings))

    def prefix_dictionary(self) -> PrefixDictionary:
        """The index's term dictionary (built lazily, then cached)."""
        if self._prefix_dictionary is None:
            self._prefix_dictionary = PrefixDictionary(self.index.terms())
        return self._prefix_dictionary

    # -- internals --------------------------------------------------------

    def _fetch_postings(
        self, terms: FrozenSet[str], parallel: bool
    ) -> Dict[str, Set[str]]:
        if parallel and isinstance(self.index, MultiIndex):
            return self._fetch_parallel(terms, self.index)
        return {term: set(self.index.lookup(term)) for term in terms}

    @staticmethod
    def _fetch_parallel(
        terms: FrozenSet[str], index: MultiIndex
    ) -> Dict[str, Set[str]]:
        """One thread per replica; each fetches all terms from its replica."""
        partials: List[Dict[str, List[str]]] = [
            {} for _ in index.replicas
        ]

        def work(i: int, replica: InvertedIndex) -> None:
            with obsrec.span("query.fetch.replica", replica=i):
                partials[i] = {
                    term: replica.lookup(term) for term in terms
                }

        threads = [
            threading.Thread(target=work, args=(i, replica), daemon=True)
            for i, replica in enumerate(index.replicas)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        merged: Dict[str, Set[str]] = {term: set() for term in terms}
        for partial in partials:
            for term, paths in partial.items():
                merged[term].update(paths)
        return merged

    def _evaluate(self, query: Query, postings: Dict[str, Set[str]]) -> Set[str]:
        if isinstance(query, Term):
            return postings.get(query.value, set())
        if isinstance(query, And):
            sets = [self._evaluate(op, postings) for op in query.operands]
            result = sets[0]
            for other in sets[1:]:
                result = result & other
            return result
        if isinstance(query, Or):
            result: Set[str] = set()
            for op in query.operands:
                result |= self._evaluate(op, postings)
            return result
        if isinstance(query, Not):
            return set(self._require_universe()) - self._evaluate(
                query.operand, postings
            )
        if isinstance(query, Phrase):
            if self.positions is None:
                raise ValueError(
                    "phrase queries need a positional index; construct "
                    "QueryEngine(index, positions=PositionalIndex...)"
                )
            return set(self.positions.phrase_paths(query.words))
        raise TypeError(f"unknown query node: {type(query).__name__}")

    def _require_universe(self) -> FrozenSet[str]:
        if self._universe is None:
            raise ValueError(
                "NOT queries need the universe of indexed files; construct "
                "QueryEngine(index, universe=...)"
            )
        return self._universe
