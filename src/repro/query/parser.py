"""Boolean query parser.

Grammar (standard precedence NOT > AND > OR; adjacency is implicit AND)::

    query   := or_expr
    or_expr := and_expr ( OR and_expr )*
    and_expr:= not_expr ( [AND] not_expr )*
    not_expr:= NOT not_expr | atom
    atom    := '(' or_expr ')' | TERM | PREFIX* | "PHRASE WORDS"

Operators are case-insensitive keywords; terms are lower-cased to match
the tokenizer's normalization.  A trailing ``*`` makes a term a prefix
(wildcard) query, e.g. ``inter*``; double quotes make a phrase, e.g.
``"parallel software design"`` (a one-word phrase is just a term).
"""

from __future__ import annotations

import re
from typing import List

from repro.query.ast import And, Not, Or, Phrase, Prefix, Query, Term

_TOKEN = re.compile(r"\(|\)|\"[^\"]*\"|[A-Za-z0-9]+\*?")
_WORD = re.compile(r"[A-Za-z0-9]+")


class ParseError(ValueError):
    """Raised for malformed query strings."""


def parse_query(text: str) -> Query:
    """Parse ``text`` into a query AST."""
    tokens = _TOKEN.findall(text)
    if not tokens:
        raise ParseError("empty query")
    parser = _Parser(tokens)
    query = parser.parse_or()
    if parser.remaining():
        raise ParseError(f"unexpected token: {parser.peek()!r}")
    return query


class _Parser:
    def __init__(self, tokens: List[str]) -> None:
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> str:
        return self._tokens[self._pos] if self.remaining() else ""

    def remaining(self) -> bool:
        return self._pos < len(self._tokens)

    def _advance(self) -> str:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def parse_or(self) -> Query:
        operands = [self.parse_and()]
        while self.remaining() and self.peek().upper() == "OR":
            self._advance()
            operands.append(self.parse_and())
        return operands[0] if len(operands) == 1 else Or(tuple(operands))

    def parse_and(self) -> Query:
        operands = [self.parse_not()]
        while self.remaining():
            token = self.peek()
            if token.upper() == "AND":
                self._advance()
                operands.append(self.parse_not())
            elif token.upper() == "OR" or token == ")":
                break
            else:
                # Adjacency: "cat dog" means "cat AND dog".
                operands.append(self.parse_not())
        return operands[0] if len(operands) == 1 else And(tuple(operands))

    def parse_not(self) -> Query:
        if self.remaining() and self.peek().upper() == "NOT":
            self._advance()
            return Not(self.parse_not())
        return self.parse_atom()

    def parse_atom(self) -> Query:
        if not self.remaining():
            raise ParseError("unexpected end of query")
        token = self._advance()
        if token == "(":
            inner = self.parse_or()
            if not self.remaining() or self._advance() != ")":
                raise ParseError("missing closing parenthesis")
            return inner
        if token == ")":
            raise ParseError("unexpected closing parenthesis")
        if token.startswith('"'):
            words = [w.lower() for w in _WORD.findall(token)]
            if not words:
                raise ParseError("empty phrase")
            if len(words) == 1:
                return Term(words[0])
            return Phrase(tuple(words))
        if token.upper() in ("AND", "OR", "NOT"):
            raise ParseError(f"operator {token!r} used where a term is expected")
        if token.endswith("*"):
            return Prefix(token[:-1].lower())
        return Term(token.lower())
