"""Query result caching with invalidation.

Desktop-search users repeat queries (retyping, paging, live-search
keystrokes), and the index between refreshes is immutable — ideal
caching conditions.  :class:`QueryCache` is a from-scratch LRU keyed by
(normalized query, parallel flag); :class:`CachingQueryEngine` wraps a
:class:`~repro.query.evaluator.QueryEngine` with it and exposes
:meth:`~CachingQueryEngine.invalidate` for the moment the index changes
(e.g. after an :meth:`~repro.index.incremental.IncrementalIndexer.refresh`).

Normalization runs the query optimizer first, so ``a AND a`` and ``a``
share a cache entry.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.query.evaluator import QueryEngine
from repro.query.optimizer import optimize
from repro.query.parser import parse_query


class QueryCache:
    """A fixed-capacity LRU cache of query results."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        self.capacity = capacity
        # dict preserves insertion order; recency = reinsertion order.
        self._entries: Dict[Tuple[str, bool], List[str]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Tuple[str, bool]) -> Optional[List[str]]:
        """Cached result for ``key`` (refreshing recency), else None."""
        if key not in self._entries:
            self.misses += 1
            return None
        self.hits += 1
        value = self._entries.pop(key)
        self._entries[key] = value
        return list(value)

    def put(self, key: Tuple[str, bool], value: List[str]) -> None:
        """Insert a result, evicting the least recently used if full."""
        if key in self._entries:
            self._entries.pop(key)
        elif len(self._entries) >= self.capacity:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[key] = list(value)

    def clear(self) -> None:
        """Drop every entry (the index changed)."""
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """hits / (hits + misses), 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachingQueryEngine:
    """A :class:`QueryEngine` front end with LRU result caching."""

    def __init__(self, engine: QueryEngine, capacity: int = 128) -> None:
        self.engine = engine
        self.cache = QueryCache(capacity)

    def search(self, query_text: str, parallel: bool = False) -> List[str]:
        """Like :meth:`QueryEngine.search`, memoized on the normalized
        query."""
        key = (self._normalize(query_text), parallel)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        result = self.engine.search(query_text, parallel=parallel)
        self.cache.put(key, result)
        return result

    def invalidate(self) -> None:
        """Call whenever the underlying index changes."""
        self.cache.clear()

    @staticmethod
    def _normalize(query_text: str) -> str:
        """Canonical string of the optimized AST."""
        return str(optimize(parse_query(query_text)))
