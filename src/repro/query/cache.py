"""Query result caching with invalidation.

Desktop-search users repeat queries (retyping, paging, live-search
keystrokes), and the index between refreshes is immutable — ideal
caching conditions.  :class:`QueryCache` is a from-scratch LRU keyed by
(normalized query, parallel flag, ranking mode, top-K, topology scope);
:class:`CachingQueryEngine` wraps a
:class:`~repro.query.evaluator.QueryEngine` with it and exposes
:meth:`~CachingQueryEngine.invalidate` for the moment the index changes
(e.g. after an :meth:`~repro.index.incremental.IncrementalIndexer.refresh`).

Normalization runs the query optimizer first, so ``a AND a`` and ``a``
share a cache entry.  The ranking mode and top-K are part of the key
because the same query text produces *different value types* per mode:
a boolean search returns paths, a BM25 search returns scored
:class:`~repro.query.ranking.RankedHit` entries truncated to K — a
cache keyed on the text alone would happily serve one for the other.

Thread safety: a desktop search serves queries from whatever thread the
UI or API happens to be on, so one cache is hammered concurrently.
Every operation — the LRU reorder in :meth:`QueryCache.get`, the
evict-and-insert in :meth:`QueryCache.put`, and the hit/miss tallies —
runs under one lock, which comes from a
:class:`~repro.concurrency.provider.SyncProvider` so the schedule
checker can drive the same cache deterministically.  Results are copied
*in* on put and *out* on get, both under the lock: a caller mutating a
list it got back (or the list it inserted) can never corrupt what a
later hit observes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs import recorder as obsrec
from repro.query.evaluator import QueryEngine
from repro.query.optimizer import optimize
from repro.query.parser import parse_query

#: Cache key: (normalized query, parallel flag, ranking mode, top-K,
#: topology scope).  Boolean lookups use mode ``"bool"`` with
#: ``topk=None``; BM25 lookups use mode ``"bm25"`` with their K, so the
#: two can never collide.  ``scope`` names the serving topology the
#: result came from (``None`` for a single unsharded engine,
#: ``"shards=N"`` for a scatter-gather broker over N shards): sharded
#: BM25 scores use shard-local statistics, so a 3-shard top-K is *not*
#: the same value as an unsharded or 5-shard one and must never be
#: served across topologies.
CacheKey = Tuple[str, bool, str, Optional[int], Optional[str]]


def cache_key(
    normalized: str,
    parallel: bool,
    mode: str = "bool",
    topk: Optional[int] = None,
    scope: Optional[str] = None,
) -> CacheKey:
    """The canonical cache key for one lookup."""
    return (normalized, parallel, mode, topk, scope)


def normalize_query(query_text: str) -> str:
    """The canonical string of the optimized AST.

    This is the normalization every cache-key producer must share —
    the session cache, :class:`CachingQueryEngine` and the serving
    front end's single-flight map all key on it, so ``a AND a`` and
    ``a`` coalesce everywhere or nowhere.  Raises
    :class:`~repro.query.parser.ParseError` on malformed queries.
    """
    return str(optimize(parse_query(query_text)))


class QueryCache:
    """A fixed-capacity LRU cache of query results (thread-safe)."""

    def __init__(
        self, capacity: int = 128, sync=None, name: str = "query.cache"
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        if sync is None:
            from repro.concurrency.provider import THREADING_SYNC

            sync = THREADING_SYNC
        self.capacity = capacity
        self.name = name
        self._sync = sync
        self._lock = sync.lock(f"{name}.lock")
        # dict preserves insertion order; recency = reinsertion order.
        self._entries: Dict[CacheKey, list] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: CacheKey) -> Optional[list]:
        """Cached result for ``key`` (refreshing recency), else None.

        The returned list is a copy made under the lock — mutate it
        freely, the cached value is unaffected.
        """
        with self._lock:
            self._sync.access(f"{self.name}.entries")
            if key not in self._entries:
                self.misses += 1
                hit = False
                result = None
            else:
                self.hits += 1
                hit = True
                value = self._entries.pop(key)
                self._entries[key] = value
                result = list(value)
            hit_rate = self._hit_rate_locked()
        self._record(hit, hit_rate)
        return result

    def put(self, key: CacheKey, value: list) -> None:
        """Insert a result, evicting the least recently used if full.

        The value is copied in under the lock, so later caller-side
        mutation of ``value`` cannot change what a future hit returns.
        """
        with self._lock:
            self._sync.access(f"{self.name}.entries")
            if key in self._entries:
                self._entries.pop(key)
            elif len(self._entries) >= self.capacity:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
            self._entries[key] = list(value)
            size = len(self._entries)
        obsrec.metrics().gauge(f"{self.name}.size").set(size)

    def clear(self) -> None:
        """Drop every entry (the index changed)."""
        with self._lock:
            self._sync.access(f"{self.name}.entries")
            self._entries.clear()
        obsrec.metrics().gauge(f"{self.name}.size").set(0)

    @property
    def hit_rate(self) -> float:
        """hits / (hits + misses), 0.0 before any lookup."""
        with self._lock:
            return self._hit_rate_locked()

    def _hit_rate_locked(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _record(self, hit: bool, hit_rate: float) -> None:
        """Publish the lookup to the global metrics registry."""
        metrics = obsrec.metrics()
        metrics.counter(
            f"{self.name}.hits" if hit else f"{self.name}.misses"
        ).inc()
        metrics.gauge(f"{self.name}.hit_rate").set(hit_rate)


class CachingQueryEngine:
    """A :class:`QueryEngine` front end with LRU result caching.

    ``ranker`` (a :class:`~repro.query.ranking.BM25Ranker`) enables the
    cached :meth:`search_bm25` path for in-memory engines; engines that
    score natively (:class:`~repro.query.daat.DaatQueryEngine`) need no
    ranker.  Boolean and BM25 results share one LRU but can never be
    confused: the ranking mode and top-K are part of the cache key.
    """

    def __init__(
        self, engine: QueryEngine, capacity: int = 128, sync=None,
        ranker=None,
    ) -> None:
        self.engine = engine
        self.ranker = ranker
        self.cache = QueryCache(capacity, sync=sync)

    def search(self, query_text: str, parallel: bool = False) -> List[str]:
        """Like :meth:`QueryEngine.search`, memoized on the normalized
        query."""
        with obsrec.span("query.cached_search", parallel=parallel):
            key = cache_key(self._normalize(query_text), parallel)
            cached = self.cache.get(key)
            if cached is not None:
                return cached
            result = self.engine.search(query_text, parallel=parallel)
            self.cache.put(key, result)
            return result

    def search_bm25(self, query_text: str, topk: int = 10) -> list:
        """BM25 top-``topk``, memoized under a mode-and-K-specific key.

        Dispatches to the wrapped engine's own ``search_bm25`` when it
        has one (the DAAT/mmap path), else scores through the
        constructor's ``ranker``.
        """
        with obsrec.span("query.cached_search", mode="bm25", topk=topk):
            key = cache_key(
                self._normalize(query_text), False, "bm25", topk
            )
            cached = self.cache.get(key)
            if cached is not None:
                return cached
            if hasattr(self.engine, "search_bm25"):
                result = self.engine.search_bm25(query_text, topk=topk)
            elif self.ranker is not None:
                from repro.query.ranking import search_bm25

                result = search_bm25(
                    self.engine, self.ranker, query_text, topk=topk
                )
            else:
                raise ValueError(
                    "BM25 needs an engine with native scoring (DAAT over "
                    "RIDX2) or a ranker= passed to CachingQueryEngine"
                )
            self.cache.put(key, result)
            return result

    def invalidate(self) -> None:
        """Call whenever the underlying index changes."""
        self.cache.clear()

    @staticmethod
    def _normalize(query_text: str) -> str:
        """Canonical string of the optimized AST."""
        return normalize_query(query_text)
