"""Document-at-a-time evaluation over mmap-backed posting cursors.

The in-memory :class:`~repro.query.evaluator.QueryEngine` fetches each
term's *entire* postings into a Python set and then does set algebra —
fine when the index is already dict-resident, a dead end when postings
live on disk.  :class:`DaatQueryEngine` evaluates the same boolean
query language against an RIDX2 file through
:class:`~repro.index.ondisk.BlockCursor` seeks instead: every AST node
becomes a *stream* with a ``seek(target)`` operation, conjunctions
leapfrog their operands to a common doc id, and cursor seeks translate
into ``last_docid`` block skips — postings that cannot match are never
decoded, let alone materialized.

Doc ids in RIDX2 are assigned in sorted-path order, so emitting
matches in doc-id order and mapping them to paths reproduces the
in-memory engine's ``sorted(paths)`` output *byte for byte* — the
differential property the test suite pins across every build backend.

BM25 ranking rides the same machinery: :meth:`DaatQueryEngine.
search_bm25` computes the boolean match set DAAT-style, then scores
survivors with per-term frequency cursors (monotone seeks, so the
second pass is one forward sweep) into a bounded top-K heap.  The
scoring formula and iteration order mirror
:class:`~repro.query.ranking.BM25Ranker` exactly, so ondisk and
in-memory BM25 agree to the last float.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional

from repro.index.ondisk import DONE, BlockCursor, MmapPostingsReader
from repro.obs import recorder as obsrec
from repro.query.ast import And, Not, Or, Phrase, Query, Term
from repro.query.parser import parse_query
from repro.query.ranking import BM25_B, BM25_K1, RankedHit
from repro.query.wildcard import PrefixDictionary, expand_prefixes, has_prefixes


class _TermStream:
    """One term's cursor as a stream (absent terms match nothing)."""

    __slots__ = ("cursor", "docid")

    def __init__(self, cursor: Optional[BlockCursor]) -> None:
        self.cursor = cursor
        self.docid = -1 if cursor is not None else DONE

    def seek(self, target: int) -> int:
        if self.docid < target:
            self.docid = self.cursor.seek(target)
        return self.docid


class _AndStream:
    """Leapfrog intersection: operands chase the maximum candidate."""

    __slots__ = ("children", "docid")

    def __init__(self, children: List[object]) -> None:
        self.children = children
        self.docid = -1

    def seek(self, target: int) -> int:
        if self.docid >= target:
            return self.docid
        candidate = target
        while candidate < DONE:
            for child in self.children:
                found = child.seek(candidate)
                if found > candidate:
                    candidate = found
                    break
            else:
                break
        self.docid = candidate
        return candidate


class _OrStream:
    """Union: the minimum of the children's frontiers."""

    __slots__ = ("children", "docid")

    def __init__(self, children: List[object]) -> None:
        self.children = children
        self.docid = -1

    def seek(self, target: int) -> int:
        if self.docid >= target:
            return self.docid
        minimum = DONE
        for child in self.children:
            found = child.docid
            if found < target:
                found = child.seek(target)
            if found < minimum:
                minimum = found
        self.docid = minimum
        return minimum


class _NotStream:
    """Complement against the dense doc-id universe [0, doc_count)."""

    __slots__ = ("child", "doc_count", "docid")

    def __init__(self, child: object, doc_count: int) -> None:
        self.child = child
        self.doc_count = doc_count
        self.docid = -1

    def seek(self, target: int) -> int:
        if self.docid >= target:
            return self.docid
        candidate = target
        while candidate < self.doc_count:
            if self.child.seek(candidate) != candidate:
                break
            candidate += 1
        self.docid = candidate if candidate < self.doc_count else DONE
        return self.docid


class DaatQueryEngine:
    """Evaluates boolean queries against an RIDX2 file via mmap.

    Drop-in for :class:`~repro.query.evaluator.QueryEngine` on the
    read path: ``search`` has the same signature (``parallel`` is
    accepted for interface parity — there are no replicas to fan out
    over) and returns the identical sorted path list.  Phrase queries
    need the positional sidecar, which RIDX2 does not carry, and raise.
    """

    def __init__(self, reader: MmapPostingsReader) -> None:
        self.reader = reader
        self._prefix_dictionary: Optional[PrefixDictionary] = None

    def search(
        self, query_text: str, parallel: bool = False, optimize: bool = True
    ) -> List[str]:
        """Parse and evaluate ``query_text``; returns sorted file paths."""
        with obsrec.span("query.daat", parallel=parallel):
            obsrec.metrics().counter("query.daat.searches").inc()
            query, _ = self._prepare(query_text, optimize)
            reader = self.reader
            return [
                reader.doc_path(doc_id)
                for doc_id in self._match_ids(query)
            ]

    def search_bm25(
        self,
        query_text: str,
        topk: int = 10,
        k1: float = BM25_K1,
        b: float = BM25_B,
    ) -> List[RankedHit]:
        """Boolean match, then BM25 top-``topk`` over the survivors.

        Matches :func:`repro.query.ranking.search_bm25` (same formula,
        same sorted-term accumulation order, same (score desc, path
        asc) ordering), so the two paths produce identical hits when
        the RIDX2 file was dumped with the same frequency sidecar.
        """
        if topk < 1:
            raise ValueError(f"topk must be at least 1, got {topk}")
        with obsrec.span("query.bm25", topk=topk):
            query, expanded = self._prepare(query_text, optimize=True)
            # Score over the *expanded, unoptimized* term set — the
            # same set search_ranked/search_bm25 use in-memory, so the
            # accumulation order (sorted terms) matches float for float.
            terms = sorted(expanded.terms())
            reader = self.reader
            n = reader.doc_count
            avgdl = reader.average_document_length
            idf: Dict[str, float] = {}
            scorers: List[tuple] = []
            for term in terms:
                info = reader.term_info(term)
                df = info.df if info is not None else 0
                idf[term] = math.log(1.0 + (n - df + 0.5) / (df + 0.5))
                if info is not None:
                    scorers.append((term, BlockCursor(reader, info)))
            # Min-heap of (score, -doc_id): among equal scores the
            # larger doc id (later path) is evicted first, matching the
            # in-memory ranker's (score desc, path asc) tie-break.
            heap: List[tuple] = []
            for doc_id in self._match_ids(query):
                length = reader.doc_length(doc_id)
                norm = k1 * (1.0 - b + b * (length / avgdl if avgdl else 0.0))
                score = 0.0
                for term, cursor in scorers:
                    if cursor.docid() < doc_id:
                        cursor.seek(doc_id)
                    if cursor.docid() == doc_id:
                        tf = cursor.freq()
                        score += idf[term] * (tf * (k1 + 1.0)) / (tf + norm)
                entry = (score, -doc_id)
                if len(heap) < topk:
                    heapq.heappush(heap, entry)
                elif entry > heap[0]:
                    heapq.heapreplace(heap, entry)
            ordered = sorted(heap, key=lambda e: (-e[0], -e[1]))
            return [
                RankedHit(reader.doc_path(-neg_id), score)
                for score, neg_id in ordered
            ]

    def prefix_dictionary(self) -> PrefixDictionary:
        """The file's term dictionary (one lexicon walk, then cached)."""
        if self._prefix_dictionary is None:
            self._prefix_dictionary = PrefixDictionary(self.reader.terms())
        return self._prefix_dictionary

    # -- internals --------------------------------------------------------

    def _prepare(self, query_text: str, optimize: bool):
        """Returns ``(evaluation query, expanded-unoptimized query)``."""
        from repro.query.optimizer import optimize as optimize_query

        query = parse_query(query_text)
        if has_prefixes(query):
            query = expand_prefixes(query, self.prefix_dictionary())
        expanded = query
        if optimize:
            query = optimize_query(query)
        return query, expanded

    def _match_ids(self, query: Query):
        """Yield matching doc ids in ascending order (one DAAT sweep)."""
        stream = self._build(query)
        doc_id = stream.seek(0)
        while doc_id < DONE:
            yield doc_id
            doc_id = stream.seek(doc_id + 1)

    def _build(self, query: Query):
        if isinstance(query, Term):
            return _TermStream(self.reader.cursor(query.value))
        if isinstance(query, And):
            return _AndStream([self._build(op) for op in query.operands])
        if isinstance(query, Or):
            return _OrStream([self._build(op) for op in query.operands])
        if isinstance(query, Not):
            return _NotStream(
                self._build(query.operand), self.reader.doc_count
            )
        if isinstance(query, Phrase):
            raise ValueError(
                "phrase queries need a positional index, which the RIDX2 "
                "on-disk format does not carry; evaluate phrases with the "
                "in-memory QueryEngine"
            )
        raise TypeError(f"unknown query node: {type(query).__name__}")
