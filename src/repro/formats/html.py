"""HTML text extraction — a from-scratch streaming tag stripper.

Not a general HTML parser: desktop search only needs the *text*, so the
stripper removes tags, drops ``<script>``/``<style>`` bodies entirely,
decodes the common character entities, and collapses markup boundaries
into whitespace (so ``a<b>b</b>`` tokenizes as two terms, not one).
Malformed input (unterminated tags, stray ``<``) degrades gracefully.
"""

from __future__ import annotations

from typing import Tuple

from repro.formats.base import DocumentFormat

_ENTITIES = {
    b"amp": b"&",
    b"lt": b"<",
    b"gt": b">",
    b"quot": b'"',
    b"apos": b"'",
    b"nbsp": b" ",
}

_SKIP_CONTENT_TAGS = (b"script", b"style")


def strip_html(content: bytes) -> bytes:
    """Extract visible text from HTML bytes."""
    out = bytearray()
    i = 0
    n = len(content)
    skip_until: bytes = b""  # closing tag whose content is being skipped
    while i < n:
        byte = content[i]
        if byte == 0x3C:  # "<"
            end = content.find(b">", i + 1)
            if end == -1:
                break  # unterminated tag: drop the tail
            tag = content[i + 1 : end].strip()
            tag_name = _tag_name(tag)
            if skip_until:
                if tag.startswith(b"/") and tag_name == skip_until:
                    skip_until = b""
            elif tag_name in _SKIP_CONTENT_TAGS and not tag.endswith(b"/"):
                skip_until = tag_name
            out.append(0x20)  # tags separate words
            i = end + 1
        elif skip_until:
            i += 1
        elif byte == 0x26:  # "&"
            semicolon = content.find(b";", i + 1, i + 10)
            if semicolon != -1:
                entity = content[i + 1 : semicolon]
                if entity in _ENTITIES:
                    out.extend(_ENTITIES[entity])
                    i = semicolon + 1
                    continue
                if entity.startswith(b"#"):
                    decoded = _decode_numeric(entity[1:])
                    if decoded is not None:
                        out.extend(decoded)
                        i = semicolon + 1
                        continue
            out.append(byte)
            i += 1
        else:
            out.append(byte)
            i += 1
    return bytes(out)


def _tag_name(tag: bytes) -> bytes:
    stripped = tag.lstrip(b"/")
    for j, byte in enumerate(stripped):
        if byte in b" \t\r\n>/":
            return stripped[:j].lower()
    return stripped.lower()


def _decode_numeric(digits: bytes) -> bytes:
    try:
        if digits[:1] in (b"x", b"X"):
            code = int(digits[1:], 16)
        else:
            code = int(digits)
    except ValueError:
        return None
    if 0 < code < 0x110000:
        return chr(code).encode("utf-8")
    return None


class HtmlFormat(DocumentFormat):
    """HTML documents (detected by extension or the usual signatures)."""

    name = "html"
    extensions: Tuple[str, ...] = (".html", ".htm", ".xhtml")
    magic = b"<!DOCTYPE"

    def extract_text(self, content: bytes) -> bytes:
        return strip_html(content)

    def matches_magic(self, content: bytes) -> bool:
        head = content[:256].lstrip().lower()
        return head.startswith(b"<!doctype") or head.startswith(b"<html")
